//! Cross-crate integration tests: the full tuning loop through the public
//! [`TuningSession`] facade, plus randomized invariants on the
//! planner/executor pair (deterministic seeded sweeps — the offline
//! environment has no proptest, so properties are checked over a fixed
//! fan-out of seeds via the workspace's own RNG).

use dba_bandits::prelude::*;
use dba_common::rng::rng_for;
use dba_common::{ColumnId, QueryId, TableId, TemplateId};
use dba_engine::Predicate;
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};
use rand::Rng;

/// Drive the full loop (benchmark → tuner → planner → executor → rewards)
/// on a small SSB and check the bandit ends up faster than it started.
#[test]
fn mab_improves_ssb_end_to_end() {
    let mut session = SessionBuilder::new()
        .benchmark(dba_bandits::workloads::ssb::ssb(0.05))
        .workload(WorkloadKind::Static { rounds: 8 })
        .tuner(TunerKind::Mab)
        .seed(3)
        .build()
        .unwrap();

    let mut first = 0.0;
    let mut last = 0.0;
    session
        .run_with(&mut |event| {
            if event.round == 1 {
                first = event.record.execution.secs();
            }
            last = event.record.execution.secs();
        })
        .unwrap();
    assert!(
        last < first * 0.8,
        "MAB should improve execution: round1 {first:.1}s, round8 {last:.1}s"
    );
    assert!(session.catalog().index_bytes() <= session.catalog().database_bytes());
}

/// The advisor interface is interchangeable: every tuner kind runs the
/// same session loop over shared data and respects the memory budget.
#[test]
fn all_advisors_run_uniformly() {
    let bench = dba_bandits::workloads::tpch::tpch(0.02);
    let base = bench.build_catalog(5).unwrap();
    let budget = base.database_bytes();

    for kind in [
        TunerKind::NoIndex,
        TunerKind::PdTool,
        TunerKind::Mab,
        TunerKind::Ddqn { seed: 1 },
    ] {
        let mut session = SessionBuilder::new()
            .benchmark(bench.clone())
            .shared_data(&base)
            .workload(WorkloadKind::Static { rounds: 3 })
            .tuner(kind)
            .seed(5)
            .build()
            .unwrap();
        let result = session.run().unwrap();
        assert_eq!(result.rounds.len(), 3, "{} ran all rounds", result.tuner);
        for round in &result.rounds {
            assert!(round.recommendation.secs() >= 0.0);
        }
        assert!(
            session.catalog().index_bytes() <= budget,
            "{} exceeded the memory budget",
            result.tuner
        );
        assert_eq!(result.tuner, kind.label());
    }
}

/// What-if estimates must equal materialised estimates (facade-level check
/// of the optimiser's defining invariant).
#[test]
fn whatif_matches_materialised_costing() {
    let bench = dba_bandits::workloads::tpch::tpch(0.02);
    let catalog = bench.build_catalog(11).unwrap();
    let stats = StatsCatalog::build(&catalog);
    let cost = CostModel::paper_scale();
    let q = bench.templates()[5] // Q6: single-table lineitem
        .instantiate(&catalog, QueryId(0), 11, 0)
        .unwrap();
    let lineitem = catalog.table_by_name("lineitem").unwrap().id();
    let shipdate = catalog
        .table_by_name("lineitem")
        .unwrap()
        .column_by_name("l_shipdate")
        .unwrap()
        .0;
    let def = IndexDef::new(lineitem, vec![shipdate], vec![]);

    let hypo = WhatIf::new(&catalog, &stats, &cost)
        .cost_query(&q, std::slice::from_ref(&def), false)
        .est_cost;

    let mut catalog2 = catalog.fork_empty();
    catalog2.create_index(def).unwrap();
    let real = WhatIf::new(&catalog2, &stats, &cost)
        .cost_query(&q, &[], true)
        .est_cost;
    assert!((hypo.secs() - real.secs()).abs() < 1e-9);
}

/// Identical seeds give bit-identical experiment streams across the whole
/// stack (data, params, tuning) — the reproducibility contract.
#[test]
fn full_stack_determinism() {
    let run = || {
        let bench = dba_bandits::workloads::imdb::imdb(1.0);
        let base = bench.build_catalog(17).unwrap();
        let budget = base.database_bytes() / 2;
        let mut trace = Vec::new();
        SessionBuilder::new()
            .benchmark(bench)
            .shared_data(&base)
            .workload(WorkloadKind::Random {
                rounds: 3,
                queries_per_round: 6,
            })
            .tuner(TunerKind::Mab)
            .seed(17)
            .memory_budget_bytes(budget)
            .build()
            .unwrap()
            .run_with(&mut |event| trace.push(event.record.execution.secs()))
            .unwrap();
        trace
    };
    assert_eq!(run(), run());
}

/// The observer sees exactly the rounds the result reports, in order,
/// with consistent accounting.
#[test]
fn observer_events_match_run_result() {
    let mut events = Vec::new();
    let result = SessionBuilder::new()
        .benchmark(dba_bandits::workloads::ssb::ssb(0.02))
        .workload(WorkloadKind::Static { rounds: 4 })
        .tuner(TunerKind::Mab)
        .seed(9)
        .build()
        .unwrap()
        .run_with(&mut |event: &RoundEvent| {
            events.push((event.round, event.rounds_total, event.record.total().secs()))
        })
        .unwrap();
    assert_eq!(events.len(), result.rounds.len());
    for (i, (round, total_rounds, total_s)) in events.iter().enumerate() {
        assert_eq!(*round, i + 1);
        assert_eq!(*total_rounds, 4);
        assert!((total_s - result.rounds[i].total().secs()).abs() < 1e-12);
    }
}

/// Scenario sweep: every workload axis — static, shifting, random, and
/// dynamic-data drift — under both a tight and an unbounded memory budget
/// completes without panicking, and every round record is finite.
#[test]
fn scenario_sweep_never_panics_and_stays_finite() {
    let bench = dba_bandits::workloads::ssb::ssb(0.02);
    let base = bench.build_catalog(13).unwrap();

    let scenarios: Vec<(&str, WorkloadKind, Option<DataDrift>)> = vec![
        ("static", WorkloadKind::Static { rounds: 4 }, None),
        (
            "shifting",
            WorkloadKind::Shifting {
                groups: 2,
                rounds_per_group: 2,
            },
            None,
        ),
        (
            "random",
            WorkloadKind::Random {
                rounds: 4,
                queries_per_round: 5,
            },
            None,
        ),
        (
            "drift",
            WorkloadKind::Static { rounds: 4 },
            Some(DataDrift::uniform(DriftRates::new(0.05, 0.02, 0.02))),
        ),
    ];
    let budgets = [
        ("tight", base.database_bytes() / 8),
        ("unbounded", u64::MAX),
    ];

    for (wname, workload, drift) in &scenarios {
        for &(bname, budget) in &budgets {
            for seed in [3u64, 17] {
                let mut builder = SessionBuilder::new()
                    .benchmark(bench.clone())
                    .shared_data(&base)
                    .workload(*workload)
                    .tuner(TunerKind::Mab)
                    .seed(seed)
                    .memory_budget_bytes(budget);
                if let Some(drift) = drift {
                    builder = builder.data_drift(drift.clone());
                }
                let mut session = builder
                    .build()
                    .unwrap_or_else(|e| panic!("{wname}/{bname}/{seed}: {e}"));
                let result = session
                    .run()
                    .unwrap_or_else(|e| panic!("{wname}/{bname}/{seed}: {e}"));
                assert_eq!(result.rounds.len(), workload.rounds());
                for r in &result.rounds {
                    for (part, v) in [
                        ("recommendation", r.recommendation.secs()),
                        ("creation", r.creation.secs()),
                        ("execution", r.execution.secs()),
                        ("maintenance", r.maintenance.secs()),
                        ("total", r.total().secs()),
                    ] {
                        assert!(
                            v.is_finite() && v >= 0.0,
                            "{wname}/{bname}/{seed} round {}: {part} = {v}",
                            r.round
                        );
                    }
                }
                if budget != u64::MAX {
                    assert!(
                        session.catalog().index_bytes() <= budget,
                        "{wname}/{bname}/{seed}: budget exceeded"
                    );
                }
                if drift.is_some() {
                    assert!(session.catalog().has_drift(), "{wname}: drift must apply");
                } else {
                    assert_eq!(result.total_maintenance().secs(), 0.0);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Randomized invariants (deterministic seeded sweeps)
// ---------------------------------------------------------------------

/// Naive reference evaluation of a single-table conjunctive query.
fn reference_count(catalog: &Catalog, table: TableId, preds: &[Predicate]) -> u64 {
    let t = catalog.table(table);
    (0..t.rows())
        .filter(|&r| {
            preds
                .iter()
                .all(|p| p.matches(t.column(p.column.ordinal).value(r)))
        })
        .count() as u64
}

fn prop_catalog(rows: usize, seed: u64) -> Catalog {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("a", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "b",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 50 },
            ),
            ColumnSpec::new("c", ColumnType::Int, Distribution::Zipf { n: 40, s: 1.5 }),
        ],
    );
    Catalog::new(vec![TableBuilder::new(schema, rows).build(TableId(0), seed)])
}

/// Whatever plan the optimiser picks — scan, seek, covering, with any
/// index set materialised — the executor's result cardinality equals
/// naive evaluation, and access costs are non-negative.
#[test]
fn planner_executor_agree_with_reference() {
    for case in 0..48u64 {
        let mut rng = rng_for(0xA11CE, "prop-planner", case);
        let seed = rng.gen_range(0u64..500);
        let rows = rng.gen_range(200usize..1500);
        let b_lo = rng.gen_range(0i64..40);
        let b_width = rng.gen_range(0i64..15);
        let c_val = rng.gen_range(0i64..40);
        let with_index = rng.gen_bool(0.5);
        let with_covering = rng.gen_bool(0.5);

        let mut catalog = prop_catalog(rows, seed);
        if with_index {
            catalog
                .create_index(IndexDef::new(TableId(0), vec![1], vec![]))
                .unwrap();
        }
        if with_covering {
            catalog
                .create_index(IndexDef::new(TableId(0), vec![2], vec![0]))
                .unwrap();
        }
        let stats = StatsCatalog::build(&catalog);
        let cost = CostModel::unit_scale();
        let preds = vec![
            Predicate::range(ColumnId::new(TableId(0), 1), b_lo, b_lo + b_width),
            Predicate::eq(ColumnId::new(TableId(0), 2), c_val),
        ];
        let q = Query {
            id: QueryId(0),
            template: TemplateId(0),
            tables: vec![TableId(0)],
            predicates: preds.clone(),
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        };
        let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
        let plan = Planner::new(&ctx).plan(&q);
        let exec = Executor::new(cost).execute(&catalog, &q, &plan);
        assert_eq!(
            exec.result_rows,
            reference_count(&catalog, TableId(0), &preds),
            "case {case}: rows={rows} seed={seed} idx={with_index}/{with_covering}"
        );
        assert!(exec.total.secs() >= 0.0, "case {case}");
        for a in &exec.accesses {
            assert!(a.time.secs() >= 0.0, "case {case}");
        }
    }
}

/// Index probes return exactly the rows matching the seek condition,
/// for arbitrary composite keys.
#[test]
fn index_probe_matches_filter() {
    for case in 0..48u64 {
        let mut rng = rng_for(0xA11CE, "prop-probe", case);
        let seed = rng.gen_range(0u64..500);
        let rows = rng.gen_range(100usize..1200);
        let eq = rng.gen_range(0i64..50);
        let range_lo = rng.gen_range(0i64..40);

        let catalog = prop_catalog(rows, seed);
        let t = catalog.table(TableId(0));
        let ix = dba_bandits::storage::Index::build(
            dba_common::IndexId(0),
            IndexDef::new(TableId(0), vec![1, 2], vec![]),
            t,
        );
        let (s, e) = ix.probe(t, &[eq], Some((range_lo, range_lo + 5)));
        let expected = (0..t.rows())
            .filter(|&r| {
                t.column(1).value(r) == eq
                    && (range_lo..=range_lo + 5).contains(&t.column(2).value(r))
            })
            .count();
        assert_eq!(e - s, expected, "case {case}: rows={rows} seed={seed}");
    }
}

/// The greedy oracle never exceeds its budget and never selects
/// non-positive arms.
#[test]
fn oracle_respects_budget() {
    for case in 0..48u64 {
        let mut rng = rng_for(0xA11CE, "prop-oracle", case);
        let n = rng.gen_range(1usize..60);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0f64..10.0)).collect();
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..100)).collect();
        let budget = rng.gen_range(1u64..500);

        let inputs: Vec<dba_bandits::bandit::oracle::OracleInput> = (0..n)
            .map(|i| dba_bandits::bandit::oracle::OracleInput {
                arm_idx: i,
                score: scores[i],
                size_bytes: sizes[i],
                def: IndexDef::new(TableId(0), vec![i as u16 % 8], vec![]),
                generated_by: vec![TemplateId(0)],
                covers: vec![],
            })
            .collect();
        let picked = dba_bandits::bandit::oracle::greedy_select(inputs, budget);
        let total: u64 = picked.iter().map(|&i| sizes[i]).sum();
        assert!(total <= budget, "case {case}");
        for &i in &picked {
            assert!(scores[i] > 0.0, "case {case}");
        }
    }
}
