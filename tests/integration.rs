//! Cross-crate integration tests: the full tuning loop through the public
//! facade, plus property-based invariants on the planner/executor pair.

use dba_bandits::prelude::*;
use dba_common::{ColumnId, QueryId, TableId, TemplateId};
use dba_engine::Predicate;
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};
use proptest::prelude::*;
use std::sync::Arc;

/// Drive the full loop (benchmark → tuner → planner → executor → rewards)
/// on a small SSB and check the bandit ends up faster than it started.
#[test]
fn mab_improves_ssb_end_to_end() {
    let bench = dba_bandits::workloads::ssb::ssb(0.05);
    let mut catalog = bench.build_catalog(3).unwrap();
    let stats = StatsCatalog::build(&catalog);
    let cost = CostModel::paper_scale();
    let mut tuner = MabTuner::new(
        &catalog,
        cost.clone(),
        MabConfig {
            memory_budget_bytes: catalog.database_bytes(),
            ..MabConfig::default()
        },
    );
    let seq = WorkloadSequencer::new(&bench, WorkloadKind::Static { rounds: 8 }, 3);
    let executor = Executor::new(cost.clone());

    let mut first = 0.0;
    let mut last = 0.0;
    for round in 0..8 {
        tuner.recommend_and_apply(&mut catalog, &stats);
        let queries = seq.round_queries(&catalog, round).unwrap();
        let execs: Vec<QueryExecution> = {
            let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
            let planner = Planner::new(&ctx);
            queries
                .iter()
                .map(|q| executor.execute(&catalog, q, &planner.plan(q)))
                .collect()
        };
        let total: f64 = execs.iter().map(|e| e.total.secs()).sum();
        if round == 0 {
            first = total;
        }
        last = total;
        tuner.observe(&queries, &execs);
    }
    assert!(
        last < first * 0.8,
        "MAB should improve execution: round1 {first:.1}s, round8 {last:.1}s"
    );
    assert!(catalog.index_bytes() <= catalog.database_bytes());
}

/// The advisor interface is interchangeable: all tuners run the same loop.
#[test]
fn all_advisors_run_uniformly() {
    let bench = dba_bandits::workloads::tpch::tpch(0.02);
    let base = bench.build_catalog(5).unwrap();
    let stats = StatsCatalog::build(&base);
    let cost = CostModel::paper_scale();
    let budget = base.database_bytes();

    let mut advisors: Vec<Box<dyn Advisor>> = vec![
        Box::new(NoIndexAdvisor),
        Box::new(PdToolAdvisor::new(
            cost.clone(),
            dba_baselines::PdToolConfig::paper_defaults(
                budget,
                dba_baselines::InvokeSchedule::OnWorkloadChange,
            ),
        )),
        Box::new(MabAdvisor::new(
            &base,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: budget,
                ..MabConfig::default()
            },
        )),
        Box::new(dba_baselines::DdqnAdvisor::new(
            &base,
            cost.clone(),
            dba_baselines::DdqnConfig::paper_defaults(budget, 1),
        )),
    ];

    let seq = WorkloadSequencer::new(&bench, WorkloadKind::Static { rounds: 3 }, 5);
    let executor = Executor::new(cost.clone());
    for advisor in &mut advisors {
        let mut catalog = base.fork_empty();
        for round in 0..3 {
            let c = advisor.before_round(round, &mut catalog, &stats);
            assert!(c.recommendation.secs() >= 0.0);
            let queries = seq.round_queries(&catalog, round).unwrap();
            let execs: Vec<QueryExecution> = {
                let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
                let planner = Planner::new(&ctx);
                queries
                    .iter()
                    .map(|q| executor.execute(&catalog, q, &planner.plan(q)))
                    .collect()
            };
            advisor.after_round(&queries, &execs);
        }
        assert!(
            catalog.index_bytes() <= budget,
            "{} exceeded the memory budget",
            advisor.name()
        );
    }
}

/// What-if estimates must equal materialised estimates (facade-level check
/// of the optimiser's defining invariant).
#[test]
fn whatif_matches_materialised_costing() {
    let bench = dba_bandits::workloads::tpch::tpch(0.02);
    let catalog = bench.build_catalog(11).unwrap();
    let stats = StatsCatalog::build(&catalog);
    let cost = CostModel::paper_scale();
    let q = bench.templates()[5] // Q6: single-table lineitem
        .instantiate(&catalog, QueryId(0), 11, 0)
        .unwrap();
    let lineitem = catalog.table_by_name("lineitem").unwrap().id();
    let shipdate = catalog
        .table_by_name("lineitem")
        .unwrap()
        .column_by_name("l_shipdate")
        .unwrap()
        .0;
    let def = IndexDef::new(lineitem, vec![shipdate], vec![]);

    let hypo = WhatIf::new(&catalog, &stats, &cost)
        .cost_query(&q, &[def.clone()], false)
        .est_cost;

    let mut catalog2 = catalog.fork_empty();
    catalog2.create_index(def).unwrap();
    let real = WhatIf::new(&catalog2, &stats, &cost)
        .cost_query(&q, &[], true)
        .est_cost;
    assert!((hypo.secs() - real.secs()).abs() < 1e-9);
}

/// Identical seeds give bit-identical experiment streams across the whole
/// stack (data, params, tuning) — the reproducibility contract.
#[test]
fn full_stack_determinism() {
    let run = || {
        let bench = dba_bandits::workloads::imdb::imdb(1.0);
        let mut catalog = bench.build_catalog(17).unwrap();
        let stats = StatsCatalog::build(&catalog);
        let cost = CostModel::paper_scale();
        let mut tuner = MabTuner::new(
            &catalog,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: catalog.database_bytes() / 2,
                ..MabConfig::default()
            },
        );
        let seq = WorkloadSequencer::new(
            &bench,
            WorkloadKind::Random {
                rounds: 3,
                queries_per_round: 6,
            },
            17,
        );
        let executor = Executor::new(cost.clone());
        let mut trace = Vec::new();
        for round in 0..3 {
            tuner.recommend_and_apply(&mut catalog, &stats);
            let queries = seq.round_queries(&catalog, round).unwrap();
            let execs: Vec<QueryExecution> = {
                let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
                let planner = Planner::new(&ctx);
                queries
                    .iter()
                    .map(|q| executor.execute(&catalog, q, &planner.plan(q)))
                    .collect()
            };
            trace.push(execs.iter().map(|e| e.total.secs()).sum::<f64>());
            tuner.observe(&queries, &execs);
        }
        trace
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// Property-based invariants
// ---------------------------------------------------------------------

/// Naive reference evaluation of a single-table conjunctive query.
fn reference_count(catalog: &Catalog, table: TableId, preds: &[Predicate]) -> u64 {
    let t = catalog.table(table);
    (0..t.rows())
        .filter(|&r| {
            preds
                .iter()
                .all(|p| p.matches(t.column(p.column.ordinal).value(r)))
        })
        .count() as u64
}

fn prop_catalog(rows: usize, seed: u64) -> Catalog {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("a", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "b",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 50 },
            ),
            ColumnSpec::new(
                "c",
                ColumnType::Int,
                Distribution::Zipf { n: 40, s: 1.5 },
            ),
        ],
    );
    Catalog::new(vec![Arc::new(
        TableBuilder::new(schema, rows).build(TableId(0), seed),
    )])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever plan the optimiser picks — scan, seek, covering, with any
    /// index set materialised — the executor's result cardinality equals
    /// naive evaluation, and access costs are non-negative.
    #[test]
    fn planner_executor_agree_with_reference(
        seed in 0u64..500,
        rows in 200usize..1500,
        b_lo in 0i64..40,
        b_width in 0i64..15,
        c_val in 0i64..40,
        with_index in proptest::bool::ANY,
        with_covering in proptest::bool::ANY,
    ) {
        let mut catalog = prop_catalog(rows, seed);
        if with_index {
            catalog.create_index(IndexDef::new(TableId(0), vec![1], vec![])).unwrap();
        }
        if with_covering {
            catalog.create_index(IndexDef::new(TableId(0), vec![2], vec![0])).unwrap();
        }
        let stats = StatsCatalog::build(&catalog);
        let cost = CostModel::unit_scale();
        let preds = vec![
            Predicate::range(ColumnId::new(TableId(0), 1), b_lo, b_lo + b_width),
            Predicate::eq(ColumnId::new(TableId(0), 2), c_val),
        ];
        let q = Query {
            id: QueryId(0),
            template: TemplateId(0),
            tables: vec![TableId(0)],
            predicates: preds.clone(),
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        };
        let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
        let plan = Planner::new(&ctx).plan(&q);
        let exec = Executor::new(cost).execute(&catalog, &q, &plan);
        prop_assert_eq!(exec.result_rows, reference_count(&catalog, TableId(0), &preds));
        prop_assert!(exec.total.secs() >= 0.0);
        for a in &exec.accesses {
            prop_assert!(a.time.secs() >= 0.0);
        }
    }

    /// Index probes return exactly the rows matching the seek condition,
    /// for arbitrary composite keys.
    #[test]
    fn index_probe_matches_filter(
        seed in 0u64..500,
        rows in 100usize..1200,
        eq in 0i64..50,
        range_lo in 0i64..40,
    ) {
        let catalog = prop_catalog(rows, seed);
        let t = catalog.table(TableId(0));
        let ix = dba_storage::Index::build(
            dba_common::IndexId(0),
            IndexDef::new(TableId(0), vec![1, 2], vec![]),
            t,
        );
        let (s, e) = ix.probe(t, &[eq], Some((range_lo, range_lo + 5)));
        let expected = (0..t.rows())
            .filter(|&r| {
                t.column(1).value(r) == eq
                    && (range_lo..=range_lo + 5).contains(&t.column(2).value(r))
            })
            .count();
        prop_assert_eq!(e - s, expected);
    }

    /// The greedy oracle never exceeds its budget and never selects
    /// non-positive arms.
    #[test]
    fn oracle_respects_budget(
        scores in proptest::collection::vec(-5.0f64..10.0, 1..60),
        sizes in proptest::collection::vec(1u64..100, 1..60),
        budget in 1u64..500,
    ) {
        let n = scores.len().min(sizes.len());
        let inputs: Vec<dba_core::oracle::OracleInput> = (0..n)
            .map(|i| dba_core::oracle::OracleInput {
                arm_idx: i,
                score: scores[i],
                size_bytes: sizes[i],
                def: IndexDef::new(TableId(0), vec![i as u16 % 8], vec![]),
                generated_by: vec![TemplateId(0)],
                covers: vec![],
            })
            .collect();
        let picked = dba_core::oracle::greedy_select(inputs, budget);
        let total: u64 = picked.iter().map(|&i| sizes[i]).sum();
        prop_assert!(total <= budget);
        for &i in &picked {
            prop_assert!(scores[i] > 0.0);
        }
    }
}
