//! The paper's premise in one example: what-if estimates vs observed
//! execution under skew and correlation.
//!
//! Builds a zipf-skewed fact table, asks the optimiser (what-if) how much
//! an index would help a hot-value query, then materialises the index and
//! *measures* — showing the estimate/actual divergence that breaks
//! estimate-driven advisors (§I, §V-B1).
//!
//! This example deliberately works *below* the `TuningSession` layer: it
//! probes a single query against the optimiser and executor directly. See
//! `quickstart.rs` for the session-driven tuning loop.
//!
//! Run with: `cargo run --release --example whatif_vs_observed`

use dba_bandits::prelude::*;
use dba_common::{ColumnId, QueryId, TableId, TemplateId};
use dba_engine::Predicate;
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableSchema};

fn main() {
    // A fact table whose foreign key is zipf-skewed (hot parents).
    let schema = TableSchema::new(
        "orders",
        vec![
            ColumnSpec::new("o_orderkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "o_custkey",
                ColumnType::Int,
                Distribution::FkZipf {
                    parent_rows: 10_000,
                    s: 2.0,
                },
            ),
            ColumnSpec::new(
                "o_totalprice",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform { lo: 0, hi: 100_000 },
            ),
        ],
    )
    .with_pad(70);
    let table = dba_storage::TableBuilder::new(schema, 200_000).build(TableId(0), 1);
    let mut catalog = Catalog::new(vec![table]);
    let stats = StatsCatalog::build(&catalog);
    let cost = CostModel::paper_scale();

    let query_for = |custkey: i64| Query {
        id: QueryId(0),
        template: TemplateId(0),
        tables: vec![TableId(0)],
        predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 1), custkey)],
        joins: vec![],
        payload: vec![ColumnId::new(TableId(0), 2)],
        aggregated: true,
    };
    let index = IndexDef::new(TableId(0), vec![1], vec![]);

    println!("orders: 200k rows, o_custkey ~ zipf(2) over 10k customers\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "custkey", "actual rows", "whatif est(s)", "observed (s)", "est error"
    );

    for custkey in [0i64, 1, 5, 777, 7777] {
        let q = query_for(custkey);
        // What-if: estimated cost with the hypothetical index.
        let mut wi = WhatIf::new(&catalog, &stats, &cost);
        let estimate = wi.cost_query(&q, std::slice::from_ref(&index), false);

        // Reality: materialise, plan, execute, measure.
        let meta = catalog.create_index(index.clone()).expect("create");
        let observed = {
            let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
            let plan = Planner::new(&ctx).plan(&q);
            simulated(cost.clone()).execute(&catalog, &q, &plan)
        };
        catalog.drop_index(meta.id).expect("drop");

        let actual_rows = catalog
            .table(TableId(0))
            .column(1)
            .count_in_range(custkey, custkey);
        println!(
            "{:>10} {:>12} {:>14.3} {:>14.3} {:>13.1}x",
            custkey,
            actual_rows,
            estimate.est_cost.secs(),
            observed.total.secs(),
            observed.total.secs() / estimate.est_cost.secs().max(1e-9),
        );
    }

    println!("\nHot customers (low keys) are where estimates and observation");
    println!("diverge — the bandit tunes on the right-hand column, the");
    println!("estimate-driven advisor on the left.");
}
