//! Quickstart: self-driving index tuning on the Star Schema Benchmark.
//!
//! Builds a small SSB database, runs the MAB tuner for 12 rounds of a
//! static workload through a [`TuningSession`], and prints the per-round
//! time breakdown — watch the execution time fall as the bandit converges
//! on a configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use dba_bandits::prelude::*;

fn main() {
    let mut session = SessionBuilder::new()
        .benchmark(dba_bandits::workloads::ssb::ssb(0.5))
        .workload(WorkloadKind::Static { rounds: 12 })
        .tuner(TunerKind::Mab)
        .seed(42)
        .build()
        .expect("session");

    println!(
        "SSB at sf 0.5: {} tables, {:.1} MB of data, {} query templates",
        session.catalog().tables().len(),
        session.catalog().database_bytes() as f64 / 1e6,
        session.benchmark().templates().len()
    );

    println!(
        "\n{:>5} {:>10} {:>10} {:>10} {:>8}",
        "round", "rec (s)", "create(s)", "exec (s)", "indexes"
    );
    session
        .run_with(&mut |event| {
            println!(
                "{:>5} {:>10.2} {:>10.2} {:>10.2} {:>8}",
                event.round,
                event.record.recommendation.secs(),
                event.record.creation.secs(),
                event.record.execution.secs(),
                event.index_count,
            );
        })
        .expect("run");

    println!("\nFinal configuration:");
    let catalog = session.catalog();
    for ix in catalog.all_indexes() {
        let table = catalog.table(ix.def().table);
        let keys: Vec<&str> = ix
            .def()
            .key_cols
            .iter()
            .map(|&c| table.column(c).name())
            .collect();
        let incl: Vec<&str> = ix
            .def()
            .include_cols
            .iter()
            .map(|&c| table.column(c).name())
            .collect();
        println!(
            "  {}({}) include ({}) — {:.1} MB",
            table.name(),
            keys.join(", "),
            incl.join(", "),
            ix.size_bytes() as f64 / 1e6
        );
    }
}
