//! Quickstart: self-driving index tuning on the Star Schema Benchmark.
//!
//! Builds a small SSB database, runs the MAB tuner for 12 rounds of a
//! static workload, and prints the per-round time breakdown — watch the
//! execution time fall as the bandit converges on a configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use dba_bandits::prelude::*;

fn main() {
    let bench = dba_bandits::workloads::ssb::ssb(0.5);
    let mut catalog = bench.build_catalog(42).expect("catalog");
    let stats = StatsCatalog::build(&catalog);
    let cost = CostModel::paper_scale();

    println!(
        "SSB at sf 0.5: {} tables, {:.1} MB of data, {} query templates",
        catalog.tables().len(),
        catalog.database_bytes() as f64 / 1e6,
        bench.templates().len()
    );

    let mut tuner = MabTuner::new(
        &catalog,
        cost.clone(),
        MabConfig {
            memory_budget_bytes: catalog.database_bytes(), // paper: 1x data
            ..MabConfig::default()
        },
    );

    let seq = WorkloadSequencer::new(&bench, WorkloadKind::Static { rounds: 12 }, 42);
    let executor = Executor::new(cost.clone());

    println!(
        "\n{:>5} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "round", "rec (s)", "create(s)", "exec (s)", "indexes", "arms"
    );
    for round in 0..seq.rounds() {
        let outcome = tuner.recommend_and_apply(&mut catalog, &stats);
        let queries = seq.round_queries(&catalog, round).expect("queries");
        let execs: Vec<QueryExecution> = {
            let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
            let planner = Planner::new(&ctx);
            queries
                .iter()
                .map(|q| executor.execute(&catalog, q, &planner.plan(q)))
                .collect()
        };
        let exec_total: f64 = execs.iter().map(|e| e.total.secs()).sum();
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>10.2} {:>8} {:>8}",
            round + 1,
            outcome.recommendation_time.secs(),
            outcome.creation_time.secs(),
            exec_total,
            catalog.all_indexes().count(),
            tuner.arm_count(),
        );
        tuner.observe(&queries, &execs);
    }

    println!("\nFinal configuration:");
    for ix in catalog.all_indexes() {
        let table = catalog.table(ix.def().table);
        let keys: Vec<&str> = ix
            .def()
            .key_cols
            .iter()
            .map(|&c| table.column(c).name())
            .collect();
        let incl: Vec<&str> = ix
            .def()
            .include_cols
            .iter()
            .map(|&c| table.column(c).name())
            .collect();
        println!(
            "  {}({}) include ({}) — {:.1} MB",
            table.name(),
            keys.join(", "),
            incl.join(", "),
            ix.size_bytes() as f64 / 1e6
        );
    }
}
