//! Shifting analytics: the data-exploration scenario of the paper (§V-A
//! "dynamic shifting"). The workload's region of interest jumps between
//! disjoint TPC-H template groups; the tuner detects the shift, forgets
//! stale knowledge proportionally, drops obsolete indexes and adapts.
//!
//! Run with: `cargo run --release --example shifting_analytics`

use dba_bandits::prelude::*;

fn main() {
    let bench = dba_bandits::workloads::tpch::tpch(0.5);
    let mut catalog = bench.build_catalog(7).expect("catalog");
    let stats = StatsCatalog::build(&catalog);
    let cost = CostModel::paper_scale();

    let mut tuner = MabTuner::new(
        &catalog,
        cost.clone(),
        MabConfig {
            memory_budget_bytes: catalog.database_bytes(),
            qoi_window: 1, // react fast: only last round's templates matter
            ..MabConfig::default()
        },
    );

    // 3 groups x 6 rounds: a miniature of the paper's 4 x 20 setting.
    let seq = WorkloadSequencer::new(
        &bench,
        WorkloadKind::Shifting {
            groups: 3,
            rounds_per_group: 6,
        },
        7,
    );
    let executor = Executor::new(cost.clone());

    println!(
        "{:>5} {:>6} {:>10} {:>9} {:>9} {:>8}",
        "round", "group", "templates", "exec (s)", "created", "dropped"
    );
    for round in 0..seq.rounds() {
        let outcome = tuner.recommend_and_apply(&mut catalog, &stats);
        let queries = seq.round_queries(&catalog, round).expect("queries");
        let execs: Vec<QueryExecution> = {
            let ctx = PlannerContext::from_catalog(&catalog, &stats, &cost);
            let planner = Planner::new(&ctx);
            queries
                .iter()
                .map(|q| executor.execute(&catalog, q, &planner.plan(q)))
                .collect()
        };
        let exec_total: f64 = execs.iter().map(|e| e.total.secs()).sum();
        let marker = if round % 6 == 0 && round > 0 {
            "  <- workload shift"
        } else {
            ""
        };
        println!(
            "{:>5} {:>6} {:>10} {:>9.1} {:>9} {:>8}{}",
            round + 1,
            round / 6 + 1,
            queries.len(),
            exec_total,
            outcome.created,
            outcome.dropped,
            marker
        );
        tuner.observe(&queries, &execs);
    }
    println!(
        "\n{} templates summarised in the query store; final shift intensity {:.2}",
        tuner.query_store().template_count(),
        tuner.query_store().shift_intensity()
    );
}
