//! Shifting analytics: the data-exploration scenario of the paper (§V-A
//! "dynamic shifting"). The workload's region of interest jumps between
//! disjoint TPC-H template groups; the tuner detects the shift, forgets
//! stale knowledge proportionally, drops obsolete indexes and adapts.
//!
//! Built with [`SessionBuilder::build_with`], which keeps the concrete
//! `MabTuner` type so the example can report bandit internals (query-store
//! size, shift intensity) after the run.
//!
//! Run with: `cargo run --release --example shifting_analytics`

use dba_bandits::prelude::*;

fn main() {
    // 3 groups x 6 rounds: a miniature of the paper's 4 x 20 setting.
    let mut session = SessionBuilder::new()
        .benchmark(dba_bandits::workloads::tpch::tpch(0.5))
        .workload(WorkloadKind::Shifting {
            groups: 3,
            rounds_per_group: 6,
        })
        .seed(7)
        .build_with(|catalog, cost, budget| {
            MabTuner::new(
                catalog,
                cost.clone(),
                MabConfig {
                    memory_budget_bytes: budget,
                    qoi_window: 1, // react fast: only last round's templates matter
                    ..MabConfig::default()
                },
            )
        })
        .expect("session");

    println!(
        "{:>5} {:>6} {:>10} {:>9} {:>8}",
        "round", "group", "templates", "exec (s)", "indexes"
    );
    session
        .run_with(&mut |event| {
            let marker = if (event.round - 1) % 6 == 0 && event.round > 1 {
                "  <- workload shift"
            } else {
                ""
            };
            println!(
                "{:>5} {:>6} {:>10} {:>9.1} {:>8}{}",
                event.round,
                (event.round - 1) / 6 + 1,
                event.queries,
                event.record.execution.secs(),
                event.index_count,
                marker
            );
        })
        .expect("run");

    let tuner = session.advisor();
    println!(
        "\n{} templates summarised in the query store; final shift intensity {:.2}",
        tuner.query_store().template_count(),
        tuner.query_store().shift_intensity()
    );
}
