//! Ad-hoc cloud workload: the paper's "dynamic random" setting — queries
//! drawn at random every round, no representative workload ever exists.
//! Compares the self-driving MAB tuner against NoIndex and the
//! PDTool-style advisor (invoked every 4 rounds, as a cloud operator
//! would) on TPC-H Skew, where optimiser estimates mislead the advisor.
//!
//! Each tuner runs in its own [`TuningSession`] over shared generated
//! data, so the comparison is apples to apples.
//!
//! Run with: `cargo run --release --example adhoc_cloud`

use dba_bandits::prelude::*;

fn main() {
    let bench = dba_bandits::workloads::tpch::tpch_skew(0.5);
    let base = bench.build_catalog(99).expect("catalog");
    let workload = WorkloadKind::Random {
        rounds: 10,
        queries_per_round: 22,
    };

    println!("TPC-H Skew (zipf 4), 10 rounds of random ad-hoc queries:\n");

    for tuner in [TunerKind::NoIndex, TunerKind::PdTool, TunerKind::Mab] {
        let result = SessionBuilder::new()
            .benchmark(bench.clone())
            .shared_data(&base)
            .workload(workload)
            .tuner(tuner)
            .seed(99)
            .build()
            .expect("session")
            .run()
            .expect("run");
        println!(
            "{:<8} rec {:>8.1}s  create {:>8.1}s  exec {:>9.1}s  total {:>9.1}s",
            result.tuner,
            result.total_recommendation().secs(),
            result.total_creation().secs(),
            result.total_execution().secs(),
            result.total().secs(),
        );
    }

    println!("\nThe bandit learns from observed executions, so data skew");
    println!("misleads only the estimate-driven advisor, not the MAB.");
}
