//! Ad-hoc cloud workload: the paper's "dynamic random" setting — queries
//! drawn at random every round, no representative workload ever exists.
//! Compares the self-driving MAB tuner against NoIndex and the
//! PDTool-style advisor (invoked every 4 rounds, as a cloud operator
//! would) on TPC-H Skew, where optimiser estimates mislead the advisor.
//!
//! Run with: `cargo run --release --example adhoc_cloud`

use dba_bandits::prelude::*;
use dba_baselines::InvokeSchedule;
use dba_engine::QueryExecution;

fn run(
    label: &str,
    advisor: &mut dyn Advisor,
    bench: &Benchmark,
    base: &Catalog,
    stats: &StatsCatalog,
    cost: &CostModel,
) {
    let mut catalog = base.fork_empty();
    let seq = WorkloadSequencer::new(
        bench,
        WorkloadKind::Random {
            rounds: 10,
            queries_per_round: 22,
        },
        99,
    );
    let executor = Executor::new(cost.clone());
    let (mut rec, mut cre, mut exe) = (0.0, 0.0, 0.0);
    for round in 0..seq.rounds() {
        let c = advisor.before_round(round, &mut catalog, stats);
        rec += c.recommendation.secs();
        cre += c.creation.secs();
        let queries = seq.round_queries(&catalog, round).expect("queries");
        let execs: Vec<QueryExecution> = {
            let ctx = PlannerContext::from_catalog(&catalog, stats, cost);
            let planner = Planner::new(&ctx);
            queries
                .iter()
                .map(|q| executor.execute(&catalog, q, &planner.plan(q)))
                .collect()
        };
        exe += execs.iter().map(|e| e.total.secs()).sum::<f64>();
        advisor.after_round(&queries, &execs);
    }
    println!(
        "{:<8} rec {:>8.1}s  create {:>8.1}s  exec {:>9.1}s  total {:>9.1}s",
        label,
        rec,
        cre,
        exe,
        rec + cre + exe
    );
}

fn main() {
    let bench = dba_bandits::workloads::tpch::tpch_skew(0.5);
    let base = bench.build_catalog(99).expect("catalog");
    let stats = StatsCatalog::build(&base);
    let cost = CostModel::paper_scale();
    let budget = base.database_bytes();

    println!("TPC-H Skew (zipf 4), 10 rounds of random ad-hoc queries:\n");

    let mut noindex = NoIndexAdvisor;
    run("NoIndex", &mut noindex, &bench, &base, &stats, &cost);

    let mut pdtool = PdToolAdvisor::new(
        cost.clone(),
        dba_baselines::PdToolConfig::paper_defaults(budget, InvokeSchedule::EveryKRounds(4)),
    );
    run("PDTool", &mut pdtool, &bench, &base, &stats, &cost);

    let mut mab = MabAdvisor::new(
        &base,
        cost.clone(),
        MabConfig {
            memory_budget_bytes: budget,
            ..MabConfig::default()
        },
    );
    run("MAB", &mut mab, &bench, &base, &stats, &cost);

    println!("\nThe bandit learns from observed executions, so data skew");
    println!("misleads only the estimate-driven advisor, not the MAB.");
}
