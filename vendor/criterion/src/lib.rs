//! Offline shim for the subset of `criterion 0.5` used by this workspace's
//! benches: `bench_function`, `iter`, `iter_batched`, `criterion_group!`,
//! `criterion_main!`, and `black_box`. Reports wall-clock min/median/mean
//! per benchmark without outlier analysis or plots. See `vendor/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup between timed runs. The shim times
/// each routine invocation individually, so the variants behave alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine` repeatedly, recording one sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// included in the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate iterations per sample so quick routines are timed in
        // batches (measurable) while slow ones run once per sample.
        let mut bencher = Bencher {
            samples: Vec::with_capacity(2),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        let probe = bencher
            .samples
            .iter()
            .min()
            .copied()
            .unwrap_or(Duration::from_millis(1));
        let iters =
            (Duration::from_millis(2).as_nanos() / probe.as_nanos().max(1)).clamp(1, 10_000);

        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: iters as u64,
        };
        f(&mut bencher);
        report(id, &mut bencher.samples);
        self
    }

    pub fn final_summary(&self) {}
}

fn report(id: &str, samples: &mut [Duration]) {
    samples.sort_unstable();
    let min = samples.first().copied().unwrap_or_default();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
    println!(
        "{id:<40} min {:>12} med {:>12} mean {:>12} ({} samples)",
        fmt(min),
        fmt(median),
        fmt(mean),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// `criterion_group!` — both the simple and the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!` — runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
