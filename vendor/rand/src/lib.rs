//! Offline shim for the subset of `rand 0.8` used by this workspace.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and deterministic per seed. It is **not** stream-compatible
//! with the real `rand` crate; determinism guarantees hold within this
//! workspace only. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type `gen()` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range `gen_range()` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.27..0.33).contains(&rate), "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
