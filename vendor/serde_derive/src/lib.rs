//! No-op derive macros standing in for `serde_derive`. The annotations in
//! the workspace are kept so the real crate can be swapped back in, but no
//! impls are generated (nothing in the workspace serializes yet).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
