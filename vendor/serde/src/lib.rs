//! Offline shim for `serde`: the two trait names plus the derive macros,
//! so `#[derive(Serialize, Deserialize)]` annotations compile. The derives
//! emit no impls — see `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
