//! A small fully-connected neural network with backpropagation — just
//! enough for the DDQN baseline (§V-C uses 4 hidden layers of 8 neurons).
//!
//! Implemented natively: the network is tiny (a few hundred weights), so a
//! straightforward SGD/momentum implementation is faster than pulling in a
//! framework, and keeps the workspace dependency-light.

// Index-based loops mirror the layer equations they implement.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::Rng;

/// One dense layer: `out = act(W x + b)`.
#[derive(Debug, Clone)]
struct Layer {
    weights: Vec<f64>, // out × in, row-major
    bias: Vec<f64>,
    vel_w: Vec<f64>,
    vel_b: Vec<f64>,
    inputs: usize,
    outputs: usize,
    relu: bool,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, relu: bool, rng: &mut StdRng) -> Self {
        // He initialisation.
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Layer {
            weights,
            bias: vec![0.0; outputs],
            vel_w: vec![0.0; inputs * outputs],
            vel_b: vec![0.0; outputs],
            inputs,
            outputs,
            relu,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.inputs);
        let mut out = self.bias.clone();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = out[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            out[o] = if self.relu { acc.max(0.0) } else { acc };
        }
        out
    }
}

/// Multi-layer perceptron with scalar output, trained by MSE + momentum
/// SGD.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    pub learning_rate: f64,
    pub momentum: f64,
}

impl Mlp {
    /// `sizes` = [input, hidden..., output]. Hidden layers use ReLU; the
    /// output layer is linear.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Layer::new(w[0], w[1], i + 2 < sizes.len(), rng))
            .collect();
        Mlp {
            layers,
            learning_rate: 5e-3,
            momentum: 0.9,
        }
    }

    /// Forward pass returning the scalar output.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur[0]
    }

    /// One SGD step on a single (x, target) example with MSE loss.
    /// Returns the pre-update squared error.
    pub fn train_one(&mut self, x: &[f64], target: f64) -> f64 {
        // Forward, caching activations.
        let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
        for layer in &self.layers {
            let next = layer.forward(activations.last().unwrap());
            activations.push(next);
        }
        let output = activations.last().unwrap()[0];
        let err = output - target;

        // Backward.
        let mut grad: Vec<f64> = vec![2.0 * err]; // dL/d_out
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            let input = &activations[li];
            let out_act = &activations[li + 1];
            // ReLU derivative on this layer's outputs.
            let local: Vec<f64> = grad
                .iter()
                .zip(out_act)
                .map(|(&g, &a)| if layer.relu && a <= 0.0 { 0.0 } else { g })
                .collect();
            // Gradient wrt inputs, to propagate.
            let mut grad_in = vec![0.0; layer.inputs];
            for o in 0..layer.outputs {
                let g = local[o];
                if g == 0.0 {
                    continue;
                }
                let row_start = o * layer.inputs;
                for i in 0..layer.inputs {
                    grad_in[i] += layer.weights[row_start + i] * g;
                }
                // Parameter updates (momentum SGD).
                for i in 0..layer.inputs {
                    let dw = g * input[i];
                    let v = &mut layer.vel_w[row_start + i];
                    *v = self.momentum * *v - self.learning_rate * dw;
                    layer.weights[row_start + i] += *v;
                }
                let vb = &mut layer.vel_b[o];
                *vb = self.momentum * *vb - self.learning_rate * g;
                layer.bias[o] += *vb;
            }
            grad = grad_in;
        }
        err * err
    }

    /// Copy all parameters from another network (target-network sync).
    pub fn copy_from(&mut self, other: &Mlp) {
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.weights.copy_from_slice(&b.weights);
            a.bias.copy_from_slice(&b.bias);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::rng::rng_for;

    #[test]
    fn learns_a_linear_function() {
        let mut rng = rng_for(1, "nn", 0);
        let mut net = Mlp::new(&[2, 8, 8, 1], &mut rng);
        let mut data_rng = rng_for(1, "nn-data", 0);
        for _ in 0..4000 {
            let x = [data_rng.gen_range(-1.0..1.0), data_rng.gen_range(-1.0..1.0)];
            let y = 3.0 * x[0] - 2.0 * x[1] + 0.5;
            net.train_one(&x, y);
        }
        let mut max_err: f64 = 0.0;
        for _ in 0..50 {
            let x = [data_rng.gen_range(-1.0..1.0), data_rng.gen_range(-1.0..1.0)];
            let y = 3.0 * x[0] - 2.0 * x[1] + 0.5;
            max_err = max_err.max((net.predict(&x) - y).abs());
        }
        assert!(max_err < 0.3, "max error {max_err}");
    }

    #[test]
    fn learns_a_nonlinear_function() {
        let mut rng = rng_for(2, "nn", 0);
        let mut net = Mlp::new(&[1, 8, 8, 8, 8, 1], &mut rng);
        net.learning_rate = 3e-3;
        let mut data_rng = rng_for(2, "nn-data", 0);
        for _ in 0..12_000 {
            let x: [f64; 1] = [data_rng.gen_range(-1.0..1.0)];
            let y = x[0].abs();
            net.train_one(&x, y);
        }
        let mut total_err = 0.0;
        for i in 0..41 {
            let x = [-1.0 + i as f64 * 0.05];
            total_err += (net.predict(&x) - x[0].abs()).abs();
        }
        assert!(total_err / 41.0 < 0.15, "avg |err| {}", total_err / 41.0);
    }

    #[test]
    fn target_network_copy_matches_exactly() {
        let mut rng = rng_for(3, "nn", 0);
        let mut a = Mlp::new(&[3, 8, 1], &mut rng);
        let mut b = Mlp::new(&[3, 8, 1], &mut rng);
        a.train_one(&[0.1, 0.2, 0.3], 1.0);
        assert_ne!(a.predict(&[0.5, 0.5, 0.5]), b.predict(&[0.5, 0.5, 0.5]));
        b.copy_from(&a);
        assert_eq!(a.predict(&[0.5, 0.5, 0.5]), b.predict(&[0.5, 0.5, 0.5]));
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = rng_for(4, "nn", 0);
        let mut net = Mlp::new(&[2, 8, 8, 1], &mut rng);
        let first = net.train_one(&[0.3, -0.4], 2.0);
        for _ in 0..300 {
            net.train_one(&[0.3, -0.4], 2.0);
        }
        let last = net.train_one(&[0.3, -0.4], 2.0);
        assert!(last < first / 10.0, "loss {first} → {last}");
    }
}
