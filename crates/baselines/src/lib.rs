//! The tuners the paper compares (§V): the commercial-style Physical
//! Design Tool (PDTool), the no-op NoIndex baseline, DDQN reinforcement
//! learning (and its single-column variant), and a thin adapter exposing
//! the MAB tuner behind the same [`Advisor`] interface so the experiment
//! harness can drive all of them identically.

pub mod ddqn;
pub mod mab;
pub mod nn;
pub mod noindex;
pub mod pdtool;

use dba_common::SimSeconds;
use dba_engine::{Query, QueryExecution};
use dba_optimizer::StatsCatalog;
use dba_storage::Catalog;

pub use ddqn::{DdqnAdvisor, DdqnConfig};
pub use mab::MabAdvisor;
pub use noindex::NoIndexAdvisor;
pub use pdtool::{InvokeSchedule, PdToolAdvisor, PdToolConfig};

/// Time charged by an advisor in one round, split the way Table I reports
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvisorCost {
    pub recommendation: SimSeconds,
    pub creation: SimSeconds,
}

/// Uniform tuner interface driven by the experiment harness: a
/// recommendation step before each round's workload, an observation step
/// after.
pub trait Advisor {
    fn name(&self) -> &str;

    /// Adjust the physical design before round `round` (0-based) executes.
    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
    ) -> AdvisorCost;

    /// Observe the executed workload.
    fn after_round(&mut self, queries: &[Query], executions: &[QueryExecution]);
}
