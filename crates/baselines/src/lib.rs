//! The tuners the paper compares (§V): the commercial-style Physical
//! Design Tool (PDTool), the no-op NoIndex baseline, and DDQN
//! reinforcement learning (plus its single-column variant). All implement
//! the [`Advisor`] interface from `dba-core`, as does the MAB tuner
//! itself, so a tuning session can drive any of them identically.

pub mod ddqn;
pub mod nn;
pub mod noindex;
pub mod pdtool;

pub use dba_core::{Advisor, AdvisorCost};

pub use ddqn::{DdqnAdvisor, DdqnConfig};
pub use noindex::NoIndexAdvisor;
pub use pdtool::{InvokeSchedule, PdToolAdvisor, PdToolConfig};
