//! Adapter exposing the paper's MAB tuner ([`dba_core::MabTuner`]) behind
//! the [`Advisor`] interface.

use dba_core::{MabConfig, MabTuner};
use dba_engine::{CostModel, Query, QueryExecution};
use dba_optimizer::StatsCatalog;
use dba_storage::Catalog;

use crate::{Advisor, AdvisorCost};

pub struct MabAdvisor {
    tuner: MabTuner,
}

impl MabAdvisor {
    pub fn new(catalog: &Catalog, cost: CostModel, config: MabConfig) -> Self {
        MabAdvisor {
            tuner: MabTuner::new(catalog, cost, config),
        }
    }

    pub fn tuner(&self) -> &MabTuner {
        &self.tuner
    }
}

impl Advisor for MabAdvisor {
    fn name(&self) -> &str {
        "MAB"
    }

    fn before_round(
        &mut self,
        _round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
    ) -> AdvisorCost {
        let outcome = self.tuner.recommend_and_apply(catalog, stats);
        AdvisorCost {
            recommendation: outcome.recommendation_time,
            creation: outcome.creation_time,
        }
    }

    fn after_round(&mut self, queries: &[Query], executions: &[QueryExecution]) {
        self.tuner.observe(queries, executions);
    }
}
