//! PDTool: a DTA-class physical design advisor.
//!
//! Reproduces the behaviour of the commercial tool the paper compares
//! against: it is invoked on a schedule with a *training workload*, it
//! generates per-query candidate indexes, runs an **index merging** phase
//! (the capability the paper notes MAB lacks, §V-B1), costs candidates
//! through the optimiser's **what-if** interface, greedily selects under
//! the memory budget by estimated-benefit density, and materialises its
//! recommendation. It trusts the optimiser completely — inheriting every
//! cardinality misestimate, which is exactly how the paper's PDTool goes
//! wrong under skew and correlation.
//!
//! Recommendation *time* is charged through a calibrated model: a fixed
//! invocation overhead plus a per-what-if-call cost, matching the scaling
//! the paper reports ("average time of a single PDTool invocation grows
//! noticeably with training workload size", §V-B3), with an optional cap
//! (the paper limits TPC-DS dynamic-random invocations to one hour).

use std::collections::HashMap;

use dba_common::{IndexId, SimSeconds, TableId};
use dba_core::RoundContext;
use dba_engine::{CostModel, Query, QueryExecution};
use dba_optimizer::{CardEstimator, StatsCatalog, WhatIfService};
use dba_storage::{Catalog, IndexDef};

use crate::{Advisor, AdvisorCost};

/// When PDTool is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeSchedule {
    /// Invoke in the round after new templates appear, training on the
    /// previous round's queries (the paper's static & shifting setting —
    /// rounds 2, 22, 42, 62 under shifting).
    OnWorkloadChange,
    /// Invoke every `k` rounds, training on the queries of the last `k`
    /// rounds (the paper's dynamic-random setting, k = 4).
    EveryKRounds(usize),
}

/// PDTool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PdToolConfig {
    pub memory_budget_bytes: u64,
    pub schedule: InvokeSchedule,
    /// Maximum key columns per candidate.
    pub max_key_width: usize,
    /// Enable the index-merging phase.
    pub enable_merging: bool,
    /// Cap on a single invocation's (simulated) running time; candidates
    /// beyond the cap are not evaluated (quality degrades), as with the
    /// paper's 1-hour TPC-DS limit.
    pub time_limit: Option<SimSeconds>,
    /// Fixed per-invocation overhead, seconds.
    pub invocation_overhead_s: f64,
    /// Simulated seconds per what-if optimisation call.
    pub per_whatif_call_s: f64,
}

impl PdToolConfig {
    pub fn paper_defaults(memory_budget_bytes: u64, schedule: InvokeSchedule) -> Self {
        PdToolConfig {
            memory_budget_bytes,
            schedule,
            max_key_width: 3,
            enable_merging: true,
            time_limit: None,
            invocation_overhead_s: 15.0,
            per_whatif_call_s: 0.04,
        }
    }
}

/// The advisor.
pub struct PdToolAdvisor {
    config: PdToolConfig,
    cost: CostModel,
    /// Queries recorded since the last invocation (training pool).
    history: Vec<Vec<Query>>,
    /// Templates seen so far (for change detection).
    seen_templates: Vec<dba_common::TemplateId>,
    /// Whether the previous round introduced unseen templates.
    pending_change: bool,
    /// Indexes this tool materialised.
    owned: Vec<IndexId>,
    round: usize,
}

impl PdToolAdvisor {
    pub fn new(cost: CostModel, config: PdToolConfig) -> Self {
        PdToolAdvisor {
            config,
            cost,
            history: Vec::new(),
            seen_templates: Vec::new(),
            pending_change: false,
            owned: Vec::new(),
            round: 0,
        }
    }

    fn should_invoke(&self) -> bool {
        match self.config.schedule {
            InvokeSchedule::OnWorkloadChange => self.pending_change,
            InvokeSchedule::EveryKRounds(k) => {
                self.round > 0 && self.round.is_multiple_of(k) && !self.history.is_empty()
            }
        }
    }

    fn training_workload(&self) -> Vec<Query> {
        match self.config.schedule {
            // Train on the most recent round (the round that introduced the
            // new queries).
            InvokeSchedule::OnWorkloadChange => self.history.last().cloned().unwrap_or_default(),
            // Train on everything since the previous invocation.
            InvokeSchedule::EveryKRounds(k) => self
                .history
                .iter()
                .rev()
                .take(k)
                .flat_map(|r| r.iter().cloned())
                .collect(),
        }
    }

    /// Per-query candidate generation: the most-selective ordering of each
    /// table's indexable columns (up to `max_key_width`), its covering
    /// variant, and single-column candidates.
    fn generate_candidates(&self, workload: &[Query], est: &CardEstimator<'_>) -> Vec<IndexDef> {
        let mut out: Vec<IndexDef> = Vec::new();
        let push = |def: IndexDef, out: &mut Vec<IndexDef>| {
            if !out.contains(&def) {
                out.push(def);
            }
        };

        for q in workload {
            for &table in &q.tables {
                let preds = q.predicates_on(table);
                let mut cols: Vec<(u16, f64)> = preds
                    .iter()
                    .map(|p| (p.column.ordinal, est.predicate_selectivity(p)))
                    .collect();
                for jc in q.join_columns_on(table) {
                    if !cols.iter().any(|(c, _)| *c == jc.ordinal) {
                        cols.push((jc.ordinal, 0.05));
                    }
                }
                cols.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                cols.dedup_by_key(|(c, _)| *c);
                if cols.is_empty() {
                    continue;
                }

                // Single-column candidates.
                for &(c, _) in &cols {
                    push(IndexDef::new(table, vec![c], vec![]), &mut out);
                }
                // FK covering candidates: join column keyed, everything
                // else included — the index shape star-join INL plans need.
                for jc in q.join_columns_on(table) {
                    let mut include: Vec<u16> = q
                        .columns_needed_on(table)
                        .into_iter()
                        .filter(|&c| c != jc.ordinal)
                        .collect();
                    include.sort_unstable();
                    if !include.is_empty() {
                        push(IndexDef::new(table, vec![jc.ordinal], include), &mut out);
                    }
                }
                // Most-selective-first multi-column candidate + covering.
                let key: Vec<u16> = cols
                    .iter()
                    .take(self.config.max_key_width)
                    .map(|&(c, _)| c)
                    .collect();
                if key.len() > 1 {
                    push(IndexDef::new(table, key.clone(), vec![]), &mut out);
                }
                let mut include: Vec<u16> = q
                    .columns_needed_on(table)
                    .into_iter()
                    .filter(|c| !key.contains(c))
                    .collect();
                include.sort_unstable();
                if !include.is_empty() {
                    push(IndexDef::new(table, key, include), &mut out);
                }
            }
        }
        out
    }

    /// Index-merging phase: candidates on the same table whose key sets
    /// share a leading column are merged into a wider index serving both
    /// (Chaudhuri & Narasayya, ICDE 1999). This is PDTool's edge on
    /// uniform static TPC-H.
    fn merge_candidates(&self, candidates: &mut Vec<IndexDef>) {
        let mut merged: Vec<IndexDef> = Vec::new();
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                let (a, b) = (&candidates[i], &candidates[j]);
                if a.table != b.table || a.key_cols.first() != b.key_cols.first() {
                    continue;
                }
                let mut key = a.key_cols.clone();
                for &c in &b.key_cols {
                    if !key.contains(&c) && key.len() < self.config.max_key_width {
                        key.push(c);
                    }
                }
                let mut include: Vec<u16> = a
                    .include_cols
                    .iter()
                    .chain(&b.include_cols)
                    .copied()
                    .filter(|c| !key.contains(c))
                    .collect();
                include.sort_unstable();
                include.dedup();
                let m = IndexDef::new(a.table, key, include);
                if !candidates.contains(&m) && !merged.contains(&m) {
                    merged.push(m);
                }
            }
        }
        candidates.extend(merged);
    }

    /// One full invocation: candidates → what-if costing → greedy
    /// selection → return (chosen config, simulated recommendation time).
    ///
    /// Costing goes through the session's shared [`WhatIfService`]: the
    /// base + each-candidate-alone shape is priced as one batched
    /// marginals pass, so queries untouched by a candidate's table reuse
    /// the base plan from the memo instead of replanning — and repeat
    /// invocations over an unchanged catalog reuse earlier invocations'
    /// plans outright. (The *simulated* recommendation time still bills
    /// one optimiser call per query × candidate, as the paper measures —
    /// the memo saves real compute, not modelled DBMS time.)
    fn recommend(
        &self,
        workload: &[Query],
        catalog: &Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
    ) -> (Vec<IndexDef>, SimSeconds) {
        let est = CardEstimator::new(stats);
        let mut candidates = self.generate_candidates(workload, &est);
        if self.config.enable_merging {
            self.merge_candidates(&mut candidates);
        }

        // Simulated invocation cost: overhead + one what-if call per
        // (query × candidate). The time limit truncates the candidate list
        // (quality degradation under the cap, §V-A TPC-DS note).
        let mut whatif_calls = workload.len() as f64 * candidates.len() as f64;
        if let Some(limit) = self.config.time_limit {
            let affordable = ((limit.secs() - self.config.invocation_overhead_s)
                / self.config.per_whatif_call_s
                / workload.len().max(1) as f64)
                .max(8.0) as usize;
            if candidates.len() > affordable {
                candidates.truncate(affordable);
                whatif_calls = workload.len() as f64 * candidates.len() as f64;
            }
        }
        let rec_time = SimSeconds::new(
            self.config.invocation_overhead_s + whatif_calls * self.config.per_whatif_call_s,
        );

        // What-if benefits: estimated workload cost without candidates vs
        // with each candidate alone, as one batched marginals pass.
        let (base_cost, _) = whatif.cost_workload(catalog, stats, workload, &[], false);
        let configs: Vec<Vec<IndexDef>> = candidates.iter().cloned().map(|d| vec![d]).collect();
        let costs = whatif.marginals(catalog, stats, workload, &configs, false);
        let mut scored: Vec<(IndexDef, f64, u64)> = candidates
            .into_iter()
            .zip(costs)
            .map(|(def, cost)| {
                let used: u32 = cost.usage.iter().sum();
                let benefit = if used > 0 {
                    (base_cost - cost.total).secs().max(0.0)
                } else {
                    0.0
                };
                let size = catalog.estimated_live_bytes(&def);
                (def, benefit, size)
            })
            .filter(|(_, benefit, _)| benefit.is_finite() && *benefit > 0.0)
            .collect();

        // Greedy by benefit density with same-(table, leading-key) damping
        // to avoid stacking near-duplicates.
        scored.sort_by(|a, b| (b.1 / b.2.max(1) as f64).total_cmp(&(a.1 / a.2.max(1) as f64)));
        let mut chosen: Vec<IndexDef> = Vec::new();
        let mut budget = self.config.memory_budget_bytes;
        let mut served: HashMap<(TableId, u16), u32> = HashMap::new();
        for (def, benefit, size) in scored {
            if size > budget {
                continue;
            }
            let lead = (def.table, def.key_cols[0]);
            let times_served = served.get(&lead).copied().unwrap_or(0);
            // Diminishing value of stacked indexes on the same lead column.
            let effective = benefit * 0.3f64.powi(times_served as i32);
            if effective <= 0.0 {
                continue;
            }
            budget -= size;
            *served.entry(lead).or_insert(0) += 1;
            chosen.push(def);
        }
        (chosen, rec_time)
    }
}

impl Advisor for PdToolAdvisor {
    fn name(&self) -> &str {
        "PDTool"
    }

    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
    ) -> AdvisorCost {
        self.round = round;
        if !self.should_invoke() {
            return AdvisorCost::default();
        }
        let workload = self.training_workload();
        self.pending_change = false;
        if workload.is_empty() {
            return AdvisorCost::default();
        }

        let (target, rec_time) = self.recommend(&workload, catalog, stats, whatif);

        // Materialise the recommendation: drop indexes no longer wanted,
        // create the new ones.
        let mut creation = SimSeconds::ZERO;
        let mut keep: Vec<IndexId> = Vec::new();
        for id in self.owned.drain(..) {
            let still_wanted = catalog
                .index(id)
                .map(|ix| target.contains(ix.def()))
                .unwrap_or(false);
            if still_wanted {
                keep.push(id);
            } else {
                let _ = catalog.drop_index(id);
            }
        }
        self.owned = keep;
        for def in target {
            if catalog.find_index(&def).is_some() {
                continue;
            }
            let build = self.cost.index_build(
                catalog.live_heap_pages(def.table),
                catalog.live_rows(def.table),
                catalog.estimated_live_bytes(&def),
            );
            if let Ok(meta) = catalog.create_index(def) {
                creation += build;
                self.owned.push(meta.id);
            }
        }

        AdvisorCost {
            recommendation: rec_time,
            creation,
        }
    }

    fn after_round(
        &mut self,
        _ctx: &mut RoundContext<'_>,
        queries: &[Query],
        _executions: &[QueryExecution],
    ) {
        let mut new_template = false;
        for q in queries {
            if !self.seen_templates.contains(&q.template) {
                self.seen_templates.push(q.template);
                new_template = true;
            }
        }
        if new_template {
            self.pending_change = true;
        }
        self.history.push(queries.to_vec());
        // Bound memory: only the last few rounds are ever used for training.
        if self.history.len() > 8 {
            self.history.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{ColumnId, QueryId, TemplateId};
    use dba_engine::{Executor, Predicate};
    use dba_optimizer::{Planner, PlannerContext};
    use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("k", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "v",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 49_999 },
                ),
                ColumnSpec::new(
                    "w",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
                ColumnSpec::new(
                    "pad",
                    ColumnType::Dict { cardinality: 64 },
                    Distribution::Uniform { lo: 0, hi: 63 },
                ),
            ],
        );
        Catalog::new(vec![TableBuilder::new(t, 50_000).build(TableId(0), 99)])
    }

    fn query(id: u64, template: u32, value: i64) -> Query {
        Query {
            id: QueryId(id),
            template: TemplateId(template),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 1), value)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        }
    }

    fn run_round(
        catalog: &Catalog,
        stats: &StatsCatalog,
        cost: &CostModel,
        queries: &[Query],
    ) -> Vec<QueryExecution> {
        let ctx = PlannerContext::from_catalog(catalog, stats, cost);
        // lint: allow(G03) — execution path: plans feed Executor::execute, what-if memoization must not intercept them
        let planner = Planner::new(&ctx);
        let exec = Executor::new(cost.clone());
        queries
            .iter()
            .map(|q| exec.execute(catalog, q, &planner.plan(q)))
            .collect()
    }

    fn svc() -> WhatIfService {
        WhatIfService::new(CostModel::unit_scale())
    }

    /// Drive the observation step with a [`RoundContext`] over the
    /// current (read-only-round) catalog state.
    fn observe(
        pd: &mut PdToolAdvisor,
        cat: &Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
        qs: &[Query],
        ex: &[QueryExecution],
    ) {
        let mut ctx = RoundContext {
            catalog: cat,
            stats,
            whatif,
        };
        pd.after_round(&mut ctx, qs, ex);
    }

    #[test]
    fn invokes_after_new_templates_and_materialises() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut pd = PdToolAdvisor::new(
            cost.clone(),
            PdToolConfig::paper_defaults(cat.database_bytes(), InvokeSchedule::OnWorkloadChange),
        );

        // Round 0: no invocation (nothing seen yet).
        let mut whatif = svc();
        let c0 = pd.before_round(0, &mut cat, &stats, &mut whatif);
        assert_eq!(c0.recommendation.secs(), 0.0);
        let qs: Vec<Query> = (0..3).map(|i| query(i, 1, i as i64 * 100)).collect();
        let ex = run_round(&cat, &stats, &cost, &qs);
        observe(&mut pd, &cat, &stats, &mut whatif, &qs, &ex);

        // Round 1: new templates seen → invoke, recommend, materialise.
        let c1 = pd.before_round(1, &mut cat, &stats, &mut whatif);
        assert!(c1.recommendation.secs() > 0.0);
        assert!(cat.all_indexes().count() > 0, "recommendation materialised");
        assert!(c1.creation.secs() > 0.0);

        // Round 2: no new templates → no invocation.
        let qs2: Vec<Query> = (10..13).map(|i| query(i, 1, i as i64 * 50)).collect();
        let ex2 = run_round(&cat, &stats, &cost, &qs2);
        observe(&mut pd, &cat, &stats, &mut whatif, &qs2, &ex2);
        let c2 = pd.before_round(2, &mut cat, &stats, &mut whatif);
        assert_eq!(c2.recommendation.secs(), 0.0);
    }

    #[test]
    fn recommended_index_actually_speeds_up_the_workload() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let qs: Vec<Query> = (0..4).map(|i| query(i, 1, i as i64 * 37)).collect();
        let before: f64 = run_round(&cat, &stats, &cost, &qs)
            .iter()
            .map(|e| e.total.secs())
            .sum();

        let mut pd = PdToolAdvisor::new(
            cost.clone(),
            PdToolConfig::paper_defaults(cat.database_bytes(), InvokeSchedule::OnWorkloadChange),
        );
        let mut whatif = svc();
        let ex = run_round(&cat, &stats, &cost, &qs);
        observe(&mut pd, &cat, &stats, &mut whatif, &qs, &ex);
        pd.before_round(1, &mut cat, &stats, &mut whatif);
        let after: f64 = run_round(&cat, &stats, &cost, &qs)
            .iter()
            .map(|e| e.total.secs())
            .sum();
        assert!(
            after < before / 2.0,
            "selective workload must speed up: {before} → {after}"
        );
    }

    #[test]
    fn every_k_rounds_schedule() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut pd = PdToolAdvisor::new(
            cost.clone(),
            PdToolConfig::paper_defaults(cat.database_bytes(), InvokeSchedule::EveryKRounds(4)),
        );
        let mut whatif = svc();
        let mut invocations = Vec::new();
        for round in 0..9 {
            let c = pd.before_round(round, &mut cat, &stats, &mut whatif);
            if c.recommendation.secs() > 0.0 {
                invocations.push(round);
            }
            let qs: Vec<Query> = (0..2)
                .map(|i| query(round as u64 * 10 + i, 1, 500))
                .collect();
            let ex = run_round(&cat, &stats, &cost, &qs);
            observe(&mut pd, &cat, &stats, &mut whatif, &qs, &ex);
        }
        assert_eq!(invocations, vec![4, 8]);
    }

    #[test]
    fn time_limit_caps_recommendation_time() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        // Many templates so the candidate set is large.
        let qs: Vec<Query> = (0..20)
            .map(|i| {
                let mut q = query(i, i as u32, (i as i64 * 997) % 50_000);
                // vary predicate columns across templates
                if i % 2 == 0 {
                    q.predicates
                        .push(Predicate::range(ColumnId::new(TableId(0), 2), 0, 10));
                }
                q
            })
            .collect();

        let mk = |limit| {
            let mut cfg = PdToolConfig::paper_defaults(u64::MAX, InvokeSchedule::OnWorkloadChange);
            cfg.time_limit = limit;
            PdToolAdvisor::new(cost.clone(), cfg)
        };

        let mut whatif = svc();
        let mut unlimited = mk(None);
        let ex = run_round(&cat, &stats, &cost, &qs);
        observe(&mut unlimited, &cat, &stats, &mut whatif, &qs, &ex);
        let free = unlimited.before_round(1, &mut cat, &stats, &mut whatif);

        let mut cat2 = catalog();
        let mut whatif2 = svc();
        let mut capped = mk(Some(SimSeconds::new(16.0)));
        let ex2 = run_round(&cat2, &stats, &cost, &qs);
        observe(&mut capped, &cat2, &stats, &mut whatif2, &qs, &ex2);
        let cap = capped.before_round(1, &mut cat2, &stats, &mut whatif2);

        assert!(cap.recommendation.secs() <= free.recommendation.secs());
        assert!(cap.recommendation.secs() <= 16.0 + 15.0 + 1.0);
    }

    #[test]
    fn merging_produces_multi_column_candidates() {
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let pd = PdToolAdvisor::new(
            cost,
            PdToolConfig::paper_defaults(u64::MAX, InvokeSchedule::OnWorkloadChange),
        );
        let est = CardEstimator::new(&stats);
        // Two queries sharing a leading column with *different* secondary
        // predicate columns → merging should produce the union index
        // (v, w, pad) that neither query generated alone.
        let q1 = {
            let mut q = query(0, 1, 5);
            q.predicates
                .push(Predicate::range(ColumnId::new(TableId(0), 2), 0, 10));
            q
        };
        let q2 = {
            let mut q = query(1, 2, 9);
            q.predicates
                .push(Predicate::eq(ColumnId::new(TableId(0), 3), 7));
            q
        };
        let mut cands = pd.generate_candidates(&[q1, q2], &est);
        let before = cands.len();
        pd.merge_candidates(&mut cands);
        assert!(cands.len() > before, "merging adds merged candidates");
        assert!(
            cands.iter().any(|d| d.key_cols.len() >= 3),
            "union of (v,w) and (v,pad) should appear"
        );
    }
}
