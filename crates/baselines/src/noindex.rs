//! The NoIndex baseline: primary/foreign-key structures only (in our
//! substrate: heap scans everywhere), never recommends anything.

use dba_core::RoundContext;
use dba_engine::{Query, QueryExecution};
use dba_optimizer::{StatsCatalog, WhatIfService};
use dba_storage::Catalog;

use crate::{Advisor, AdvisorCost};

/// Does nothing, costs nothing.
#[derive(Debug, Default)]
pub struct NoIndexAdvisor;

impl Advisor for NoIndexAdvisor {
    fn name(&self) -> &str {
        "NoIndex"
    }

    fn before_round(
        &mut self,
        _round: usize,
        _catalog: &mut Catalog,
        _stats: &StatsCatalog,
        _whatif: &mut WhatIfService,
    ) -> AdvisorCost {
        AdvisorCost::default()
    }

    fn after_round(
        &mut self,
        _ctx: &mut RoundContext<'_>,
        _queries: &[Query],
        _executions: &[QueryExecution],
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::TableId;
    use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};

    #[test]
    fn noindex_never_touches_the_catalog() {
        let schema = TableSchema::new(
            "t",
            vec![ColumnSpec::new(
                "a",
                ColumnType::Int,
                Distribution::Sequential,
            )],
        );
        let mut cat = Catalog::new(vec![TableBuilder::new(schema, 100).build(TableId(0), 1)]);
        let stats = StatsCatalog::build(&cat);
        let mut whatif = WhatIfService::new(dba_engine::CostModel::unit_scale());
        let mut advisor = NoIndexAdvisor;
        for round in 0..5 {
            let cost = advisor.before_round(round, &mut cat, &stats, &mut whatif);
            assert_eq!(cost.recommendation.secs(), 0.0);
            assert_eq!(cost.creation.secs(), 0.0);
            let snapshot = cat.clone();
            let mut ctx = RoundContext {
                catalog: &snapshot,
                stats: &stats,
                whatif: &mut whatif,
            };
            advisor.after_round(&mut ctx, &[], &[]);
        }
        assert_eq!(cat.all_indexes().count(), 0);
    }
}
