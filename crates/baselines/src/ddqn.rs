//! DDQN baseline (§V-C): double deep-Q learning over the same arms,
//! contexts and rewards as the MAB.
//!
//! Follows the paper's experiment: a 4×8 MLP Q-network, discount γ = 0.99,
//! ε decaying exponentially from 1 to 0.01 at the 2400th sample (one
//! sample = one index chosen), random whole-round exploration, and — for
//! fairness — "we combine all of MAB's arms' contexts as DDQN state" and
//! present the same candidate indices. `DDQN-SC` restricts candidates to
//! single-column indices (Sharma et al.'s original formulation).

use std::collections::{HashMap, HashSet, VecDeque};

use dba_common::{rng::rng_for, ColumnId, IndexId, SimSeconds};
use dba_core::{
    arms::{ArmGenConfig, ArmRegistry},
    context::{ContextBuilder, ContextLayout},
    linalg::to_dense,
    query_store::QueryStore,
    reward::RewardShaper,
};
use dba_engine::{CostModel, Query, QueryExecution};
use dba_optimizer::{CardEstimator, StatsCatalog};
use dba_storage::Catalog;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::nn::Mlp;
use crate::{Advisor, AdvisorCost};

/// DDQN hyperparameters (defaults follow §V-C).
#[derive(Debug, Clone, Copy)]
pub struct DdqnConfig {
    pub memory_budget_bytes: u64,
    /// Restrict candidates to single-column indices (DDQN-SC).
    pub single_column_only: bool,
    pub gamma: f64,
    pub eps_start: f64,
    pub eps_end: f64,
    /// Sample count at which ε reaches `eps_end`.
    pub eps_decay_samples: f64,
    pub replay_capacity: usize,
    pub batch_size: usize,
    /// Sync the target network every this many samples.
    pub target_sync_every: usize,
    pub seed: u64,
    pub arm_gen: ArmGenConfig,
    pub qoi_window: usize,
    pub first_round_setup_s: f64,
    pub per_arm_scored_s: f64,
}

impl DdqnConfig {
    pub fn paper_defaults(memory_budget_bytes: u64, seed: u64) -> Self {
        DdqnConfig {
            memory_budget_bytes,
            single_column_only: false,
            gamma: 0.99,
            eps_start: 1.0,
            eps_end: 0.01,
            eps_decay_samples: 2400.0,
            replay_capacity: 4096,
            batch_size: 32,
            target_sync_every: 256,
            seed,
            arm_gen: ArmGenConfig::default(),
            qoi_window: 2,
            first_round_setup_s: 8.0,
            per_arm_scored_s: 0.002,
        }
    }

    pub fn single_column(mut self) -> Self {
        self.single_column_only = true;
        self
    }
}

/// A transition awaiting its next-state half.
struct PendingTransition {
    input: Vec<f64>, // state ⊕ action features
    reward: f64,
}

/// A complete replay-buffer entry.
struct Transition {
    input: Vec<f64>,
    reward: f64,
    /// Next state ⊕ each candidate next action (subsampled).
    next_inputs: Vec<Vec<f64>>,
}

pub struct DdqnAdvisor {
    name: &'static str,
    config: DdqnConfig,
    cost: CostModel,
    online: Mlp,
    target: Mlp,
    registry: ArmRegistry,
    store: QueryStore,
    layout: ContextLayout,
    replay: VecDeque<Transition>,
    pending: Vec<PendingTransition>,
    samples: usize,
    current: HashMap<IndexId, usize>,
    arm_to_index: HashMap<usize, IndexId>,
    played: Vec<usize>,
    created_this_round: Vec<(usize, SimSeconds)>,
    rng: StdRng,
    round: usize,
}

impl DdqnAdvisor {
    pub fn new(catalog: &Catalog, cost: CostModel, config: DdqnConfig) -> Self {
        let layout = ContextLayout::new(catalog);
        let d = layout.dim();
        let mut rng = StdRng::seed_from_u64(rng_for(config.seed, "ddqn-init", 0).gen());
        // 4 hidden layers × 8 neurons (§V-C).
        let online = Mlp::new(&[2 * d, 8, 8, 8, 8, 1], &mut rng);
        let target = online.clone();
        DdqnAdvisor {
            name: if config.single_column_only {
                "DDQN-SC"
            } else {
                "DDQN"
            },
            config,
            cost,
            online,
            target,
            registry: ArmRegistry::new(),
            store: QueryStore::new(),
            layout,
            replay: VecDeque::new(),
            pending: Vec::new(),
            samples: 0,
            current: HashMap::new(),
            arm_to_index: HashMap::new(),
            played: Vec::new(),
            created_this_round: Vec::new(),
            rng,
            round: 0,
        }
    }

    fn epsilon(&self) -> f64 {
        let k = (1.0 / self.config.eps_end).ln() / self.config.eps_decay_samples;
        (self.config.eps_start * (-k * self.samples as f64).exp()).max(self.config.eps_end)
    }

    /// Build the round's state (mean of active arms' dense contexts) and
    /// per-arm action features.
    fn featurise(
        &self,
        catalog: &Catalog,
        active: &[usize],
        qoi: &[Query],
    ) -> (Vec<f64>, Vec<Vec<f64>>) {
        let d = self.layout.dim();
        let predicate_columns: HashSet<ColumnId> = qoi
            .iter()
            .flat_map(|q| {
                q.predicate_columns()
                    .into_iter()
                    .chain(q.joins.iter().flat_map(|j| [j.left, j.right]))
            })
            .collect();
        let builder = ContextBuilder::new(
            &self.layout,
            predicate_columns,
            catalog.database_bytes(),
            self.store.round(),
        );
        let actions: Vec<Vec<f64>> = active
            .iter()
            .map(|&i| {
                let materialised = self.arm_to_index.contains_key(&i);
                to_dense(&builder.build(self.registry.arm(i), materialised), d)
            })
            .collect();
        let mut state = vec![0.0; d];
        if !actions.is_empty() {
            for a in &actions {
                for (s, v) in state.iter_mut().zip(a) {
                    *s += v;
                }
            }
            for s in &mut state {
                *s /= actions.len() as f64;
            }
        }
        (state, actions)
    }

    fn q_input(state: &[f64], action: &[f64]) -> Vec<f64> {
        let mut input = Vec::with_capacity(state.len() * 2);
        input.extend_from_slice(state);
        input.extend_from_slice(action);
        input
    }

    /// Finalise pending transitions with this round's (state, actions),
    /// push them to replay, and run training steps.
    fn absorb_pending(&mut self, state: &[f64], actions: &[Vec<f64>]) {
        if self.pending.is_empty() {
            return;
        }
        // Subsample next actions to bound replay entry size.
        let mut idx: Vec<usize> = (0..actions.len()).collect();
        idx.shuffle(&mut self.rng);
        let next_inputs: Vec<Vec<f64>> = idx
            .into_iter()
            .take(24)
            .map(|i| Self::q_input(state, &actions[i]))
            .collect();

        for p in self.pending.drain(..) {
            self.replay.push_back(Transition {
                input: p.input,
                reward: p.reward,
                next_inputs: next_inputs.clone(),
            });
            if self.replay.len() > self.config.replay_capacity {
                self.replay.pop_front();
            }
        }

        // Train a few minibatches per round.
        let steps = self.config.batch_size * 2;
        for _ in 0..steps {
            if self.replay.is_empty() {
                break;
            }
            let t = &self.replay[self.rng.gen_range(0..self.replay.len())];
            // Double-DQN target: argmax by online net, value by target net.
            // A diverging net can emit NaN/∞ q-values: those must neither
            // panic the comparison nor win the argmax, and an all-non-finite
            // round degrades to the bare reward target.
            let target_value = if t.next_inputs.is_empty() {
                t.reward
            } else {
                let best = t
                    .next_inputs
                    .iter()
                    .map(|a| (self.online.predict(a), a))
                    .filter(|(q, _)| q.is_finite())
                    .max_by(|(qa, _), (qb, _)| qa.total_cmp(qb))
                    .map(|(_, a)| a);
                match best {
                    Some(a) => t.reward + self.config.gamma * self.target.predict(a),
                    None => t.reward,
                }
            };
            let input = t.input.clone();
            self.online.train_one(&input, target_value);
        }
    }
}

impl Advisor for DdqnAdvisor {
    fn name(&self) -> &str {
        self.name
    }

    fn before_round(
        &mut self,
        _round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
        _whatif: &mut dba_optimizer::WhatIfService,
    ) -> AdvisorCost {
        self.round += 1;
        // Forget indexes externally dropped by a guardrail rollback so
        // their arms become candidates again instead of phantom incumbents.
        dba_core::reconcile_external_drops(catalog, &mut self.current, &mut self.arm_to_index);
        let mut rec_time = SimSeconds::ZERO;
        if self.round == 1 {
            rec_time += SimSeconds::new(self.config.first_round_setup_s);
        }

        let qoi: Vec<Query> = self
            .store
            .queries_of_interest(self.config.qoi_window)
            .into_iter()
            .cloned()
            .collect();
        if qoi.is_empty() {
            self.played.clear();
            self.created_this_round.clear();
            return AdvisorCost {
                recommendation: rec_time,
                creation: SimSeconds::ZERO,
            };
        }

        let est = CardEstimator::new(stats);
        let qoi_refs: Vec<&Query> = qoi.iter().collect();
        let mut active = self
            .registry
            .generate(&qoi_refs, catalog, &est, &self.config.arm_gen);
        if self.config.single_column_only {
            active.retain(|&i| {
                let def = &self.registry.arm(i).def;
                def.key_cols.len() == 1 && def.include_cols.is_empty()
            });
        }
        rec_time += SimSeconds::new(self.config.per_arm_scored_s * active.len() as f64);

        let (state, actions) = self.featurise(catalog, &active, &qoi);
        self.absorb_pending(&state, &actions);

        // Select the round's configuration.
        let explore = self.rng.gen_bool(self.epsilon());
        let mut order: Vec<usize> = (0..active.len()).collect();
        if explore {
            order.shuffle(&mut self.rng);
        } else {
            order.sort_by(|&a, &b| {
                let qa = self.online.predict(&Self::q_input(&state, &actions[a]));
                let qb = self.online.predict(&Self::q_input(&state, &actions[b]));
                qb.total_cmp(&qa)
            });
        }
        let mut selected: Vec<usize> = Vec::new();
        let mut budget = self.config.memory_budget_bytes;
        for pos in order {
            let arm_idx = active[pos];
            let arm = self.registry.arm(arm_idx);
            if arm.size_bytes > budget {
                continue;
            }
            if !explore {
                let q = self.online.predict(&Self::q_input(&state, &actions[pos]));
                // NaN sorts first under descending `total_cmp`; it must
                // stop greedy selection like any non-positive q, not buy
                // an index on a diverged estimate.
                if q.is_nan() || q <= 0.0 {
                    break;
                }
            } else if !self.rng.gen_bool(0.5) {
                continue;
            }
            budget -= arm.size_bytes;
            selected.push(arm_idx);
            self.samples += 1;
            if self.samples.is_multiple_of(self.config.target_sync_every) {
                self.target.copy_from(&self.online);
            }
        }

        // Materialise the diff (same protocol as the MAB tuner). `current`
        // is a HashMap, so sort the snapshot — catalog mutations must
        // happen in a run-independent order.
        let selected_set: HashSet<usize> = selected.iter().copied().collect();
        let mut to_drop: Vec<(IndexId, usize)> = self
            .current
            .iter()
            .filter(|(_, arm)| !selected_set.contains(arm))
            .map(|(&id, &arm)| (id, arm))
            .collect();
        to_drop.sort_unstable_by_key(|&(id, _)| id);
        for (id, arm) in to_drop {
            let _ = catalog.drop_index(id);
            self.current.remove(&id);
            self.arm_to_index.remove(&arm);
        }
        let mut creation = SimSeconds::ZERO;
        self.created_this_round.clear();
        for &arm_idx in &selected {
            if self.arm_to_index.contains_key(&arm_idx) {
                continue;
            }
            let def = self.registry.arm(arm_idx).def.clone();
            // Bill creation off the live (drift-grown) sizes, as MAB and
            // PDTool do — building over a doubled heap costs double, and
            // the leaves written are the live-estimate's.
            let build = self.cost.index_build(
                catalog.live_heap_pages(def.table),
                catalog.live_rows(def.table),
                catalog.estimated_live_bytes(&def),
            );
            if let Ok(meta) = catalog.create_index(def) {
                creation += build;
                self.current.insert(meta.id, arm_idx);
                self.arm_to_index.insert(arm_idx, meta.id);
                self.created_this_round.push((arm_idx, build));
            }
        }

        // Remember inputs of the played actions for transition building.
        self.played = selected.clone();
        self.pending = selected
            .iter()
            .map(|&arm_idx| {
                let pos = active
                    .iter()
                    .position(|&a| a == arm_idx)
                    .expect("played ⊆ active");
                PendingTransition {
                    input: Self::q_input(&state, &actions[pos]),
                    reward: 0.0, // filled in after_round
                }
            })
            .collect();

        AdvisorCost {
            recommendation: rec_time,
            creation,
        }
    }

    fn after_round(
        &mut self,
        _ctx: &mut dba_core::RoundContext<'_>,
        queries: &[Query],
        executions: &[QueryExecution],
    ) {
        self.store.ingest_round(queries, executions);
        let (rewards, _) = RewardShaper::shape(
            &self.store,
            queries,
            executions,
            &self.current,
            &self.created_this_round,
            &HashMap::new(), // DDQN ignores maintenance (as in its paper)
            &self.played,
        );
        let by_arm: HashMap<usize, f64> = rewards.into_iter().collect();
        for (pending, &arm) in self.pending.iter_mut().zip(&self.played) {
            pending.reward = by_arm.get(&arm).copied().unwrap_or(0.0);
        }
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{QueryId, TableId, TemplateId};
    use dba_engine::{Executor, Predicate};
    use dba_optimizer::{Planner, PlannerContext};
    use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("k", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "v",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 19_999 },
                ),
                ColumnSpec::new(
                    "w",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
            ],
        );
        Catalog::new(vec![TableBuilder::new(t, 20_000).build(TableId(0), 55)])
    }

    fn query(id: u64, value: i64) -> Query {
        Query {
            id: QueryId(id),
            template: TemplateId(1),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 1), value)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        }
    }

    fn drive(advisor: &mut DdqnAdvisor, cat: &mut Catalog, rounds: usize) -> Vec<f64> {
        let stats = StatsCatalog::build(cat);
        let cost = CostModel::unit_scale();
        let mut whatif = dba_optimizer::WhatIfService::new(cost.clone());
        let mut per_round = Vec::new();
        for round in 0..rounds {
            advisor.before_round(round, cat, &stats, &mut whatif);
            let qs: Vec<Query> = (0..3)
                .map(|i| {
                    query(
                        (round * 10 + i) as u64,
                        ((round * 7 + i) as i64 * 331) % 20_000,
                    )
                })
                .collect();
            let ctx = PlannerContext::from_catalog(cat, &stats, &cost);
            // lint: allow(G03) — execution path: plans feed Executor::execute, what-if memoization must not intercept them
            let planner = Planner::new(&ctx);
            let exec = Executor::new(cost.clone());
            let execs: Vec<QueryExecution> = qs
                .iter()
                .map(|q| exec.execute(cat, q, &planner.plan(q)))
                .collect();
            per_round.push(execs.iter().map(|e| e.total.secs()).sum());
            let mut round_ctx = dba_core::RoundContext {
                catalog: cat,
                stats: &stats,
                whatif: &mut whatif,
            };
            advisor.after_round(&mut round_ctx, &qs, &execs);
        }
        per_round
    }

    #[test]
    fn epsilon_decays_with_samples() {
        let cat = catalog();
        let mut adv = DdqnAdvisor::new(
            &cat,
            CostModel::unit_scale(),
            DdqnConfig::paper_defaults(u64::MAX, 1),
        );
        assert!((adv.epsilon() - 1.0).abs() < 1e-9);
        adv.samples = 2400;
        assert!(adv.epsilon() <= 0.011);
        adv.samples = 10_000;
        assert!((adv.epsilon() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn runs_rounds_and_materialises_indexes() {
        let mut cat = catalog();
        let budget = cat.database_bytes();
        let mut adv = DdqnAdvisor::new(
            &cat,
            CostModel::unit_scale(),
            DdqnConfig::paper_defaults(budget, 2),
        );
        let times = drive(&mut adv, &mut cat, 6);
        assert_eq!(times.len(), 6);
        // With ε≈1 the agent explores: some indexes should have been built
        // at some point (possibly dropped later).
        assert!(adv.samples > 0, "agent must have chosen arms");
        assert!(cat.index_bytes() <= budget);
    }

    #[test]
    fn single_column_variant_only_builds_single_column_indexes() {
        let mut cat = catalog();
        let mut adv = DdqnAdvisor::new(
            &cat,
            CostModel::unit_scale(),
            DdqnConfig::paper_defaults(cat.database_bytes(), 3).single_column(),
        );
        assert_eq!(adv.name(), "DDQN-SC");
        drive(&mut adv, &mut cat, 6);
        for ix in cat.all_indexes() {
            assert_eq!(ix.def().key_cols.len(), 1);
            assert!(ix.def().include_cols.is_empty());
        }
    }

    #[test]
    fn replay_buffer_is_bounded() {
        let mut cat = catalog();
        let mut cfg = DdqnConfig::paper_defaults(cat.database_bytes(), 4);
        cfg.replay_capacity = 8;
        let mut adv = DdqnAdvisor::new(&cat, CostModel::unit_scale(), cfg);
        drive(&mut adv, &mut cat, 10);
        assert!(adv.replay.len() <= 8);
    }

    #[test]
    fn different_seeds_make_different_choices() {
        // The paper stresses RL volatility: random exploration differs by
        // seed even on identical workloads.
        let run = |seed| {
            let mut cat = catalog();
            let mut adv = DdqnAdvisor::new(
                &cat,
                CostModel::unit_scale(),
                DdqnConfig::paper_defaults(cat.database_bytes(), seed),
            );
            drive(&mut adv, &mut cat, 5);
            let mut defs: Vec<String> = cat
                .all_indexes()
                .map(|ix| format!("{:?}", ix.def()))
                .collect();
            defs.sort();
            defs
        };
        // At least one of a few seeds must diverge.
        let base = run(10);
        assert!(
            (11..16).any(|s| run(s) != base),
            "exploration should vary across seeds"
        );
    }
}
