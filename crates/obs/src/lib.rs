//! `dba-obs` — the deterministic observability substrate for the tuning
//! stack: structured spans, monotonic counters, and fixed-bucket
//! histograms, recorded against **simulated** time.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Recording must never perturb a tuning trajectory.
//!    Every record is keyed on [`SimSeconds`] fed in by the session via
//!    [`Obs::set_sim_now`]; wall-clock is *advisory only* and flows
//!    through the injectable [`BudgetTimer`] (so lint rule D02 — no
//!    wall-clock reads outside `dba-bench` — holds: only harness code
//!    ever hands an `Obs` a live clock source). The bench suite asserts
//!    bit-identical trajectories with recording on vs off.
//! 2. **Zero cost off.** The default handle is a no-op: one `Option`
//!    check per call, no allocation, no lock. Instrumentation stays
//!    compiled-in and always correct, never `#[cfg]`-gated.
//! 3. **Side-effect-free on results.** Every recording method returns
//!    `()`; the only value-returning query is [`Obs::enabled`], for
//!    gating expensive event construction. Lint rule O01 enforces that
//!    no recording call sits on a path that feeds a returned value.
//! 4. **Dependency-free.** No `tracing`/`metrics` crates — the build is
//!    offline; the JSONL exporter writes with `std::io` and is parsed
//!    back by `dba-bench`'s own JSON reader (`dba-trace`, tests).
//!
//! Three backends implement [`Recorder`]: [`NoopRecorder`] (what
//! [`Obs::noop`] models without even boxing one), the bounded in-memory
//! [`RingRecorder`] (tests, future tuning-server introspection), and
//! [`JsonlRecorder`] (the `DBA_TRACE=<path>` export `dba-trace` reads).

use dba_common::{BudgetTimer, SimSeconds};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A structured field value carried by an [`TraceKind::Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<SimSeconds> for Value {
    fn from(v: SimSeconds) -> Self {
        Value::F64(v.secs())
    }
}

/// What one trace record says. Span names and counter/histogram/event
/// names are `&'static str` by design: the catalog is closed at compile
/// time (see README "Observability"), and records never allocate for
/// names.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    SpanEnter {
        name: &'static str,
    },
    SpanExit {
        name: &'static str,
    },
    Counter {
        name: &'static str,
        delta: u64,
        /// Monotonic running total after applying `delta`.
        total: u64,
    },
    Histogram {
        name: &'static str,
        value: f64,
        /// Index into [`HIST_BOUNDS`] (== `HIST_BOUNDS.len()` for the
        /// overflow bucket).
        bucket: usize,
    },
    Event {
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    },
}

impl TraceKind {
    /// The span/counter/histogram/event name this record carries.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::SpanEnter { name }
            | TraceKind::SpanExit { name }
            | TraceKind::Counter { name, .. }
            | TraceKind::Histogram { name, .. }
            | TraceKind::Event { name, .. } => name,
        }
    }
}

/// One trace record: a sequence number (total order within a session), the
/// simulated-time stamp the session last fed in, an advisory wall-clock
/// stamp (seconds since the recorder's timer was attached; `None` when no
/// live timer was injected), and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub seq: u64,
    pub sim_s: f64,
    pub wall_s: Option<f64>,
    pub kind: TraceKind,
}

fn esc_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Shortest-roundtrip float; non-finite values become `null` so the line
/// stays valid JSON (no trace consumer wants to crash on an inf).
fn fmt_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn fmt_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => fmt_f64(*n, out),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            esc_json(s, out);
            out.push('"');
        }
    }
}

impl TraceRecord {
    /// One JSONL line (no trailing newline). The schema is stable and
    /// parsed back by `dba-bench` (`dba-trace`, the round-trip test):
    /// `{"seq":N,"sim_s":S[,"wall_s":W],"type":"...","name":"...",...}`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"seq\":{},\"sim_s\":", self.seq);
        fmt_f64(self.sim_s, &mut s);
        if let Some(w) = self.wall_s {
            s.push_str(",\"wall_s\":");
            fmt_f64(w, &mut s);
        }
        match &self.kind {
            TraceKind::SpanEnter { name } => {
                let _ = write!(s, ",\"type\":\"span_enter\",\"name\":\"{name}\"");
            }
            TraceKind::SpanExit { name } => {
                let _ = write!(s, ",\"type\":\"span_exit\",\"name\":\"{name}\"");
            }
            TraceKind::Counter { name, delta, total } => {
                let _ = write!(
                    s,
                    ",\"type\":\"counter\",\"name\":\"{name}\",\"delta\":{delta},\"total\":{total}"
                );
            }
            TraceKind::Histogram {
                name,
                value,
                bucket,
            } => {
                let _ = write!(s, ",\"type\":\"histogram\",\"name\":\"{name}\",\"value\":");
                fmt_f64(*value, &mut s);
                let _ = write!(s, ",\"bucket\":{bucket}");
            }
            TraceKind::Event { name, fields } => {
                let _ = write!(s, ",\"type\":\"event\",\"name\":\"{name}\",\"fields\":{{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{k}\":");
                    fmt_value(v, &mut s);
                }
                s.push('}');
            }
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

/// Fixed log-spaced bucket upper bounds (seconds-flavoured: 1µs → 1000s).
/// A value lands in the first bucket whose bound is ≥ it; anything larger
/// goes to the overflow bucket at index `HIST_BOUNDS.len()`.
pub const HIST_BOUNDS: [f64; 10] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

/// Bucket index for `value` under [`HIST_BOUNDS`]. NaN and negatives
/// clamp into bucket 0 — the histogram is telemetry, never arithmetic.
pub fn hist_bucket(value: f64) -> usize {
    if value.is_nan() || value <= 0.0 {
        return 0;
    }
    HIST_BOUNDS
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(HIST_BOUNDS.len())
}

/// Aggregated histogram state for one name (count/sum plus per-bucket
/// occupancy), snapshotted via [`Obs::histograms`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    /// `HIST_BOUNDS.len() + 1` buckets; the last is overflow.
    pub buckets: Vec<u64>,
}

impl HistSummary {
    fn new() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            buckets: vec![0; HIST_BOUNDS.len() + 1],
        }
    }

    fn observe(&mut self, value: f64, bucket: usize) {
        self.count += 1;
        self.sum += value;
        self.buckets[bucket] += 1;
    }
}

// ---------------------------------------------------------------------------
// Recorder backends
// ---------------------------------------------------------------------------

/// A trace sink. Implementations must be cheap and infallible from the
/// caller's point of view: recording is advisory and must never change
/// control flow in the instrumented code.
pub trait Recorder: Send {
    fn record(&mut self, rec: &TraceRecord);
    /// Flush buffered output (JSONL); default no-op.
    fn flush(&mut self) {}
    /// In-memory backends return their buffered records; stream backends
    /// return `None`. This is how tests read a ring back without
    /// downcasting.
    fn snapshot(&self) -> Option<Vec<TraceRecord>> {
        None
    }
}

/// Drops every record. [`Obs::noop`] short-circuits before ever building
/// a record, so this type exists for explicit backend plumbing and as
/// the semantic definition of "recording off".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Keeps the most recent `capacity` records in memory.
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
}

impl RingRecorder {
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
        }
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
    }

    fn snapshot(&self) -> Option<Vec<TraceRecord>> {
        Some(self.buf.iter().cloned().collect())
    }
}

/// Streams records as JSONL to a file. Export is advisory: IO errors are
/// swallowed after the open succeeds (a full disk must not kill a tuning
/// run), and the writer flushes on drop.
pub struct JsonlRecorder {
    out: BufWriter<File>,
}

impl JsonlRecorder {
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        if let Some(dir) = path.as_ref().parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        Ok(JsonlRecorder {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, rec: &TraceRecord) {
        let _ = writeln!(self.out, "{}", rec.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

struct ObsState {
    backend: Box<dyn Recorder>,
    seq: u64,
    sim_now: f64,
    /// Advisory wall clock, marked once when attached; every record's
    /// `wall_s` is elapsed-since-mark. Disabled (the default) → `None`.
    timer: BudgetTimer,
    /// Running counter totals; `BTreeMap` so snapshots iterate in a
    /// deterministic order.
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistSummary>,
}

impl ObsState {
    fn push(&mut self, kind: TraceKind) {
        let rec = TraceRecord {
            seq: self.seq,
            sim_s: self.sim_now,
            wall_s: self.timer.elapsed_secs(),
            kind,
        };
        self.seq += 1;
        self.backend.record(&rec);
    }
}

/// The cheap, clonable handle instrumented code holds. Clones share one
/// recorder (one `seq` order per session). [`Obs::default`] and
/// [`Obs::noop`] are recording-off: every call is a single `Option`
/// check. All recording methods return `()` — see lint rule O01; the only
/// value-returning query is [`Obs::enabled`].
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<ObsState>>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// Recording off: the zero-cost default.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// Record into an explicit backend.
    pub fn with_recorder(backend: Box<dyn Recorder>) -> Obs {
        Obs {
            inner: Some(Arc::new(Mutex::new(ObsState {
                backend,
                seq: 0,
                sim_now: 0.0,
                timer: BudgetTimer::disabled(),
                counters: BTreeMap::new(),
                hists: BTreeMap::new(),
            }))),
        }
    }

    /// Record into an in-memory ring of the most recent `capacity`
    /// records; read back with [`Obs::records`].
    pub fn ring(capacity: usize) -> Obs {
        Obs::with_recorder(Box::new(RingRecorder::new(capacity)))
    }

    /// Stream JSONL records to `path` (the `DBA_TRACE` backend).
    pub fn jsonl<P: AsRef<Path>>(path: P) -> io::Result<Obs> {
        Ok(Obs::with_recorder(Box::new(JsonlRecorder::create(path)?)))
    }

    /// Attach an advisory wall clock. The timer is marked here, once;
    /// every subsequent record carries seconds-elapsed-since-now. Only
    /// harness code should hand in a live source (lint rule D02). No-op
    /// on a recording-off handle.
    pub fn with_timer(self, timer: BudgetTimer) -> Obs {
        let mut timer = timer;
        timer.mark();
        self.with_state(|st| st.timer = timer);
        self
    }

    /// Is recording on? The one value-returning query (exempt from O01):
    /// use it to gate *construction* of expensive events, never to branch
    /// tuning logic.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut ObsState) -> R) -> Option<R> {
        // The explicit `Mutex` annotation keeps dba-lint's call resolver
        // precise: a bare `m.lock()` on an untyped local would be
        // conflated by name with `SafetyLedger::lock`.
        let m: &Mutex<ObsState> = self.inner.as_ref()?;
        // The Obs handle is this subsystem's one blessed lock point (the
        // SafetyLedger pattern); poisoning self-heals because telemetry
        // must never compound another thread's panic.
        let mut st = m.lock().unwrap_or_else(PoisonError::into_inner);
        Some(f(&mut st))
    }

    /// Advance the simulated-time stamp subsequent records carry.
    pub fn set_sim_now(&self, now: SimSeconds) {
        self.with_state(|st| st.sim_now = now.secs());
    }

    pub fn span_enter(&self, name: &'static str) {
        self.with_state(|st| st.push(TraceKind::SpanEnter { name }));
    }

    pub fn span_exit(&self, name: &'static str) {
        self.with_state(|st| st.push(TraceKind::SpanExit { name }));
    }

    /// Bump a monotonic counter and record the delta + new total.
    pub fn counter(&self, name: &'static str, delta: u64) {
        self.with_state(|st| {
            let total = {
                let t = st.counters.entry(name).or_insert(0);
                *t += delta;
                *t
            };
            st.push(TraceKind::Counter { name, delta, total });
        });
    }

    /// Observe one value into the fixed log-spaced-bucket histogram.
    pub fn histogram(&self, name: &'static str, value: f64) {
        self.with_state(|st| {
            let bucket = hist_bucket(value);
            st.hists
                .entry(name)
                .or_insert_with(HistSummary::new)
                .observe(value, bucket);
            st.push(TraceKind::Histogram {
                name,
                value,
                bucket,
            });
        });
    }

    /// Record a structured event. Build `fields` only under an
    /// `if obs.enabled()` gate when construction is expensive.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.with_state(|st| st.push(TraceKind::Event { name, fields }));
    }

    /// Flush the backend (JSONL buffer).
    pub fn flush(&self) {
        self.with_state(|st| st.backend.flush());
    }

    /// Snapshot of an in-memory backend's records (`None` for noop and
    /// stream backends).
    pub fn records(&self) -> Option<Vec<TraceRecord>> {
        self.with_state(|st| st.backend.snapshot()).flatten()
    }

    /// Running total of one counter (0 if never bumped or recording off).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.with_state(|st| st.counters.get(name).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Deterministically-ordered snapshot of all counter totals.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.with_state(|st| st.counters.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }

    /// Deterministically-ordered snapshot of all histogram aggregates.
    pub fn histograms(&self) -> Vec<(&'static str, HistSummary)> {
        self.with_state(|st| {
            st.hists
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect::<Vec<_>>()
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_off_and_inert() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.span_enter("s");
        obs.counter("c", 3);
        obs.histogram("h", 0.5);
        obs.event("e", vec![("k", 1u64.into())]);
        obs.span_exit("s");
        obs.flush();
        assert_eq!(obs.records(), None);
        assert_eq!(obs.counter_total("c"), 0);
        assert!(Obs::default().inner.is_none(), "default is noop");
    }

    #[test]
    fn ring_records_in_order_with_seq_and_totals() {
        let obs = Obs::ring(16);
        assert!(obs.enabled());
        obs.set_sim_now(SimSeconds::new(1.5));
        obs.span_enter("round");
        obs.counter("hits", 2);
        obs.counter("hits", 3);
        obs.span_exit("round");
        let recs = obs.records().expect("ring snapshots");
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(recs.iter().all(|r| r.sim_s == 1.5 && r.wall_s.is_none()));
        assert_eq!(
            recs[2].kind,
            TraceKind::Counter {
                name: "hits",
                delta: 3,
                total: 5
            }
        );
        assert_eq!(obs.counter_total("hits"), 5);
        assert_eq!(obs.counters(), vec![("hits", 5)]);
    }

    #[test]
    fn ring_is_bounded() {
        let obs = Obs::ring(2);
        obs.counter("c", 1);
        obs.counter("c", 1);
        obs.counter("c", 1);
        let recs = obs.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 1, "oldest record evicted");
    }

    #[test]
    fn clones_share_one_sequence() {
        let obs = Obs::ring(8);
        let clone = obs.clone();
        obs.span_enter("a");
        clone.span_enter("b");
        let recs = obs.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].seq, 1);
    }

    #[test]
    fn hist_buckets_are_log_spaced_and_total() {
        assert_eq!(hist_bucket(0.0), 0);
        assert_eq!(hist_bucket(-1.0), 0);
        assert_eq!(hist_bucket(f64::NAN), 0);
        assert_eq!(hist_bucket(1e-6), 0);
        assert_eq!(hist_bucket(0.5), 6);
        assert_eq!(hist_bucket(5e4), HIST_BOUNDS.len());
        let obs = Obs::ring(4);
        obs.histogram("h", 0.05);
        let h = &obs.histograms()[0];
        assert_eq!(h.0, "h");
        assert_eq!(h.1.count, 1);
        assert_eq!(h.1.buckets[5], 1);
    }

    #[test]
    fn timer_stamps_advisory_wall_clock() {
        // A fake monotonic source: deterministic, no OS clock.
        let ticks = Arc::new(Mutex::new(10.0_f64));
        let t2 = Arc::clone(&ticks);
        let timer =
            BudgetTimer::with_source(move || *t2.lock().unwrap_or_else(PoisonError::into_inner));
        let obs = Obs::ring(4).with_timer(timer);
        *ticks.lock().unwrap_or_else(PoisonError::into_inner) = 12.5;
        obs.span_enter("s");
        let recs = obs.records().unwrap();
        assert_eq!(recs[0].wall_s, Some(2.5), "elapsed since attach-mark");
    }

    #[test]
    fn jsonl_lines_have_the_stable_schema() {
        let rec = TraceRecord {
            seq: 7,
            sim_s: 1.25,
            wall_s: Some(0.5),
            kind: TraceKind::Event {
                name: "safety.veto",
                fields: vec![
                    ("round", 3u64.into()),
                    ("regret_s", 1.5f64.into()),
                    ("index", "ix_a\"b".into()),
                    ("throttled", false.into()),
                ],
            },
        };
        let line = rec.to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":7,\"sim_s\":1.25,\"wall_s\":0.5,\"type\":\"event\",\
             \"name\":\"safety.veto\",\"fields\":{\"round\":3,\"regret_s\":1.5,\
             \"index\":\"ix_a\\\"b\",\"throttled\":false}}"
        );
        let counter = TraceRecord {
            seq: 0,
            sim_s: 0.0,
            wall_s: None,
            kind: TraceKind::Counter {
                name: "plan_cache.hit",
                delta: 1,
                total: 4,
            },
        };
        assert_eq!(
            counter.to_jsonl(),
            "{\"seq\":0,\"sim_s\":0,\"type\":\"counter\",\
             \"name\":\"plan_cache.hit\",\"delta\":1,\"total\":4}"
        );
    }

    #[test]
    fn jsonl_recorder_writes_readable_lines() {
        let path = std::env::temp_dir().join("dba_obs_test_trace.jsonl");
        let obs = Obs::jsonl(&path).expect("create trace file");
        obs.set_sim_now(SimSeconds::new(2.0));
        obs.span_enter("w");
        obs.histogram("lat", 0.02);
        obs.span_exit("w");
        obs.flush();
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"span_enter\""));
        assert!(lines[1].contains("\"bucket\":5"));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let rec = TraceRecord {
            seq: 0,
            sim_s: f64::INFINITY,
            wall_s: None,
            kind: TraceKind::Histogram {
                name: "h",
                value: f64::NAN,
                bucket: 0,
            },
        };
        let line = rec.to_jsonl();
        assert!(line.contains("\"sim_s\":null"));
        assert!(line.contains("\"value\":null"));
    }
}
