//! Deterministic RNG fan-out.
//!
//! Experiments take a single `u64` seed. Every component that needs
//! randomness (data generation per column, query parameter binding per
//! round, DDQN initialisation per repetition, tie-breaking) derives its own
//! stream via [`seed_for`], so adding a consumer never perturbs the streams
//! of existing consumers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from `(root, component, key)` using the SplitMix64
/// finaliser, which provides good avalanche behaviour for sequential inputs.
pub fn seed_for(root: u64, component: &str, key: u64) -> u64 {
    let mut h = root ^ 0x9E37_79B9_7F4A_7C15;
    for &b in component.as_bytes() {
        h = splitmix64(h ^ (b as u64));
    }
    splitmix64(h ^ key)
}

/// Construct a seeded [`StdRng`] for `(root, component, key)`.
pub fn rng_for(root: u64, component: &str, key: u64) -> StdRng {
    StdRng::seed_from_u64(seed_for(root, component, key))
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_inputs() {
        assert_eq!(seed_for(42, "datagen", 7), seed_for(42, "datagen", 7));
    }

    #[test]
    fn distinct_components_yield_distinct_streams() {
        let seeds: HashSet<u64> = (0..100)
            .flat_map(|k| {
                ["datagen", "params", "ddqn", "tiebreak"]
                    .into_iter()
                    .map(move |c| seed_for(1, c, k))
            })
            .collect();
        assert_eq!(seeds.len(), 400, "collisions in seed fan-out");
    }

    #[test]
    fn rng_for_produces_usable_generator() {
        let mut rng = rng_for(9, "test", 0);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        // Same inputs → same first draw.
        let mut rng2 = rng_for(9, "test", 0);
        let y: f64 = rng2.gen();
        assert_eq!(x, y);
    }

    #[test]
    fn root_seed_changes_everything() {
        let a: Vec<u64> = (0..10).map(|k| seed_for(1, "x", k)).collect();
        let b: Vec<u64> = (0..10).map(|k| seed_for(2, "x", k)).collect();
        assert_ne!(a, b);
    }
}
