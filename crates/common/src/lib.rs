//! Shared primitives for the `dba-bandits` workspace.
//!
//! This crate holds the small set of vocabulary types used by every other
//! crate: interned identifiers for tables, columns and indexes; the
//! simulated-time types through which every cost in the system is expressed;
//! and a deterministic RNG fan-out helper so that each component derives an
//! independent but reproducible random stream from a single experiment seed.

pub mod clock;
pub mod error;
pub mod ids;
pub mod rng;

pub use clock::{BudgetTimer, SimClock, SimSeconds};
pub use error::{DbError, DbResult};
pub use ids::{ColumnId, ColumnRef, IndexId, QueryId, TableId, TemplateId};
pub use rng::seed_for;
