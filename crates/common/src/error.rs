//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by catalog, planning and execution operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A named table was not found in the catalog.
    UnknownTable(String),
    /// A named column was not found on the given table.
    UnknownColumn { table: String, column: String },
    /// An index id did not resolve.
    UnknownIndex(u64),
    /// The operation's inputs were structurally invalid (mismatched types,
    /// empty key sets, etc.).
    Invalid(String),
    /// A memory-budget constraint was violated.
    BudgetExceeded {
        requested_bytes: u64,
        budget_bytes: u64,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column: {table}.{column}")
            }
            DbError::UnknownIndex(id) => write!(f, "unknown index: ix{id}"),
            DbError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            DbError::BudgetExceeded {
                requested_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: requested {requested_bytes}B > budget {budget_bytes}B"
            ),
        }
    }
}

impl std::error::Error for DbError {}

pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DbError::UnknownTable("orders".into())
            .to_string()
            .contains("orders"));
        let e = DbError::UnknownColumn {
            table: "orders".into(),
            column: "o_custkey".into(),
        };
        assert!(e.to_string().contains("orders.o_custkey"));
        let e = DbError::BudgetExceeded {
            requested_bytes: 10,
            budget_bytes: 5,
        };
        assert!(e.to_string().contains("10B"));
    }
}
