//! Simulated time.
//!
//! Every duration the system reports — query execution, index creation,
//! advisor recommendation — is a [`SimSeconds`] value produced by a cost
//! model, not wall-clock time. This makes experiments deterministic and
//! portable while preserving the *relative* magnitudes the paper's
//! evaluation depends on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A span of simulated time, in seconds.
///
/// Wraps `f64`; negative values are permitted transiently (e.g. a reward can
/// be negative) but accumulated clocks should remain non-negative.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimSeconds(pub f64);

impl SimSeconds {
    pub const ZERO: SimSeconds = SimSeconds(0.0);

    #[inline]
    pub fn new(secs: f64) -> Self {
        SimSeconds(secs)
    }

    /// Raw seconds as `f64`.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Minutes as `f64` (the paper's Table I/II unit).
    #[inline]
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Total order over the underlying seconds (IEEE 754 totalOrder): safe
    /// for `sort_by`/`max_by` even if a cost model ever leaks a NaN, where
    /// `partial_cmp().unwrap()` would abort the session.
    #[inline]
    pub fn total_cmp(&self, other: &SimSeconds) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    #[inline]
    pub fn max(self, other: SimSeconds) -> SimSeconds {
        SimSeconds(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimSeconds) -> SimSeconds {
        SimSeconds(self.0.min(other.0))
    }

    /// Clamp to be non-negative.
    #[inline]
    pub fn clamp_non_negative(self) -> SimSeconds {
        SimSeconds(self.0.max(0.0))
    }
}

impl Add for SimSeconds {
    type Output = SimSeconds;
    #[inline]
    fn add(self, rhs: SimSeconds) -> SimSeconds {
        SimSeconds(self.0 + rhs.0)
    }
}

impl AddAssign for SimSeconds {
    #[inline]
    fn add_assign(&mut self, rhs: SimSeconds) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSeconds {
    type Output = SimSeconds;
    #[inline]
    fn sub(self, rhs: SimSeconds) -> SimSeconds {
        SimSeconds(self.0 - rhs.0)
    }
}

impl SubAssign for SimSeconds {
    #[inline]
    fn sub_assign(&mut self, rhs: SimSeconds) {
        self.0 -= rhs.0;
    }
}

impl Neg for SimSeconds {
    type Output = SimSeconds;
    #[inline]
    fn neg(self) -> SimSeconds {
        SimSeconds(-self.0)
    }
}

impl Mul<f64> for SimSeconds {
    type Output = SimSeconds;
    #[inline]
    fn mul(self, rhs: f64) -> SimSeconds {
        SimSeconds(self.0 * rhs)
    }
}

impl Div<f64> for SimSeconds {
    type Output = SimSeconds;
    #[inline]
    fn div(self, rhs: f64) -> SimSeconds {
        SimSeconds(self.0 / rhs)
    }
}

impl Sum for SimSeconds {
    fn sum<I: Iterator<Item = SimSeconds>>(iter: I) -> SimSeconds {
        SimSeconds(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for SimSeconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// An accumulating simulated clock.
///
/// Components advance the clock by the cost-model durations of the work they
/// perform; the harness reads it to produce per-round and total times.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    elapsed: SimSeconds,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Advance the clock by `dt`. Panics in debug builds if `dt` is negative
    /// or non-finite — time only moves forward.
    #[inline]
    pub fn advance(&mut self, dt: SimSeconds) {
        debug_assert!(dt.0.is_finite() && dt.0 >= 0.0, "clock advanced by {dt:?}");
        self.elapsed += dt;
    }

    #[inline]
    pub fn now(&self) -> SimSeconds {
        self.elapsed
    }

    /// Time elapsed since an earlier reading.
    #[inline]
    pub fn since(&self, earlier: SimSeconds) -> SimSeconds {
        self.elapsed - earlier
    }
}

/// An *advisory* wall-clock budget timer with an injected time source.
///
/// Simulated cost units are the primary latency currency everywhere in the
/// workspace; wall-clock readings are telemetry only and must never
/// influence results. This type keeps that rule lintable: crates on
/// result-affecting paths (session, core, safety) hold a `BudgetTimer` and
/// call [`mark`](Self::mark)/[`elapsed_secs`](Self::elapsed_secs) without
/// ever naming a wall-clock API — the harness crate (where wall-clock is
/// allowed) injects a monotonic-seconds closure via
/// [`with_source`](Self::with_source). Everyone else gets
/// [`disabled`](Self::disabled), where every reading is `None`.
pub struct BudgetTimer {
    source: Option<Box<dyn Fn() -> f64 + Send>>,
    mark: Option<f64>,
}

impl BudgetTimer {
    /// A timer with no time source: `mark` is a no-op and `elapsed_secs`
    /// always returns `None`. The default for deterministic paths.
    pub fn disabled() -> Self {
        BudgetTimer {
            source: None,
            mark: None,
        }
    }

    /// A timer reading monotonic seconds from `source`. Only harness code
    /// with wall-clock dispensation should construct one of these.
    pub fn with_source(source: impl Fn() -> f64 + Send + 'static) -> Self {
        BudgetTimer {
            source: Some(Box::new(source)),
            mark: None,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.source.is_some()
    }

    /// Record the current reading as the measurement start.
    pub fn mark(&mut self) {
        self.mark = self.source.as_ref().map(|s| s());
    }

    /// Seconds since the last [`mark`](Self::mark); `None` when disabled
    /// or never marked.
    pub fn elapsed_secs(&self) -> Option<f64> {
        match (&self.source, self.mark) {
            (Some(source), Some(mark)) => Some((source() - mark).max(0.0)),
            _ => None,
        }
    }
}

impl Default for BudgetTimer {
    fn default() -> Self {
        BudgetTimer::disabled()
    }
}

impl fmt::Debug for BudgetTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BudgetTimer")
            .field("enabled", &self.is_enabled())
            .field("mark", &self.mark)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimSeconds::new(1.5);
        let b = SimSeconds::new(2.5);
        assert_eq!((a + b).secs(), 4.0);
        assert_eq!((b - a).secs(), 1.0);
        assert_eq!((a * 2.0).secs(), 3.0);
        assert_eq!((b / 2.0).secs(), 1.25);
        assert_eq!((-a).secs(), -1.5);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimSeconds = (1..=4).map(|i| SimSeconds::new(i as f64)).sum();
        assert_eq!(total.secs(), 10.0);
    }

    #[test]
    fn minutes_conversion() {
        assert!((SimSeconds::new(90.0).minutes() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clock_advances_and_reads_back() {
        let mut clock = SimClock::new();
        let t0 = clock.now();
        clock.advance(SimSeconds::new(3.0));
        clock.advance(SimSeconds::new(2.0));
        assert_eq!(clock.now().secs(), 5.0);
        assert_eq!(clock.since(t0).secs(), 5.0);
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(SimSeconds::new(-2.0).clamp_non_negative().secs(), 0.0);
        assert_eq!(SimSeconds::new(2.0).clamp_non_negative().secs(), 2.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn clock_rejects_negative_advance() {
        let mut clock = SimClock::new();
        clock.advance(SimSeconds::new(-1.0));
    }

    #[test]
    fn disabled_budget_timer_reads_nothing() {
        let mut t = BudgetTimer::disabled();
        assert!(!t.is_enabled());
        t.mark();
        assert_eq!(t.elapsed_secs(), None);
    }

    #[test]
    fn sourced_budget_timer_measures_between_marks() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let fake_now = Arc::new(AtomicU64::new(100));
        let reader = Arc::clone(&fake_now);
        let mut t = BudgetTimer::with_source(move || reader.load(Ordering::Relaxed) as f64);
        assert!(t.is_enabled());
        assert_eq!(t.elapsed_secs(), None, "unmarked timer reads nothing");
        t.mark();
        fake_now.store(103, Ordering::Relaxed);
        assert_eq!(t.elapsed_secs(), Some(3.0));
        // A source that runs backwards clamps to zero rather than going
        // negative.
        fake_now.store(99, Ordering::Relaxed);
        assert_eq!(t.elapsed_secs(), Some(0.0));
    }
}
