//! Interned identifiers for catalog objects and workload entities.
//!
//! All identifiers are small copyable newtypes over integers so they can be
//! used as cheap map keys throughout the planner, executor and bandit.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a table within a [`Catalog`](https://docs.rs/dba-storage).
    TableId, u32, "t");
id_type!(
    /// Identifies a secondary index within a catalog.
    IndexId, u64, "ix");
id_type!(
    /// Identifies a query template (the parameterised query class).
    TemplateId, u32, "q");
id_type!(
    /// Identifies a concrete query instance executed in some round.
    QueryId, u64, "inst");

/// A column identified by its table and ordinal position within the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId {
    pub table: TableId,
    pub ordinal: u16,
}

impl ColumnId {
    #[inline]
    pub fn new(table: TableId, ordinal: u16) -> Self {
        ColumnId { table, ordinal }
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.ordinal)
    }
}

/// A borrowed reference to a named column: table name + column name.
///
/// Used at workload-definition time, before interning against the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: String,
    pub column: String,
}

impl ColumnRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(IndexId(12).to_string(), "ix12");
        assert_eq!(TemplateId(7).to_string(), "q7");
        assert_eq!(ColumnId::new(TableId(1), 4).to_string(), "t1.c4");
    }

    #[test]
    fn column_ids_hash_and_order() {
        let a = ColumnId::new(TableId(0), 1);
        let b = ColumnId::new(TableId(0), 2);
        let c = ColumnId::new(TableId(1), 0);
        assert!(a < b && b < c);
        let set: HashSet<_> = [a, b, c, a].into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(
            ColumnRef::new("orders", "o_custkey").to_string(),
            "orders.o_custkey"
        );
    }
}
