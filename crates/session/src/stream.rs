//! Streaming driver: arrival windows under a hard recommend-latency
//! budget, with the graceful-degrade ladder the budget enforces.
//!
//! [`StreamingSession`] wraps a [`TuningSession`] and drives it one
//! [`ArrivalWindow`] at a time instead of one round at a time. Before each
//! window it asks its [`DegradeController`] how much of the recommend step
//! the window can afford — the answer is a [`DegradeLevel`] derived purely
//! from *simulated* recommend cost against the configured budget, so runs
//! are deterministic and thread-count independent; wall-clock is advisory
//! telemetry carried beside the simulated figures, never branched on.
//!
//! The ladder's contract (enforced by the controller's debt model, tested
//! below): a blown budget first degrades to [`DegradeLevel::ReuseConfig`]
//! (keep the configuration, skip scoring entirely), and only *persistent*
//! debt escalates to [`DegradeLevel::Amortized`] (score just the arms
//! whose templates' arrival share moved, amortising `marginals()` across
//! windows through the what-if memo). A window under budget pays the debt
//! down and the next window runs [`DegradeLevel::Full`] again.

use dba_common::{BudgetTimer, DbResult, SimSeconds};
use dba_core::{Advisor, DegradeLevel, WindowMode};
use dba_safety::SafetyReport;
use dba_workloads::{ArrivalProcess, ArrivalSchedule, ArrivalWindow, Benchmark, WorkloadSequencer};

use crate::record::{RoundRecord, RunResult};
use crate::session::TuningSession;

/// Streaming-run parameters: the arrival process, the per-window recommend
/// budget, and the share-change threshold scoping `Amortized` windows.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    pub arrival: ArrivalProcess,
    /// Hard per-window recommend budget in **simulated** seconds.
    /// `f64::INFINITY` disables the ladder: every window runs
    /// [`DegradeLevel::Full`] and the trajectory reduces exactly to the
    /// fixed-round model when `arrival` is [`ArrivalProcess::RoundBatch`].
    pub budget_s: f64,
    /// Minimum absolute arrival-share change for a template to be
    /// re-scored in an `Amortized` window (templates appearing or
    /// vanishing always count).
    pub share_epsilon: f64,
}

impl StreamConfig {
    pub fn new(arrival: ArrivalProcess, budget_s: f64) -> Self {
        StreamConfig {
            arrival,
            budget_s,
            share_epsilon: 0.01,
        }
    }

    /// No budget: every window runs the full recommend step.
    pub fn unbounded(arrival: ArrivalProcess) -> Self {
        StreamConfig::new(arrival, f64::INFINITY)
    }
}

/// The degrade ladder's state machine. Tracks a *debt* of simulated
/// recommend-seconds over budget; any outstanding debt degrades the next
/// window, and the level only escalates one rung at a time:
///
/// - debt == 0 → [`DegradeLevel::Full`]
/// - debt > 0 after a `Full` window → [`DegradeLevel::ReuseConfig`]
/// - debt > 0 after a degraded window → [`DegradeLevel::Amortized`]
///
/// so `ReuseConfig` strictly precedes `Amortized` after every budget
/// breach. Debt is clamped to twice the budget: one catastrophic window
/// degrades at most the next two, it does not mortgage the whole run.
#[derive(Debug, Clone, Copy)]
pub struct DegradeController {
    budget_s: f64,
    debt_s: f64,
    level: DegradeLevel,
}

impl DegradeController {
    pub fn new(budget_s: f64) -> Self {
        DegradeController {
            budget_s,
            debt_s: 0.0,
            level: DegradeLevel::Full,
        }
    }

    /// Level the *next* window should run at.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Outstanding recommend-seconds over budget.
    pub fn debt_s(&self) -> f64 {
        self.debt_s
    }

    /// Account one window's simulated recommend cost and return the level
    /// for the next window. An infinite budget never accrues debt.
    pub fn observe(&mut self, recommend_s: f64) -> DegradeLevel {
        if !self.budget_s.is_finite() {
            return DegradeLevel::Full;
        }
        self.debt_s = (self.debt_s + recommend_s - self.budget_s).clamp(0.0, 2.0 * self.budget_s);
        self.level = if self.debt_s > 0.0 {
            if self.level == DegradeLevel::Full {
                DegradeLevel::ReuseConfig
            } else {
                DegradeLevel::Amortized
            }
        } else {
            DegradeLevel::Full
        };
        self.level
    }
}

/// One streaming window's outcome: the degrade decision that shaped it,
/// its arrival mass, and the underlying round accounting.
#[derive(Debug, Clone)]
pub struct WindowRecord {
    /// Global window index (0-based).
    pub window: usize,
    /// Workload round the window falls in.
    pub round: usize,
    pub burst: bool,
    pub round_boundary: bool,
    /// Degrade level this window's recommend step ran at.
    pub level: DegradeLevel,
    /// Queries that arrived in the window.
    pub arrivals: u64,
    /// Simulated span of the window.
    pub duration: SimSeconds,
    /// Whether this window's simulated recommend cost exceeded the budget.
    pub budget_blown: bool,
    /// Advisory wall-clock seconds of the recommend step (`None` unless a
    /// timer was injected via [`StreamingSession::set_timer`]).
    pub wall_recommend_s: Option<f64>,
    /// The window's time/counter accounting (`record.round` is the
    /// 1-based *window* number in streaming runs).
    pub record: RoundRecord,
}

/// A finished streaming run: the per-window trail plus the session's
/// ordinary [`RunResult`].
#[derive(Debug, Clone)]
pub struct StreamResult {
    pub run: RunResult,
    pub windows: Vec<WindowRecord>,
    /// The budget the run enforced (simulated seconds; infinite = none).
    pub budget_s: f64,
}

impl StreamResult {
    pub fn total_arrivals(&self) -> u64 {
        self.windows.iter().map(|w| w.arrivals).sum()
    }

    fn count_level(&self, level: DegradeLevel) -> usize {
        self.windows.iter().filter(|w| w.level == level).count()
    }

    /// Windows that ran below [`DegradeLevel::Full`].
    pub fn degraded_windows(&self) -> usize {
        self.windows.len() - self.count_level(DegradeLevel::Full)
    }

    pub fn reuse_windows(&self) -> usize {
        self.count_level(DegradeLevel::ReuseConfig)
    }

    pub fn amortized_windows(&self) -> usize {
        self.count_level(DegradeLevel::Amortized)
    }

    /// Windows whose simulated recommend cost exceeded the budget.
    pub fn blown_windows(&self) -> usize {
        self.windows.iter().filter(|w| w.budget_blown).count()
    }

    /// Sustained simulated throughput: arrivals over window spans plus the
    /// tuner's serial per-window overhead — the recommend step, the one
    /// piece of the loop that stalls ingestion while it runs (and the one
    /// the latency budget governs). Query execution, index builds and
    /// maintenance are excluded: they run concurrently on the engine side
    /// (execution on the query path, online index build and write-path
    /// maintenance in the background), billed in the [`RunResult`] totals
    /// but not against the arrival clock.
    pub fn queries_per_min(&self) -> f64 {
        let minutes: f64 = self
            .windows
            .iter()
            .map(|w| w.duration.minutes())
            .sum::<f64>()
            + self.run.total_recommendation().minutes();
        if minutes <= 0.0 {
            return 0.0;
        }
        self.total_arrivals() as f64 / minutes
    }

    /// p99 of per-window simulated recommend cost.
    pub fn recommend_p99_s(&self) -> f64 {
        percentile(
            self.windows
                .iter()
                .map(|w| w.record.recommendation.secs())
                .collect(),
            0.99,
        )
        .unwrap_or(0.0)
    }

    /// p99 of per-window wall-clock recommend time (`None` when no timer
    /// was injected). Advisory only.
    pub fn wall_recommend_p99_s(&self) -> Option<f64> {
        let samples: Vec<f64> = self
            .windows
            .iter()
            .filter_map(|w| w.wall_recommend_s)
            .collect();
        percentile(samples, 0.99)
    }
}

fn percentile(mut samples: Vec<f64>, p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = (((samples.len() - 1) as f64) * p).ceil() as usize;
    Some(samples[idx])
}

/// Deadline-aware streaming driver around a [`TuningSession`].
pub struct StreamingSession<A: Advisor> {
    session: TuningSession<A>,
    /// Own copy of the benchmark, so window materialisation can borrow it
    /// while the session is driven mutably. `WorkloadSequencer::new` over
    /// the same benchmark/kind/seed reproduces the session's template
    /// order exactly (the order is a pure function of those three).
    benchmark: Benchmark,
    config: StreamConfig,
    controller: DegradeController,
    timer: BudgetTimer,
    /// Previous window's per-template arrival shares, sorted by template
    /// index — the baseline `Amortized` windows diff against.
    prev_shares: Vec<(usize, f64)>,
    windows: Vec<WindowRecord>,
    next_window: usize,
}

/// A streaming session over a boxed advisor (what
/// [`SessionBuilder::build`](crate::SessionBuilder::build) produces).
pub type DynStreamingSession = StreamingSession<Box<dyn Advisor>>;

impl<A: Advisor> StreamingSession<A> {
    pub fn new(session: TuningSession<A>, config: StreamConfig) -> Self {
        let benchmark = session.benchmark().clone();
        let controller = DegradeController::new(config.budget_s);
        StreamingSession {
            session,
            benchmark,
            config,
            controller,
            timer: BudgetTimer::disabled(),
            prev_shares: Vec::new(),
            windows: Vec::new(),
            next_window: 0,
        }
    }

    /// Inject a wall-clock source for advisory per-window latency
    /// telemetry. Only the harness crate holds a real source; everything
    /// else leaves the default disabled timer.
    pub fn set_timer(&mut self, timer: BudgetTimer) {
        self.timer = timer;
    }

    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    pub fn controller(&self) -> &DegradeController {
        &self.controller
    }

    pub fn session(&self) -> &TuningSession<A> {
        &self.session
    }

    pub fn windows_total(&self) -> usize {
        self.session.rounds_total() * self.config.arrival.windows_per_round()
    }

    pub fn windows_done(&self) -> usize {
        self.next_window
    }

    pub fn is_finished(&self) -> bool {
        self.next_window >= self.windows_total()
    }

    /// Drive one window; `Ok(None)` when the workload is exhausted.
    pub fn step(&mut self) -> DbResult<Option<WindowRecord>> {
        if self.is_finished() {
            return Ok(None);
        }
        let w = self.next_window;
        let window = {
            let seq = WorkloadSequencer::new(
                &self.benchmark,
                self.session.workload(),
                self.session.seed(),
            );
            ArrivalSchedule::new(seq, self.config.arrival, self.session.seed()).window(w)
        };
        let cur_shares = arrival_shares(&window);

        // Window 0 always runs Full (it carries the tuner's setup charge
        // and there is nothing to reuse yet); afterwards the controller's
        // verdict from the previous window applies.
        let level = if w == 0 {
            DegradeLevel::Full
        } else {
            self.controller.level()
        };
        let changed_templates = if level == DegradeLevel::Amortized {
            changed_shares(&self.prev_shares, &cur_shares, self.config.share_epsilon)
                .into_iter()
                .map(|ti| self.benchmark.templates()[ti].id)
                .collect()
        } else {
            Vec::new()
        };
        let mode = WindowMode {
            level,
            changed_templates,
        };

        let (record, wall_recommend_s) =
            self.session
                .step_window(self.config.arrival, &window, &mode, &mut self.timer)?;
        let recommend_s = record.recommendation.secs();
        let prev_level = self.controller.level();
        let next_level = self.controller.observe(recommend_s);
        self.prev_shares = cur_shares;

        // Satellite observability: one structured event per window, plus a
        // ladder-transition event whenever the controller moves. Gated on
        // `enabled()` so the noop path never formats level labels.
        if self.session.obs().enabled() {
            let blown = recommend_s > self.config.budget_s;
            if next_level != prev_level {
                self.session.obs().event(
                    "degrade.transition",
                    vec![
                        ("window", w.into()),
                        ("from", format!("{prev_level:?}").into()),
                        ("to", format!("{next_level:?}").into()),
                        ("debt_s", self.controller.debt_s().into()),
                    ],
                );
            }
            let mut fields = vec![
                ("window", w.into()),
                ("round", window.round.into()),
                ("level", format!("{level:?}").into()),
                ("debt_s", self.controller.debt_s().into()),
                ("arrivals", window.total_arrivals().into()),
                ("blown", blown.into()),
                ("recommend_s", recommend_s.into()),
            ];
            if let Some(wall) = wall_recommend_s {
                fields.push(("wall_recommend_s", wall.into()));
            }
            self.session.obs().event("stream.window", fields);
        }

        let wrec = WindowRecord {
            window: w,
            round: window.round,
            burst: window.burst,
            round_boundary: window.round_boundary,
            level,
            arrivals: window.total_arrivals(),
            duration: window.duration,
            budget_blown: recommend_s > self.config.budget_s,
            wall_recommend_s,
            record,
        };
        self.windows.push(wrec.clone());
        self.next_window += 1;
        Ok(Some(wrec))
    }

    /// Run every remaining window and return the complete [`StreamResult`].
    pub fn run(mut self) -> DbResult<StreamResult> {
        while self.step()?.is_some() {}
        Ok(self.into_result())
    }

    /// Finish early: package whatever windows have run.
    pub fn into_result(self) -> StreamResult {
        StreamResult {
            run: self.session.into_result(),
            windows: self.windows,
            budget_s: self.config.budget_s,
        }
    }

    /// Guardrail report of the underlying session, if safeguarded.
    pub fn safety_report(&self) -> Option<SafetyReport> {
        self.session.safety_ledger().map(|l| l.report())
    }
}

/// Per-template arrival shares of one window, aggregated (RoundBatch
/// windows repeat templates positionally) and sorted by template index.
fn arrival_shares(window: &ArrivalWindow) -> Vec<(usize, f64)> {
    let total = window.total_arrivals();
    if total == 0 {
        return Vec::new();
    }
    let mut counts: Vec<(usize, u64)> = window.arrivals.clone();
    counts.sort_unstable_by_key(|&(ti, _)| ti);
    let mut shares: Vec<(usize, f64)> = Vec::with_capacity(counts.len());
    for (ti, c) in counts {
        match shares.last_mut() {
            Some((last, share)) if *last == ti => *share += c as f64 / total as f64,
            _ => shares.push((ti, c as f64 / total as f64)),
        }
    }
    shares
}

/// Template indices whose arrival share moved by more than `epsilon`
/// between two share vectors (both sorted by template index). Templates
/// appearing or vanishing always count — a share moving from or to zero
/// is exactly the "queries of interest changed" signal.
fn changed_shares(prev: &[(usize, f64)], cur: &[(usize, f64)], epsilon: f64) -> Vec<usize> {
    let mut changed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() || j < cur.len() {
        match (prev.get(i), cur.get(j)) {
            (Some(&(pt, ps)), Some(&(ct, cs))) if pt == ct => {
                if (ps - cs).abs() > epsilon {
                    changed.push(pt);
                }
                i += 1;
                j += 1;
            }
            (Some(&(pt, _)), Some(&(ct, _))) if pt < ct => {
                changed.push(pt);
                i += 1;
            }
            (Some(_), Some(&(ct, _))) => {
                changed.push(ct);
                j += 1;
            }
            (Some(&(pt, _)), None) => {
                changed.push(pt);
                i += 1;
            }
            (None, Some(&(ct, _))) => {
                changed.push(ct);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{SessionBuilder, TunerKind};
    use dba_safety::SafetyConfig;
    use dba_workloads::{ssb::ssb, WorkloadKind};

    fn builder(tuner: TunerKind) -> SessionBuilder {
        SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(tuner)
            .workload(WorkloadKind::Static { rounds: 4 })
            .seed(7)
    }

    /// ISSUE invariant: with no budget, the streaming driver over
    /// `RoundBatch` arrivals reduces *exactly* to the fixed-round model —
    /// every record field, including cache counters, bit-identical.
    #[test]
    fn unbounded_roundbatch_reduces_to_the_fixed_round_trajectory() {
        let fixed = {
            let mut s = builder(TunerKind::Mab).build().unwrap();
            s.run().unwrap()
        };
        let streamed = {
            let s = builder(TunerKind::Mab).build().unwrap();
            StreamingSession::new(s, StreamConfig::unbounded(ArrivalProcess::RoundBatch))
                .run()
                .unwrap()
        };
        assert_eq!(streamed.windows.len(), fixed.rounds.len());
        assert_eq!(
            format!("{:?}", streamed.run.rounds),
            format!("{:?}", fixed.rounds),
            "streaming RoundBatch must reproduce the round-batch records bitwise"
        );
        assert_eq!(streamed.degraded_windows(), 0);
        assert_eq!(streamed.blown_windows(), 0);
        for w in &streamed.windows {
            assert!(w.round_boundary);
            assert_eq!(w.level, DegradeLevel::Full);
            assert_eq!(w.wall_recommend_s, None, "no timer injected");
        }
    }

    /// Guarded equivalence: unit window weights must leave the safety
    /// trajectory and every time field identical to the round-batch run.
    /// What-if cache counters are excluded — the weighted shadow pass
    /// legitimately hits the memo where the unweighted pass recomputes.
    #[test]
    fn unbounded_guarded_roundbatch_matches_times_and_safety() {
        let guarded = |streaming: bool| {
            let s = builder(TunerKind::Mab)
                .safeguard(SafetyConfig::default())
                .build()
                .unwrap();
            if streaming {
                StreamingSession::new(s, StreamConfig::unbounded(ArrivalProcess::RoundBatch))
                    .run()
                    .unwrap()
                    .run
            } else {
                let mut s = s;
                s.run().unwrap()
            }
        };
        let fixed = guarded(false);
        let streamed = guarded(true);
        assert_eq!(streamed.rounds.len(), fixed.rounds.len());
        for (s, f) in streamed.rounds.iter().zip(&fixed.rounds) {
            assert_eq!(s.recommendation, f.recommendation);
            assert_eq!(s.creation, f.creation);
            assert_eq!(s.execution, f.execution);
            assert_eq!(s.maintenance, f.maintenance);
            assert_eq!(s.shift_intensity, f.shift_intensity);
        }
        let (sa, fa) = (streamed.safety.unwrap(), fixed.safety.unwrap());
        assert_eq!(format!("{sa:?}"), format!("{fa:?}"));
    }

    /// A starved budget engages the degrade ladder in contract order:
    /// the first degraded window is `ReuseConfig`, and no `Amortized`
    /// window precedes it.
    #[test]
    fn starved_budget_engages_reuse_before_amortized() {
        let s = builder(TunerKind::Mab)
            .workload(WorkloadKind::Static { rounds: 2 })
            .build()
            .unwrap();
        let mut config = StreamConfig::new(ArrivalProcess::paper_poisson(), 1.0e-9);
        config.share_epsilon = 0.01;
        let result = StreamingSession::new(s, config).run().unwrap();
        assert_eq!(result.windows.len(), 16);
        assert!(result.blown_windows() >= 1, "budget must actually blow");
        assert!(result.degraded_windows() >= 1, "ladder must engage");
        let first_degraded = result
            .windows
            .iter()
            .find(|w| w.level != DegradeLevel::Full)
            .expect("some window degraded");
        assert_eq!(
            first_degraded.level,
            DegradeLevel::ReuseConfig,
            "config reuse must precede marginal amortization"
        );
        assert_eq!(result.windows[0].level, DegradeLevel::Full);
    }

    /// Streaming runs are deterministic: the same configuration replays
    /// the identical window trail, whatever else ran in the process.
    #[test]
    fn streaming_runs_replay_bit_identically() {
        let run = || {
            let s = builder(TunerKind::Mab)
                .workload(WorkloadKind::Static { rounds: 2 })
                .build()
                .unwrap();
            StreamingSession::new(s, StreamConfig::new(ArrivalProcess::paper_bursty(), 0.05))
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{:?}", a.windows), format!("{:?}", b.windows));
        assert_eq!(a.queries_per_min(), b.queries_per_min());
    }

    #[test]
    fn controller_walks_reuse_before_amortized_and_recovers() {
        // Budget 1.0s. Two expensive windows, then cheap ones: the ladder
        // must go Full → ReuseConfig → Amortized → … → Full, never jumping
        // straight to Amortized.
        let mut c = DegradeController::new(1.0);
        assert_eq!(c.level(), DegradeLevel::Full);
        assert_eq!(c.observe(3.0), DegradeLevel::ReuseConfig);
        assert_eq!(c.observe(3.0), DegradeLevel::Amortized);
        assert_eq!(c.observe(0.0), DegradeLevel::Amortized, "debt persists");
        assert_eq!(c.observe(0.0), DegradeLevel::Full, "debt paid off");
        assert!(c.debt_s() == 0.0);
        // A fresh breach starts the ladder at ReuseConfig again.
        assert_eq!(c.observe(1.5), DegradeLevel::ReuseConfig);
        assert_eq!(c.observe(0.0), DegradeLevel::Full);
    }

    #[test]
    fn controller_debt_is_clamped_to_twice_the_budget() {
        let mut c = DegradeController::new(1.0);
        c.observe(1_000.0);
        assert_eq!(c.debt_s(), 2.0, "one catastrophe mortgages two windows");
        c.observe(0.0);
        c.observe(0.0);
        assert_eq!(c.level(), DegradeLevel::Full);
    }

    #[test]
    fn infinite_budget_never_degrades() {
        let mut c = DegradeController::new(f64::INFINITY);
        for _ in 0..10 {
            assert_eq!(c.observe(1.0e9), DegradeLevel::Full);
        }
        assert_eq!(c.debt_s(), 0.0);
    }

    #[test]
    fn changed_shares_flags_moves_appearances_and_vanishings() {
        let prev = [(1, 0.5), (2, 0.3), (4, 0.2)];
        let cur = [(1, 0.505), (2, 0.095), (3, 0.4)];
        // 1 moved within epsilon; 2 moved beyond; 4 vanished; 3 appeared.
        assert_eq!(changed_shares(&prev, &cur, 0.01), vec![2, 3, 4]);
        assert!(changed_shares(&prev, &prev, 0.01).is_empty());
        assert_eq!(changed_shares(&[], &cur, 0.01), vec![1, 2, 3]);
    }
}
