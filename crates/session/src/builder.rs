//! Session construction: tuner selection and validated assembly of the
//! substrate a tuning loop needs.

use std::sync::Arc;

use dba_baselines::{
    DdqnAdvisor, DdqnConfig, InvokeSchedule, NoIndexAdvisor, PdToolAdvisor, PdToolConfig,
};
use dba_common::{DbError, DbResult, SimSeconds};
use dba_core::{Advisor, MabConfig, MabTuner};
use dba_engine::{BackendKind, CostModel, ExecutionBackend};
use dba_optimizer::StatsCatalog;
use dba_safety::{SafeguardedAdvisor, SafetyConfig, SafetyLedger};
use dba_storage::{BaseData, Catalog};
use dba_workloads::{Benchmark, DataDrift, WorkloadKind};

use crate::session::TuningSession;

/// How the session obtains its execution backend: a named kind resolved
/// at build time, or a caller-supplied implementation.
enum BackendChoice {
    Kind(BackendKind),
    Custom(Box<dyn ExecutionBackend>),
}

impl BackendChoice {
    fn into_backend(self, cost: &CostModel) -> Box<dyn ExecutionBackend> {
        match self {
            BackendChoice::Kind(BackendKind::Simulated) => dba_engine::simulated(cost.clone()),
            BackendChoice::Kind(BackendKind::Measured) => dba_backend::measured(cost.clone()),
            BackendChoice::Custom(backend) => backend,
        }
    }
}

/// The built-in tuners (the paper's comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerKind {
    NoIndex,
    PdTool,
    Mab,
    Ddqn { seed: u64 },
    DdqnSc { seed: u64 },
}

impl TunerKind {
    pub fn label(&self) -> &'static str {
        match self {
            TunerKind::NoIndex => "NoIndex",
            TunerKind::PdTool => "PDTool",
            TunerKind::Mab => "MAB",
            TunerKind::Ddqn { .. } => "DDQN",
            TunerKind::DdqnSc { .. } => "DDQN-SC",
        }
    }
}

/// Construct an advisor for `kind`, configured per the paper's setup:
/// PDTool scheduled per workload type, the TPC-DS dynamic-random PDTool
/// invocation capped at one hour (§V-A).
pub fn make_advisor(
    kind: TunerKind,
    benchmark_name: &str,
    workload: WorkloadKind,
    catalog: &Catalog,
    cost: &CostModel,
    memory_budget_bytes: u64,
) -> Box<dyn Advisor> {
    let budget = memory_budget_bytes;
    match kind {
        TunerKind::NoIndex => Box::new(NoIndexAdvisor),
        TunerKind::PdTool => {
            let schedule = match workload {
                WorkloadKind::Random { .. } => InvokeSchedule::EveryKRounds(4),
                _ => InvokeSchedule::OnWorkloadChange,
            };
            let mut config = PdToolConfig::paper_defaults(budget, schedule);
            if benchmark_name == "TPC-DS" && matches!(workload, WorkloadKind::Random { .. }) {
                config.time_limit = Some(SimSeconds::new(3600.0));
            }
            Box::new(PdToolAdvisor::new(cost.clone(), config))
        }
        TunerKind::Mab => {
            let config = MabConfig {
                memory_budget_bytes: budget,
                ..MabConfig::default()
            };
            Box::new(MabTuner::new(catalog, cost.clone(), config))
        }
        TunerKind::Ddqn { seed } => {
            let config = DdqnConfig::paper_defaults(budget, seed);
            Box::new(DdqnAdvisor::new(catalog, cost.clone(), config))
        }
        TunerKind::DdqnSc { seed } => {
            let config = DdqnConfig::paper_defaults(budget, seed).single_column();
            Box::new(DdqnAdvisor::new(catalog, cost.clone(), config))
        }
    }
}

/// Builds a [`TuningSession`].
///
/// Required: a benchmark and a tuner (either a [`TunerKind`] or, via
/// [`build_with`](SessionBuilder::build_with), any [`Advisor`]).
/// Defaults: the paper's static workload, seed 42, the paper-scale cost
/// model, and a memory budget of 1× the generated data size.
pub struct SessionBuilder {
    benchmark: Option<Benchmark>,
    shared_data: Option<Arc<BaseData>>,
    shared_stats: Option<StatsCatalog>,
    workload: WorkloadKind,
    drift: Option<DataDrift>,
    tuner: Option<TunerKind>,
    seed: u64,
    memory_budget_bytes: Option<u64>,
    cost: CostModel,
    safeguard: Option<SafetyConfig>,
    mab_config: Option<MabConfig>,
    obs: dba_obs::Obs,
    backend: BackendChoice,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    pub fn new() -> Self {
        SessionBuilder {
            benchmark: None,
            shared_data: None,
            shared_stats: None,
            workload: WorkloadKind::paper_static(),
            drift: None,
            tuner: None,
            seed: 42,
            memory_budget_bytes: None,
            cost: CostModel::paper_scale(),
            safeguard: None,
            mab_config: None,
            obs: dba_obs::Obs::noop(),
            backend: BackendChoice::Kind(BackendKind::Simulated),
        }
    }

    /// Select the execution backend by kind: `Simulated` (default — the
    /// cost-priced engine executor, bit-exact with every prior trajectory)
    /// or `Measured` (real physical operators from `dba-backend`, timed on
    /// the wall-clock). The bench harness maps the `DBA_BACKEND` env knob
    /// here.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = BackendChoice::Kind(kind);
        self
    }

    /// Install a caller-constructed backend (e.g. `dba_backend::dual` for
    /// lock-step parity checking, or a measured backend on an injected
    /// clock for deterministic tests). Overrides
    /// [`backend`](SessionBuilder::backend).
    pub fn backend_boxed(mut self, backend: Box<dyn ExecutionBackend>) -> Self {
        self.backend = BackendChoice::Custom(backend);
        self
    }

    /// Attach an observability handle (`dba-obs`): the session clones it
    /// into the advisor stack, the plan cache and the what-if service at
    /// build time, so one recorder sees the whole tuning loop. Defaults to
    /// the noop handle (zero-cost, bit-identical trajectories).
    pub fn observe(mut self, obs: dba_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The benchmark supplying schema, data generators and query
    /// templates. Required.
    pub fn benchmark(mut self, benchmark: Benchmark) -> Self {
        self.benchmark = Some(benchmark);
        self
    }

    /// Reuse already-generated benchmark data instead of regenerating it.
    /// The session forks an index-free catalog over `base`'s shared
    /// [`BaseData`] — an `Arc` bump, never a data copy — so any number of
    /// sessions (including on other threads) run over identical data: how
    /// suites compare tuners fairly at zero marginal memory.
    pub fn shared_data(mut self, base: &Catalog) -> Self {
        self.shared_data = Some(Arc::clone(base.base()));
        self
    }

    /// Reuse already-built statistics instead of re-ANALYZE-ing the data.
    /// Statistics depend only on table contents, so a suite sharing data
    /// across sessions builds them once; each session forks a fresh
    /// overlay over the shared `Arc`'d ANALYZE output (histograms are
    /// never copied).
    pub fn shared_stats(mut self, stats: &StatsCatalog) -> Self {
        self.shared_stats = Some(stats.fork());
        self
    }

    /// The workload type (defaults to the paper's 25-round static
    /// workload).
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = kind;
        self
    }

    /// Apply a data-change scenario: after each round's queries execute,
    /// the given per-table insert/update/delete rates mutate the live data,
    /// charging every materialised index its maintenance cost and letting
    /// statistics go stale. Defaults to no drift (the paper's read-only
    /// rounds); validated against the benchmark's tables at build time.
    pub fn data_drift(mut self, drift: DataDrift) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Pick a built-in tuner. Required unless building with
    /// [`build_with`](SessionBuilder::build_with).
    pub fn tuner(mut self, kind: TunerKind) -> Self {
        self.tuner = Some(kind);
        self
    }

    /// Experiment seed for data generation and query parameter binding
    /// (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Memory budget for secondary indexes, in bytes. Defaults to 1× the
    /// generated data size (the paper's setting). Must be non-zero.
    pub fn memory_budget_bytes(mut self, bytes: u64) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Override the cost model (default: [`CostModel::paper_scale`]).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Run the tuner behind the `dba-safety` guardrail: shadow-baseline
    /// regret accounting plus veto/rollback/throttle enforcement (see
    /// [`SafetyConfig`]). A `memory_budget_bytes` of 0 in the config
    /// inherits the session's budget. The guarded advisor reports as
    /// `<tuner>+guard` and the run result carries a
    /// [`SafetyReport`](dba_safety::SafetyReport). Validated at build
    /// time; only [`build`](SessionBuilder::build) supports it (wrapping
    /// a [`build_with`](SessionBuilder::build_with) advisor would change
    /// the session's advisor type — wrap it yourself with
    /// [`SafeguardedAdvisor`] in that case).
    pub fn safeguard(mut self, config: SafetyConfig) -> Self {
        self.safeguard = Some(config);
        self
    }

    /// Override the MAB tuner's configuration (e.g. enable
    /// `streaming_fast_path` or tune `refresh_every` for a streaming run).
    /// Only consulted when the tuner is [`TunerKind::Mab`]; a
    /// `memory_budget_bytes` of 0 in the config inherits the session's
    /// budget, matching [`safeguard`](SessionBuilder::safeguard).
    pub fn mab_config(mut self, config: MabConfig) -> Self {
        self.mab_config = Some(config);
        self
    }

    /// Validate and build the substrate shared by both build paths.
    fn prepare(self) -> DbResult<PreparedSession> {
        let benchmark = self
            .benchmark
            .ok_or_else(|| DbError::Invalid("session builder: no benchmark configured".into()))?;
        if self.workload.rounds() == 0 {
            return Err(DbError::Invalid(
                "session builder: workload has zero rounds".into(),
            ));
        }
        if let WorkloadKind::Shifting { groups, .. } = self.workload {
            // More groups than templates would leave some groups without a
            // single template — the sequencer would emit empty rounds.
            let templates = benchmark.templates().len();
            if groups > templates {
                return Err(DbError::Invalid(format!(
                    "session builder: shifting workload with {groups} groups \
                     but only {templates} templates — some groups would be empty"
                )));
            }
        }
        if self.memory_budget_bytes == Some(0) {
            return Err(DbError::Invalid(
                "session builder: memory budget of 0 bytes leaves no room for any index".into(),
            ));
        }
        let catalog = match self.shared_data {
            Some(base) => Catalog::from_base(base),
            None => benchmark.build_catalog(self.seed)?,
        };
        if let Some(drift) = &self.drift {
            drift.validate(&catalog)?;
        }
        let stats = self
            .shared_stats
            .unwrap_or_else(|| StatsCatalog::build(&catalog));
        let budget = self
            .memory_budget_bytes
            .unwrap_or_else(|| catalog.database_bytes());
        if let Some(guard) = &self.safeguard {
            guard.validate()?;
        }
        Ok(PreparedSession {
            benchmark,
            catalog,
            stats,
            workload: self.workload,
            drift: self.drift,
            tuner: self.tuner,
            seed: self.seed,
            budget,
            cost: self.cost,
            safeguard: self.safeguard,
            mab_config: self.mab_config,
            obs: self.obs,
            backend: self.backend,
        })
    }

    /// Build a session over the configured [`TunerKind`].
    pub fn build(self) -> DbResult<TuningSession<Box<dyn Advisor>>> {
        let p = self.prepare()?;
        let kind = p
            .tuner
            .ok_or_else(|| DbError::Invalid("session builder: no tuner configured".into()))?;
        let mut advisor = match (kind, &p.mab_config) {
            (TunerKind::Mab, Some(config)) => {
                let mut config = *config;
                if config.memory_budget_bytes == 0 {
                    config.memory_budget_bytes = p.budget;
                }
                Box::new(MabTuner::new(&p.catalog, p.cost.clone(), config)) as Box<dyn Advisor>
            }
            _ => make_advisor(
                kind,
                p.benchmark.name,
                p.workload,
                &p.catalog,
                &p.cost,
                p.budget,
            ),
        };
        let mut ledger: Option<SafetyLedger> = None;
        if let Some(mut guard_config) = p.safeguard {
            if guard_config.memory_budget_bytes == 0 {
                guard_config.memory_budget_bytes = p.budget;
            }
            let guard = SafeguardedAdvisor::new(advisor, guard_config, p.cost.clone());
            ledger = Some(guard.ledger());
            advisor = Box::new(guard);
        }
        Ok(p.into_session_guarded(advisor, ledger))
    }

    /// Build a session over a custom advisor. The closure receives the
    /// session's catalog, cost model and memory budget — everything an
    /// advisor constructor needs — and keeps the concrete advisor type,
    /// so session accessors can reach tuner internals (e.g.
    /// `MabTuner::arm_count`).
    pub fn build_with<A, F>(self, make: F) -> DbResult<TuningSession<A>>
    where
        A: Advisor,
        F: FnOnce(&Catalog, &CostModel, u64) -> A,
    {
        let p = self.prepare()?;
        if p.safeguard.is_some() {
            return Err(DbError::Invalid(
                "session builder: safeguard() only composes with build(); wrap your advisor \
                 in dba_safety::SafeguardedAdvisor inside the build_with closure instead"
                    .into(),
            ));
        }
        let advisor = make(&p.catalog, &p.cost, p.budget);
        Ok(p.into_session(advisor))
    }
}

/// Validated substrate, ready to pair with an advisor.
struct PreparedSession {
    benchmark: Benchmark,
    catalog: Catalog,
    stats: StatsCatalog,
    workload: WorkloadKind,
    drift: Option<DataDrift>,
    tuner: Option<TunerKind>,
    seed: u64,
    budget: u64,
    cost: CostModel,
    safeguard: Option<SafetyConfig>,
    mab_config: Option<MabConfig>,
    obs: dba_obs::Obs,
    backend: BackendChoice,
}

impl PreparedSession {
    fn into_session<A: Advisor>(self, advisor: A) -> TuningSession<A> {
        self.into_session_guarded(advisor, None)
    }

    fn into_session_guarded<A: Advisor>(
        self,
        advisor: A,
        ledger: Option<SafetyLedger>,
    ) -> TuningSession<A> {
        TuningSession::from_parts(
            self.benchmark,
            self.catalog,
            self.stats,
            self.workload,
            self.seed,
            self.budget,
            self.backend.into_backend(&self.cost),
            self.cost,
            advisor,
            self.drift,
            ledger,
            self.obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_workloads::ssb::ssb;

    /// `unwrap_err` needs `Debug` on the success type; sessions have no
    /// meaningful `Debug`, so extract the `Invalid` message by hand.
    fn invalid_msg<T>(result: DbResult<T>) -> String {
        match result {
            Err(DbError::Invalid(msg)) => msg,
            Err(other) => panic!("expected DbError::Invalid, got {other:?}"),
            Ok(_) => panic!("expected an error, got a session"),
        }
    }

    #[test]
    fn missing_benchmark_is_rejected() {
        let result = SessionBuilder::new().tuner(TunerKind::Mab).build();
        assert!(invalid_msg(result).contains("no benchmark"));
    }

    #[test]
    fn zero_round_workload_is_rejected() {
        let result = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::Mab)
            .workload(WorkloadKind::Static { rounds: 0 })
            .build();
        assert!(invalid_msg(result).contains("zero rounds"));
    }

    #[test]
    fn zero_byte_budget_is_rejected() {
        let result = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::Mab)
            .memory_budget_bytes(0)
            .build();
        assert!(invalid_msg(result).contains("budget of 0"));
    }

    #[test]
    fn missing_tuner_is_rejected() {
        let result = SessionBuilder::new().benchmark(ssb(0.01)).build();
        assert!(invalid_msg(result).contains("no tuner"));
    }

    #[test]
    fn shifting_with_more_groups_than_templates_is_rejected() {
        // SSB has 13 templates; 14 groups would leave one empty.
        let result = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::Mab)
            .workload(WorkloadKind::Shifting {
                groups: 14,
                rounds_per_group: 2,
            })
            .build();
        assert!(invalid_msg(result).contains("groups"));
        // The boundary case (groups == templates) is fine.
        assert!(SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::NoIndex)
            .workload(WorkloadKind::Shifting {
                groups: 13,
                rounds_per_group: 1,
            })
            .build()
            .is_ok());
    }

    #[test]
    fn invalid_drift_is_rejected() {
        use dba_workloads::{DataDrift, DriftRates};
        let result = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::NoIndex)
            .workload(WorkloadKind::Static { rounds: 1 })
            .data_drift(DataDrift::uniform(DriftRates::new(f64::NAN, 0.0, 0.0)))
            .build();
        assert!(invalid_msg(result).contains("drift"));
        let unknown_table = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::NoIndex)
            .workload(WorkloadKind::Static { rounds: 1 })
            .data_drift(DataDrift::none().with_table("nope", DriftRates::new(0.1, 0.0, 0.0)))
            .build();
        assert!(unknown_table.is_err());
    }

    #[test]
    fn budget_defaults_to_database_size() {
        let session = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::NoIndex)
            .workload(WorkloadKind::Static { rounds: 1 })
            .build()
            .unwrap();
        assert_eq!(
            session.memory_budget_bytes(),
            session.catalog().database_bytes()
        );
    }

    /// Zero-copy forking: sessions built over shared data hold the same
    /// `BaseData` and ANALYZE allocations as the suite's originals — the
    /// strong count moves, the data never does.
    #[test]
    fn shared_sessions_fork_without_deep_cloning() {
        use dba_optimizer::StatsCatalog;
        use std::sync::Arc;

        let bench = ssb(0.01);
        let base = bench.build_catalog(42).unwrap();
        let stats = StatsCatalog::build(&base);
        let data_refs = Arc::strong_count(base.base());
        let stats_refs = Arc::strong_count(stats.base());

        let build = || {
            SessionBuilder::new()
                .benchmark(bench.clone())
                .shared_data(&base)
                .shared_stats(&stats)
                .tuner(TunerKind::NoIndex)
                .workload(WorkloadKind::Static { rounds: 1 })
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();

        for s in [&a, &b] {
            assert!(
                Arc::ptr_eq(s.catalog().base(), base.base()),
                "session must share the generated data allocation"
            );
            assert!(
                Arc::ptr_eq(s.stats().base(), stats.base()),
                "session must share the ANALYZE output allocation"
            );
        }
        assert_eq!(Arc::strong_count(base.base()), data_refs + 2);
        assert_eq!(Arc::strong_count(stats.base()), stats_refs + 2);
    }

    #[test]
    fn invalid_safety_config_is_rejected() {
        use dba_safety::SafetyConfig;
        let result = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .tuner(TunerKind::Mab)
            .workload(WorkloadKind::Static { rounds: 1 })
            .safeguard(SafetyConfig {
                rollback_window: 0,
                ..SafetyConfig::default()
            })
            .build();
        assert!(invalid_msg(result).contains("rollback_window"));
    }

    #[test]
    fn safeguard_does_not_compose_with_build_with() {
        use dba_baselines::NoIndexAdvisor;
        use dba_safety::SafetyConfig;
        let result = SessionBuilder::new()
            .benchmark(ssb(0.01))
            .workload(WorkloadKind::Static { rounds: 1 })
            .safeguard(SafetyConfig::default())
            .build_with(|_, _, _| NoIndexAdvisor);
        assert!(invalid_msg(result).contains("safeguard"));
    }

    /// The guard inherits the session budget when the config leaves the
    /// budget at 0 — the live index footprint never exceeds it.
    #[test]
    fn safeguard_inherits_session_budget() {
        use dba_safety::SafetyConfig;
        let budget = 512 * 1024;
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .tuner(TunerKind::Mab)
            .workload(WorkloadKind::Static { rounds: 4 })
            .memory_budget_bytes(budget)
            .safeguard(SafetyConfig::default())
            .seed(7)
            .build()
            .unwrap();
        session.run().unwrap();
        assert!(session.catalog().live_index_bytes() <= budget);
    }

    #[test]
    fn every_tuner_kind_constructs() {
        for kind in [
            TunerKind::NoIndex,
            TunerKind::PdTool,
            TunerKind::Mab,
            TunerKind::Ddqn { seed: 1 },
            TunerKind::DdqnSc { seed: 1 },
        ] {
            let session = SessionBuilder::new()
                .benchmark(ssb(0.01))
                .tuner(kind)
                .workload(WorkloadKind::Static { rounds: 1 })
                .build()
                .unwrap();
            assert_eq!(session.advisor().name(), kind.label());
        }
    }
}
