//! `TuningSession`: the first-class API for driving index tuners.
//!
//! The paper's central loop — recommend, execute, observe, repeat
//! (Algorithm 2 of Perera et al., ICDE 2021) — lives here, in exactly one
//! place. A session owns everything the loop needs (catalog, statistics,
//! planner context, executor, workload sequencer) and drives any
//! [`Advisor`] — the MAB tuner, the PDTool/DDQN/NoIndex baselines, or a
//! user-supplied implementation — over any benchmark and workload type.
//!
//! ```no_run
//! use dba_session::{SessionBuilder, TunerKind};
//! use dba_workloads::{ssb::ssb, WorkloadKind};
//!
//! let mut session = SessionBuilder::new()
//!     .benchmark(ssb(0.1))
//!     .workload(WorkloadKind::Static { rounds: 10 })
//!     .tuner(TunerKind::Mab)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let result = session
//!     .run_with(&mut |event| {
//!         eprintln!("round {}: {:.1}s", event.round, event.record.execution.secs());
//!     })
//!     .unwrap();
//! println!("total {:.1}s over {} rounds", result.total().secs(), result.rounds.len());
//! ```
//!
//! * [`SessionBuilder`] validates the configuration and constructs the
//!   substrate (catalog from the benchmark's generators, statistics, cost
//!   model, memory budget — 1× the data size unless overridden).
//! * [`TuningSession::step`] runs one round and returns its
//!   [`RoundRecord`]; [`TuningSession::run`] drains the workload and
//!   returns a [`RunResult`].
//! * The `*_with` variants additionally emit a [`RoundEvent`] to an
//!   `FnMut(&RoundEvent)` observer after every round — convergence
//!   telemetry without touching the loop.

pub mod builder;
pub mod record;
pub mod session;
pub mod stream;

pub use builder::{make_advisor, SessionBuilder, TunerKind};
pub use dba_core::{Advisor, AdvisorCost, DataChange, DegradeLevel, WindowMode};
pub use dba_safety::{
    RoundSafety, SafeguardedAdvisor, SafetyConfig, SafetyLedger, SafetyReport, SafetySnapshot,
};
pub use dba_workloads::{ArrivalProcess, ArrivalWindow, DataDrift, DriftRates};
pub use record::{RoundRecord, RunResult};
pub use session::{RoundEvent, TuningSession, STATS_REFRESH_STALENESS};
pub use stream::{
    DegradeController, DynStreamingSession, StreamConfig, StreamResult, StreamingSession,
    WindowRecord,
};

/// A session over a type-erased advisor, as produced by
/// [`SessionBuilder::build`].
pub type DynTuningSession = TuningSession<Box<dyn Advisor>>;
