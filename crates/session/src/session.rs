//! The tuning loop itself — the only implementation of the paper's
//! Algorithm 2 driving loop in the workspace.

use std::collections::HashSet;

use dba_common::{BudgetTimer, DbResult, SimSeconds, TemplateId};
use dba_engine::{ExecutionBackend, Plan, Query, QueryExecution};
use dba_obs::Obs;
use dba_optimizer::{PlanCache, Planner, PlannerContext, StatsCatalog, WhatIfService};
use dba_safety::{SafetyLedger, SafetySnapshot};
use dba_storage::Catalog;
use dba_workloads::{
    ArrivalProcess, ArrivalSchedule, ArrivalWindow, Benchmark, DataDrift, WorkloadKind,
    WorkloadSequencer,
};

use dba_core::{Advisor, DataChange, RoundContext, TableChange, WindowMode};

use crate::record::{RoundRecord, RunResult};

/// Statistics are auto-refreshed (re-ANALYZEd) once this fraction of a
/// table's rows has changed since the last refresh — the same order as
/// commercial auto-stats thresholds (SQL Server: 20% + 500 rows).
pub const STATS_REFRESH_STALENESS: f64 = 0.2;

/// Snapshot emitted to observers after every completed round.
#[derive(Debug, Clone, Copy)]
pub struct RoundEvent {
    /// 1-based round number (matches [`RoundRecord::round`]).
    pub round: usize,
    /// Total rounds in the session's workload.
    pub rounds_total: usize,
    /// The round's time accounting (`record.maintenance` carries the
    /// index-maintenance bill of drifted rounds).
    pub record: RoundRecord,
    /// Number of queries executed this round.
    pub queries: usize,
    /// Materialised secondary indexes after the round.
    pub index_count: usize,
    /// Live (drift-grown) bytes held by materialised secondary indexes
    /// after the round — the footprint the safety layer's memory headroom
    /// is checked against.
    pub index_bytes: u64,
    /// Worst-table statistics staleness after the round (0 when fresh).
    pub stats_staleness: f64,
    /// Guardrail running totals (cumulative regret, throttle state, veto
    /// and rollback counts); `None` for unguarded sessions. Shadow prices
    /// are computed in the round's own observation step against its
    /// execution-time (pre-drift) snapshot, so the regret figure covers
    /// the round this event reports.
    pub safety: Option<SafetySnapshot>,
}

/// A tuner driving session: one advisor × one benchmark × one workload.
///
/// Create via [`SessionBuilder`](crate::SessionBuilder). Drive with
/// [`run`](Self::run) (whole workload) or [`step`](Self::step) (one round
/// at a time); the `*_with` variants emit a [`RoundEvent`] per round to an
/// observer.
pub struct TuningSession<A: Advisor> {
    benchmark: Benchmark,
    catalog: Catalog,
    stats: StatsCatalog,
    workload: WorkloadKind,
    seed: u64,
    memory_budget_bytes: u64,
    /// The execution seam: how physical plans are run. `Simulated` (the
    /// engine's cost-priced executor) by default; `Measured` (real
    /// operators on an injected clock, crate `dba-backend`) or any custom
    /// implementation via
    /// [`SessionBuilder::backend`](crate::SessionBuilder::backend) /
    /// [`SessionBuilder::backend_boxed`](crate::SessionBuilder::backend_boxed).
    backend: Box<dyn ExecutionBackend>,
    cost: dba_engine::CostModel,
    advisor: A,
    /// Data-change scenario applied after every round's execution; `None`
    /// (or an all-zero spec) keeps the paper's read-only rounds.
    drift: Option<DataDrift>,
    /// Seeded template order, computed once so per-round sequencer
    /// reconstruction does no re-shuffling.
    template_order: Vec<usize>,
    /// Template-level plan reuse, validated against per-table catalog and
    /// statistics versions — rounds that change nothing skip the planner.
    plan_cache: PlanCache,
    /// Shared hypothetical-costing subsystem: one memoizing, versioned
    /// what-if layer per session, handed to the advisor every round (the
    /// guardrail's shadow baselines and rollback assessment, PDTool's
    /// candidate scoring). Hit/miss deltas land in each
    /// [`RoundRecord`](crate::RoundRecord).
    whatif: WhatIfService,
    /// Templates seen in any previous round, for per-round shift
    /// intensity (the query store's definition: the fraction of a round's
    /// distinct templates that are previously unseen) — tracked here so
    /// every record carries it, without paying for a full session-side
    /// `QueryStore` whose instance clones and access maps nobody reads.
    seen_templates: HashSet<TemplateId>,
    /// Guardrail ledger handle, present when the session was built with
    /// [`SessionBuilder::safeguard`](crate::SessionBuilder::safeguard);
    /// the advisor writes through its own clone, the session reads
    /// snapshots and attaches the final report to the run result.
    safety: Option<SafetyLedger>,
    /// Observability handle (`dba-obs`), cloned into the advisor, plan
    /// cache and what-if service at build time. Noop by default — every
    /// span/event call is one `Option` check — and advisory always: no
    /// tuning decision ever branches on it.
    obs: Obs,
    /// Running simulated clock: the cumulative simulated seconds of every
    /// completed phase, stamped onto trace records via `set_sim_now`.
    sim_now: SimSeconds,
    records: Vec<RoundRecord>,
    next_round: usize,
}

impl<A: Advisor> TuningSession<A> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        benchmark: Benchmark,
        catalog: Catalog,
        stats: StatsCatalog,
        workload: WorkloadKind,
        seed: u64,
        memory_budget_bytes: u64,
        backend: Box<dyn ExecutionBackend>,
        cost: dba_engine::CostModel,
        mut advisor: A,
        drift: Option<DataDrift>,
        safety: Option<SafetyLedger>,
        obs: Obs,
    ) -> Self {
        let template_order = WorkloadSequencer::new(&benchmark, workload, seed)
            .order()
            .to_vec();
        let drift = drift.filter(|d| !d.is_none());
        let mut whatif = WhatIfService::new(cost.clone());
        whatif.set_obs(&obs);
        let mut plan_cache = PlanCache::new();
        plan_cache.set_obs(&obs);
        advisor.attach_obs(&obs);
        TuningSession {
            benchmark,
            catalog,
            stats,
            workload,
            seed,
            memory_budget_bytes,
            backend,
            cost,
            advisor,
            drift,
            template_order,
            plan_cache,
            whatif,
            seen_templates: HashSet::new(),
            safety,
            obs,
            sim_now: SimSeconds::ZERO,
            records: Vec::new(),
            next_round: 0,
        }
    }

    /// The session's observability handle (noop unless one was attached
    /// via [`SessionBuilder::observe`](crate::SessionBuilder::observe)).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A sequencer over the precomputed template order.
    fn sequencer(&self) -> WorkloadSequencer<'_> {
        WorkloadSequencer::with_order(
            &self.benchmark,
            self.workload,
            self.seed,
            &self.template_order,
        )
    }

    pub fn benchmark(&self) -> &Benchmark {
        &self.benchmark
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    pub fn advisor(&self) -> &A {
        &self.advisor
    }

    pub fn advisor_mut(&mut self) -> &mut A {
        &mut self.advisor
    }

    /// The execution backend running this session's plans.
    pub fn backend(&self) -> &dyn ExecutionBackend {
        &*self.backend
    }

    /// Mutable backend access — e.g. to drain a measured backend's
    /// per-operator calibration samples via `take_op_samples`.
    pub fn backend_mut(&mut self) -> &mut dyn ExecutionBackend {
        &mut *self.backend
    }

    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// The data-change scenario, if this session drifts.
    pub fn drift(&self) -> Option<&DataDrift> {
        self.drift.as_ref()
    }

    /// Scenario label: the workload kind, suffixed with `+drift` when data
    /// changes between rounds.
    pub fn scenario_label(&self) -> String {
        match self.drift {
            Some(_) => format!("{}+drift", self.workload.label()),
            None => self.workload.label().to_string(),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn memory_budget_bytes(&self) -> u64 {
        self.memory_budget_bytes
    }

    /// Rounds in the configured workload.
    pub fn rounds_total(&self) -> usize {
        self.workload.rounds()
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> usize {
        self.next_round
    }

    pub fn is_finished(&self) -> bool {
        self.next_round >= self.rounds_total()
    }

    /// Per-round records accumulated so far.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Run one round of Algorithm 2: recommend → execute → observe.
    /// Returns `None` once the workload is exhausted.
    pub fn step(&mut self) -> DbResult<Option<RoundRecord>> {
        self.step_with(&mut |_| {})
    }

    /// [`step`](Self::step), emitting a [`RoundEvent`] to `observer` after
    /// the round completes.
    pub fn step_with(
        &mut self,
        observer: &mut dyn FnMut(&RoundEvent),
    ) -> DbResult<Option<RoundRecord>> {
        if self.is_finished() {
            return Ok(None);
        }
        let round = self.next_round;
        // Field-precise construction: borrowing via `self.sequencer()`
        // would hold all of `self` across the advisor's mutable calls.
        let sequencer = WorkloadSequencer::with_order(
            &self.benchmark,
            self.workload,
            self.seed,
            &self.template_order,
        );

        self.obs.set_sim_now(self.sim_now);
        self.obs.span_enter("session.round");

        // 1. Recommendation: the advisor adjusts the physical design,
        //    costing hypotheticals through the session's shared service.
        self.obs.span_enter("round.advise");
        let whatif_before = self.whatif.stats();
        let bandit_before = self.advisor.bandit_counters();
        let advisor_cost =
            self.advisor
                .before_round(round, &mut self.catalog, &self.stats, &mut self.whatif);
        self.sim_now += advisor_cost.recommendation + advisor_cost.creation;
        self.obs.set_sim_now(self.sim_now);
        self.obs.span_exit("round.advise");

        // 2. Execution: plan against the current design — through the plan
        //    cache, so templates whose tables saw no index/stats/drift
        //    change since their last plan skip the planner — then run.
        self.obs.span_enter("round.execute");
        let queries = sequencer.round_queries(&self.catalog, round)?;
        let cache_before = self.plan_cache.stats();
        let executions: Vec<QueryExecution> = {
            // Field-precise borrows: the cache is mutated while the
            // planner context holds the catalog and statistics.
            let catalog = &self.catalog;
            let stats = &self.stats;
            let backend = &mut self.backend;
            let plan_cache = &mut self.plan_cache;
            let ctx = PlannerContext::from_catalog(catalog, stats, &self.cost);
            let planner = Planner::new(&ctx);
            queries
                .iter()
                .map(|q| {
                    let plan = plan_cache.get_or_plan(catalog, stats, &planner, q);
                    backend.execute(catalog, q, plan)
                })
                .collect()
        };
        let cache_after = self.plan_cache.stats();
        let execution: SimSeconds = executions.iter().map(|e| e.total).sum();
        self.sim_now += execution;
        self.obs.set_sim_now(self.sim_now);
        self.obs.span_exit("round.execute");

        // Session-side shift intensity for the record (same definition as
        // any advisor-internal query store: the fraction of this round's
        // distinct templates that were previously unseen).
        let shift_intensity = self.note_shift_intensity(&queries);

        // 3. Data change: apply the round's drift deltas, charge every
        //    materialised index its maintenance bill, and let statistics go
        //    stale (auto-refreshing past the threshold). The advisor's
        //    observation step must price against the state the queries
        //    actually ran on, so drifting rounds snapshot the catalog and
        //    statistics first — overlay clones over the shared `Arc`'d
        //    base, a few cheap `Vec`s, never the data.
        self.obs.span_enter("round.drift");
        let pre_drift = self
            .drift
            .as_ref()
            .map(|_| (self.catalog.clone(), self.stats.clone()));
        let maintenance = self.apply_drift(round);
        self.sim_now += maintenance;
        self.obs.set_sim_now(self.sim_now);
        self.obs.span_exit("round.drift");

        // 4. Observation: feed actual run-time statistics back, with
        //    execution-time catalog/stats access (kills the one-round-late
        //    shadow-pricing bias guarded sessions used to carry).
        let (exec_catalog, exec_stats) = match &pre_drift {
            Some((catalog, stats)) => (catalog, stats),
            None => (&self.catalog, &self.stats),
        };
        let mut ctx = RoundContext {
            catalog: exec_catalog,
            stats: exec_stats,
            whatif: &mut self.whatif,
        };
        self.obs.span_enter("round.observe");
        self.advisor.after_round(&mut ctx, &queries, &executions);
        self.obs.span_exit("round.observe");
        self.obs.span_exit("session.round");
        let whatif_after = self.whatif.stats();
        let bandit_after = self.advisor.bandit_counters();

        let record = RoundRecord {
            round: round + 1,
            recommendation: advisor_cost.recommendation,
            creation: advisor_cost.creation,
            execution,
            maintenance,
            plan_cache_hits: cache_after.hits - cache_before.hits,
            plan_cache_misses: cache_after.misses - cache_before.misses,
            whatif_hits: whatif_after.hits - whatif_before.hits,
            whatif_misses: whatif_after.misses - whatif_before.misses,
            shift_intensity,
            bandit_refreshes: bandit_after.0 - bandit_before.0,
            bandit_decays: bandit_after.1 - bandit_before.1,
        };
        self.records.push(record);
        self.next_round += 1;

        let event = RoundEvent {
            round: record.round,
            rounds_total: self.rounds_total(),
            record,
            queries: queries.len(),
            index_count: self.catalog.all_indexes().count(),
            index_bytes: self.catalog.live_index_bytes(),
            stats_staleness: self.stats.max_staleness(),
            safety: self.safety.as_ref().map(|ledger| ledger.snapshot()),
        };
        observer(&event);
        Ok(Some(record))
    }

    /// Run one streaming observation window: recommend under the caller's
    /// degrade `mode`, execute one bound instance per distinct arriving
    /// template, scale by arrival count, and observe. Data drift and
    /// workload shifts apply only on `round_boundary` windows — exactly
    /// where the fixed-round model applies them — so a
    /// [`ArrivalProcess::RoundBatch`] process (every window one whole
    /// round, unit counts) reproduces [`step`](Self::step)'s trajectory
    /// bit for bit. Returns the window's record (its `round` field holds
    /// the 1-based *window* index) plus the advisory wall-clock span of
    /// the recommend step when `timer` is enabled. Drive through
    /// [`StreamingSession`](crate::StreamingSession) rather than directly.
    pub fn step_window(
        &mut self,
        process: ArrivalProcess,
        window: &ArrivalWindow,
        mode: &WindowMode,
        timer: &mut BudgetTimer,
    ) -> DbResult<(RoundRecord, Option<f64>)> {
        let round = window.round;
        let sequencer = WorkloadSequencer::with_order(
            &self.benchmark,
            self.workload,
            self.seed,
            &self.template_order,
        );
        let schedule = ArrivalSchedule::new(sequencer, process, self.seed);
        let queries = schedule.window_queries(&self.catalog, window)?;
        let counts: Vec<u64> = window.arrivals.iter().map(|&(_, c)| c).collect();

        self.obs.set_sim_now(self.sim_now);
        self.obs.span_enter("session.window");

        // 1. Recommendation, under the window's degrade mode. The timer is
        //    advisory wall-clock telemetry: reported, never branched on —
        //    the degrade ladder itself runs on simulated cost.
        self.obs.span_enter("round.advise");
        let whatif_before = self.whatif.stats();
        let bandit_before = self.advisor.bandit_counters();
        timer.mark();
        self.advisor.begin_window(mode);
        let advisor_cost =
            self.advisor
                .before_round(round, &mut self.catalog, &self.stats, &mut self.whatif);
        let wall_recommend_s = timer.elapsed_secs();
        self.sim_now += advisor_cost.recommendation + advisor_cost.creation;
        self.obs.set_sim_now(self.sim_now);
        self.obs.span_exit("round.advise");

        // 2. Execution: plan and run each distinct template's instance
        //    once, then scale the observed statistics by its arrival count.
        self.obs.span_enter("round.execute");
        let cache_before = self.plan_cache.stats();
        let executions: Vec<QueryExecution> = {
            let catalog = &self.catalog;
            let stats = &self.stats;
            let backend = &mut self.backend;
            let plan_cache = &mut self.plan_cache;
            let ctx = PlannerContext::from_catalog(catalog, stats, &self.cost);
            let planner = Planner::new(&ctx);
            queries
                .iter()
                .zip(&counts)
                .map(|(q, &count)| {
                    let plan = plan_cache.get_or_plan(catalog, stats, &planner, q);
                    scale_execution(&backend.execute(catalog, q, plan), count)
                })
                .collect()
        };
        let cache_after = self.plan_cache.stats();
        let execution: SimSeconds = executions.iter().map(|e| e.total).sum();
        self.sim_now += execution;
        self.obs.set_sim_now(self.sim_now);
        self.obs.span_exit("round.execute");

        let shift_intensity = self.note_shift_intensity(&queries);

        // 3. Data change, at round boundaries only (mid-round windows are
        //    pure observation).
        let boundary = window.round_boundary;
        self.obs.span_enter("round.drift");
        let pre_drift =
            (boundary && self.drift.is_some()).then(|| (self.catalog.clone(), self.stats.clone()));
        let maintenance = if boundary {
            self.apply_drift(round)
        } else {
            SimSeconds::ZERO
        };
        self.sim_now += maintenance;
        self.obs.set_sim_now(self.sim_now);
        self.obs.span_exit("round.drift");

        // 4. Observation. Guarded sessions get the window's arrival counts
        //    first, so the ledger closes against weighted shadow prices.
        if let Some(ledger) = &self.safety {
            ledger.note_window_weights(counts.iter().map(|&c| c as f64).collect());
        }
        let (exec_catalog, exec_stats) = match &pre_drift {
            Some((catalog, stats)) => (catalog, stats),
            None => (&self.catalog, &self.stats),
        };
        let mut ctx = RoundContext {
            catalog: exec_catalog,
            stats: exec_stats,
            whatif: &mut self.whatif,
        };
        self.obs.span_enter("round.observe");
        self.advisor.after_round(&mut ctx, &queries, &executions);
        self.obs.span_exit("round.observe");
        self.obs.span_exit("session.window");
        let whatif_after = self.whatif.stats();
        let bandit_after = self.advisor.bandit_counters();

        let record = RoundRecord {
            round: window.window + 1,
            recommendation: advisor_cost.recommendation,
            creation: advisor_cost.creation,
            execution,
            maintenance,
            plan_cache_hits: cache_after.hits - cache_before.hits,
            plan_cache_misses: cache_after.misses - cache_before.misses,
            whatif_hits: whatif_after.hits - whatif_before.hits,
            whatif_misses: whatif_after.misses - whatif_before.misses,
            shift_intensity,
            bandit_refreshes: bandit_after.0 - bandit_before.0,
            bandit_decays: bandit_after.1 - bandit_before.1,
        };
        self.records.push(record);
        if boundary {
            self.next_round = round + 1;
        }
        Ok((record, wall_recommend_s))
    }

    /// Shift intensity of one executed batch (the fraction of its distinct
    /// templates not seen in any earlier batch), updating the seen set.
    fn note_shift_intensity(&mut self, queries: &[Query]) -> f64 {
        let round_templates: HashSet<TemplateId> = queries.iter().map(|q| q.template).collect();
        let new = round_templates
            .iter()
            .filter(|t| !self.seen_templates.contains(*t))
            .count();
        self.seen_templates.extend(&round_templates);
        if round_templates.is_empty() {
            0.0
        } else {
            new as f64 / round_templates.len() as f64
        }
    }

    /// Apply round `round`'s data change (if any): mutate the catalog's
    /// live sizes, price per-index maintenance through the cost model,
    /// track statistics staleness, and report the change to the advisor
    /// (before `after_round`, so maintenance enters this round's rewards).
    /// Returns the total maintenance time charged.
    fn apply_drift(&mut self, round: usize) -> SimSeconds {
        let Some(drift) = &self.drift else {
            return SimSeconds::ZERO;
        };
        let deltas = drift.deltas_for_round(&self.catalog, self.seed, round);
        if deltas.is_empty() {
            return SimSeconds::ZERO;
        }
        let mut change = DataChange::default();
        let mut total = SimSeconds::ZERO;
        for d in &deltas {
            // The catalog caps deletes/updates at the rows that exist;
            // maintenance and staleness are billed on the *applied* delta
            // only — nobody pays for rows that were never touched.
            let applied = self
                .catalog
                .apply_drift(d.table, d.inserted, d.updated, d.deleted);
            if applied.rows_changed() == 0 {
                continue;
            }
            self.stats.note_drift(d.table, applied.rows_changed());
            change.table_changes.push(TableChange {
                table: d.table,
                inserted: applied.inserted,
                updated: applied.updated,
                deleted: applied.deleted,
            });
            for ix in self.catalog.indexes_on(d.table) {
                // Live leaf level: the index's creation-time size plus the
                // growth it absorbed since — what this batch dirties.
                let leaf_pages = self.catalog.index_live_leaf_pages(ix.id());
                let cost = self.cost.index_maintenance(
                    applied.inserted,
                    applied.updated,
                    applied.deleted,
                    leaf_pages,
                );
                change.index_maintenance.push((ix.id(), cost));
                total += cost;
            }
        }
        if change.is_empty() {
            return SimSeconds::ZERO;
        }
        self.stats
            .refresh_stale(&self.catalog, STATS_REFRESH_STALENESS);
        self.advisor.on_data_change(&change);
        total
    }

    /// Run every remaining round and return the complete [`RunResult`]
    /// (the accumulated records move into the result — no clone).
    pub fn run(&mut self) -> DbResult<RunResult> {
        self.run_with(&mut |_| {})
    }

    /// [`run`](Self::run), emitting a [`RoundEvent`] per round.
    ///
    /// Finishing hands the round history over by value: after this returns,
    /// [`records`](Self::records) is empty and the returned [`RunResult`]
    /// owns the rounds. Catalog/stats accessors remain usable.
    pub fn run_with(&mut self, observer: &mut dyn FnMut(&RoundEvent)) -> DbResult<RunResult> {
        while self.step_with(observer)?.is_some() {}
        let rounds = std::mem::take(&mut self.records);
        Ok(self.make_result(rounds))
    }

    /// The guardrail ledger, when this session runs safeguarded.
    pub fn safety_ledger(&self) -> Option<&SafetyLedger> {
        self.safety.as_ref()
    }

    /// Finish a step-driven session: consume it and hand the accumulated
    /// records over by value (no clone). The counterpart of
    /// [`run`](Self::run) for callers driving rounds via
    /// [`step`](Self::step). Every round's guardrail accounting closes in
    /// the round's own observation step, so no finalize pass is needed.
    pub fn into_result(mut self) -> RunResult {
        let rounds = std::mem::take(&mut self.records);
        self.make_result(rounds)
    }

    /// Snapshot of the run's accounting so far (clones the records —
    /// mid-run introspection; finished runs should use the value returned
    /// by [`run`](Self::run) or [`into_result`](Self::into_result)).
    pub fn result(&self) -> RunResult {
        self.make_result(self.records.clone())
    }

    fn make_result(&self, rounds: Vec<RoundRecord>) -> RunResult {
        RunResult {
            tuner: self.advisor.name().to_string(),
            benchmark: self.benchmark.name.to_string(),
            workload: self.scenario_label(),
            rounds,
            safety: self.safety.as_ref().map(|ledger| ledger.report()),
        }
    }

    /// Running plan-cache totals (hits/misses/invalidations).
    pub fn plan_cache_stats(&self) -> dba_optimizer::PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Running what-if service totals (hits/misses/invalidations/
    /// recompilations) across everything the session's advisor costed.
    pub fn whatif_stats(&self) -> dba_optimizer::WhatIfStats {
        self.whatif.stats()
    }

    /// Plan (without executing) the queries of `round` against the current
    /// physical design — diagnostic introspection for tools that explain
    /// what the optimiser would do.
    pub fn plan_round(&self, round: usize) -> DbResult<Vec<(Query, Plan)>> {
        let sequencer = self.sequencer();
        let queries = sequencer.round_queries(&self.catalog, round)?;
        let ctx = PlannerContext::from_catalog(&self.catalog, &self.stats, &self.cost);
        let planner = Planner::new(&ctx);
        Ok(queries
            .into_iter()
            .map(|q| {
                let plan = planner.plan(&q);
                (q, plan)
            })
            .collect())
    }
}

/// Scale one executed instance to `count` identical arrivals: every
/// simulated-time field and cardinality multiplies, so reward shaping and
/// regret accounting see the window's aggregate workload while the engine
/// executed the instance once. `count == 1` returns the execution
/// untouched — the `RoundBatch` path stays bit-exact by construction.
fn scale_execution(e: &QueryExecution, count: u64) -> QueryExecution {
    if count == 1 {
        return e.clone();
    }
    let k = count as f64;
    QueryExecution {
        query: e.query,
        total: e.total * k,
        accesses: e
            .accesses
            .iter()
            .map(|a| dba_engine::AccessStats {
                table: a.table,
                index: a.index,
                time: a.time * k,
                rows_out: a.rows_out * count,
                is_full_scan: a.is_full_scan,
            })
            .collect(),
        join_time: e.join_time * k,
        agg_time: e.agg_time * k,
        result_rows: e.result_rows * count,
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{SessionBuilder, TunerKind};
    use dba_workloads::{ssb::ssb, DataDrift, DriftRates, WorkloadKind};

    /// The whole substrate crosses threads: shared bases are `Sync`, built
    /// sessions (boxed advisors included) are `Send` — what the parallel
    /// suite runner in `dba-bench` relies on.
    #[test]
    fn substrate_is_send_and_sessions_are_sendable() {
        fn send_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_sync::<dba_storage::BaseData>();
        send_sync::<dba_storage::Catalog>();
        send_sync::<dba_optimizer::StatsCatalog>();
        send_sync::<dba_workloads::Benchmark>();
        send::<crate::DynTuningSession>();
        send::<crate::RunResult>();
    }

    /// Static workload, no tuner activity: round 1 plans every template,
    /// every later round is pure cache hits — replans are skipped.
    #[test]
    fn unchanged_rounds_hit_the_plan_cache() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 5 })
            .tuner(TunerKind::NoIndex)
            .seed(7)
            .build()
            .unwrap();
        let result = session.run().unwrap();
        let templates = 13; // SSB template count; static rounds run all.
        assert_eq!(result.rounds[0].plan_cache_misses, templates);
        assert_eq!(result.rounds[0].plan_cache_hits, 0);
        for r in &result.rounds[1..] {
            assert_eq!(
                r.plan_cache_hits, templates,
                "round {}: unchanged config must be served from cache",
                r.round
            );
            assert_eq!(r.plan_cache_misses, 0);
        }
        assert_eq!(session.plan_cache_stats().invalidations, 0);
        assert!(result.plan_cache_hit_rate() > 0.7);
    }

    /// Index creates/drops force replans: whenever MAB changes the
    /// configuration, the touched tables' templates miss; once the
    /// configuration stabilises, rounds hit again.
    #[test]
    fn index_changes_invalidate_cached_plans() {
        let mut events = Vec::new();
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 8 })
            .tuner(TunerKind::Mab)
            .seed(7)
            .build()
            .unwrap();
        let result = session
            .run_with(&mut |e| events.push((e.record, e.index_count)))
            .unwrap();
        // MAB materialises something within the run, so at least one round
        // after the first must replan (invalidation), and converged rounds
        // must hit.
        assert!(session.plan_cache_stats().invalidations > 0);
        assert!(result.total_plan_cache_hits() > 0);
        // A round that changed the configuration (index count moved vs the
        // previous round) must carry misses on the affected templates.
        let changed_round = events.windows(2).find(|w| w[1].1 != w[0].1).map(|w| w[1].0);
        if let Some(record) = changed_round {
            assert!(
                record.plan_cache_misses > 0,
                "round {} changed the config but replanned nothing",
                record.round
            );
        }
    }

    /// Applied drift forces replans on templates over drifted tables, and
    /// stats auto-refreshes (version bumps) do the same.
    #[test]
    fn drift_invalidates_cached_plans() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 6 })
            .tuner(TunerKind::NoIndex)
            .data_drift(DataDrift::uniform(DriftRates::new(0.05, 0.0, 0.0)))
            .seed(7)
            .build()
            .unwrap();
        let result = session.run().unwrap();
        // Every table drifts every round, so every round replans every
        // template: zero hits, and invalidations counted from round 2 on.
        assert_eq!(result.total_plan_cache_hits(), 0);
        assert!(session.plan_cache_stats().invalidations > 0);
        for r in &result.rounds {
            assert!(r.plan_cache_misses > 0);
        }
    }

    #[test]
    fn step_accounting_sums_to_run_result_totals() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 5 })
            .tuner(TunerKind::Mab)
            .seed(7)
            .build()
            .unwrap();

        let (mut rec, mut cre, mut exe) = (0.0, 0.0, 0.0);
        let mut steps = 0;
        while let Some(record) = session.step().unwrap() {
            steps += 1;
            assert_eq!(record.round, steps, "rounds are 1-based and in order");
            rec += record.recommendation.secs();
            cre += record.creation.secs();
            exe += record.execution.secs();
            assert_eq!(session.rounds_done(), steps);
        }
        assert_eq!(steps, 5);
        assert!(session.is_finished());
        // Stepping past the end is a no-op.
        assert!(session.step().unwrap().is_none());

        // Step-driven finish: the records move into the result, no clone.
        let result = session.into_result();
        assert_eq!(result.rounds.len(), 5);
        assert!((result.total_recommendation().secs() - rec).abs() < 1e-9);
        assert!((result.total_creation().secs() - cre).abs() < 1e-9);
        assert!((result.total_execution().secs() - exe).abs() < 1e-9);
        assert!((result.total().secs() - (rec + cre + exe)).abs() < 1e-9);
    }

    #[test]
    fn step_and_run_agree() {
        let build = || {
            SessionBuilder::new()
                .benchmark(ssb(0.02))
                .workload(WorkloadKind::Static { rounds: 4 })
                .tuner(TunerKind::Mab)
                .seed(11)
                .build()
                .unwrap()
        };
        let run_result = build().run().unwrap();
        let mut stepped = build();
        while stepped.step().unwrap().is_some() {}
        let step_result = stepped.into_result();
        assert_eq!(run_result.rounds.len(), step_result.rounds.len());
        for (a, b) in run_result.rounds.iter().zip(&step_result.rounds) {
            assert_eq!(a.execution.secs(), b.execution.secs());
            assert_eq!(a.creation.secs(), b.creation.secs());
            assert_eq!(a.recommendation.secs(), b.recommendation.secs());
        }
    }

    #[test]
    fn run_resumes_after_manual_steps() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 4 })
            .tuner(TunerKind::NoIndex)
            .build()
            .unwrap();
        session.step().unwrap();
        session.step().unwrap();
        let result = session.run().unwrap();
        assert_eq!(result.rounds.len(), 4, "run() completes remaining rounds");
    }

    #[test]
    fn drifted_rounds_charge_maintenance_to_materialised_indexes() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 8 })
            .tuner(TunerKind::Mab)
            .data_drift(DataDrift::uniform(DriftRates::new(0.02, 0.01, 0.01)))
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(session.scenario_label(), "static+drift");

        let mut saw_maintenance = false;
        let result = session
            .run_with(&mut |event| {
                if event.index_count > 0 {
                    assert!(
                        event.record.maintenance.secs() > 0.0,
                        "round {}: materialised config under drift must pay \
                         maintenance",
                        event.round
                    );
                    saw_maintenance = true;
                }
                assert!(event.record.maintenance.secs().is_finite());
            })
            .unwrap();
        assert!(saw_maintenance, "MAB materialises within 8 rounds");
        assert!(result.total_maintenance().secs() > 0.0);
        assert_eq!(result.workload, "static+drift");
        // Data actually grew.
        assert!(session.catalog().has_drift());
    }

    #[test]
    fn read_only_sessions_never_charge_maintenance() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 4 })
            .tuner(TunerKind::Mab)
            .seed(7)
            .build()
            .unwrap();
        let result = session.run().unwrap();
        assert_eq!(result.total_maintenance().secs(), 0.0);
        assert_eq!(result.workload, "static");
        assert!(!session.catalog().has_drift());
    }

    #[test]
    fn stats_staleness_surfaces_and_auto_refreshes() {
        // Churn fast enough to cross the refresh threshold mid-session.
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 10 })
            .tuner(TunerKind::NoIndex)
            .data_drift(DataDrift::uniform(DriftRates::new(0.10, 0.0, 0.02)))
            .seed(7)
            .build()
            .unwrap();
        let mut staleness_went_up = false;
        let mut refreshed = false;
        let mut prev = 0.0;
        session
            .run_with(&mut |event| {
                assert!(
                    event.stats_staleness < crate::session::STATS_REFRESH_STALENESS,
                    "staleness must be capped by auto-refresh"
                );
                if event.stats_staleness > prev {
                    staleness_went_up = true;
                }
                if event.stats_staleness < prev {
                    refreshed = true;
                }
                prev = event.stats_staleness;
            })
            .unwrap();
        assert!(staleness_went_up, "drift must accumulate staleness");
        assert!(refreshed, "threshold crossing must trigger a refresh");
    }

    /// Shift intensity lands in the records: everything is new in round 1,
    /// nothing afterwards on a static workload, and every group boundary
    /// of a shifting workload spikes back up.
    #[test]
    fn shift_intensity_is_recorded_per_round() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 4 })
            .tuner(TunerKind::NoIndex)
            .seed(7)
            .build()
            .unwrap();
        let result = session.run().unwrap();
        assert_eq!(result.rounds[0].shift_intensity, 1.0);
        for r in &result.rounds[1..] {
            assert_eq!(r.shift_intensity, 0.0, "static repeats are shift-free");
        }

        let mut shifting = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Shifting {
                groups: 3,
                rounds_per_group: 2,
            })
            .tuner(TunerKind::NoIndex)
            .seed(7)
            .build()
            .unwrap();
        let result = shifting.run().unwrap();
        // Group boundaries at rounds 1, 3, 5 (1-based): all-new templates.
        for boundary in [0, 2, 4] {
            assert_eq!(
                result.rounds[boundary].shift_intensity,
                1.0,
                "round {} starts a new group",
                boundary + 1
            );
        }
        for repeat in [1, 3, 5] {
            assert_eq!(result.rounds[repeat].shift_intensity, 0.0);
        }
    }

    /// A safeguarded session: the advisor reports as `<tuner>+guard`, the
    /// run result carries a complete safety trajectory, and the per-round
    /// events expose guardrail snapshots.
    #[test]
    fn safeguarded_session_reports_safety_trajectory() {
        use dba_safety::SafetyConfig;
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 6 })
            .tuner(TunerKind::Mab)
            .safeguard(SafetyConfig::default())
            .seed(7)
            .build()
            .unwrap();
        let mut snapshots = 0;
        let result = session
            .run_with(&mut |event| {
                let snap = event.safety.expect("guarded events carry snapshots");
                assert!(snap.cum_regret_s.is_finite());
                snapshots += 1;
            })
            .unwrap();
        assert_eq!(snapshots, 6);
        assert_eq!(result.tuner, "MAB+guard");
        let safety = result.safety.expect("guarded runs report safety");
        assert_eq!(safety.rounds.len(), 6, "finalize closes the last round");
        for (i, r) in safety.rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert!(r.shadow_noindex_s > 0.0, "every round has a shadow price");
            assert!(r.actual_s.is_finite() && r.regret_s.is_finite());
        }
        // MAB on a healthy static workload must not trip the guardrail.
        assert_eq!(safety.throttled_rounds, 0);
        assert_eq!(safety.rollbacks, 0);

        // Unguarded sessions report nothing.
        let mut plain = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 2 })
            .tuner(TunerKind::Mab)
            .seed(7)
            .build()
            .unwrap();
        let plain_result = plain.run().unwrap();
        assert!(plain_result.safety.is_none());
        assert_eq!(plain_result.tuner, "MAB");
    }

    /// The guarded/unguarded sweep: every workload kind × drift × tuner
    /// combination completes without panicking, with finite records, and
    /// guarded runs always produce a complete, finite safety report.
    #[test]
    fn guarded_sweep_across_scenarios_is_panic_free_and_finite() {
        use dba_safety::SafetyConfig;
        let bench = ssb(0.02);
        let scenarios: Vec<(WorkloadKind, Option<DataDrift>)> = vec![
            (WorkloadKind::Static { rounds: 4 }, None),
            (
                WorkloadKind::Shifting {
                    groups: 2,
                    rounds_per_group: 2,
                },
                None,
            ),
            (
                WorkloadKind::Random {
                    rounds: 4,
                    queries_per_round: 5,
                },
                None,
            ),
            (
                WorkloadKind::Static { rounds: 4 },
                Some(DataDrift::uniform(DriftRates::new(0.05, 0.02, 0.02))),
            ),
        ];
        for (workload, drift) in &scenarios {
            for guarded in [false, true] {
                for tuner in [TunerKind::Mab, TunerKind::Ddqn { seed: 3 }] {
                    let mut builder = SessionBuilder::new()
                        .benchmark(bench.clone())
                        .workload(*workload)
                        .tuner(tuner)
                        .seed(7);
                    if let Some(drift) = drift {
                        builder = builder.data_drift(drift.clone());
                    }
                    if guarded {
                        builder = builder.safeguard(SafetyConfig::default());
                    }
                    let mut session = builder.build().unwrap();
                    let label =
                        format!("{}/{:?}/guarded={guarded}", session.scenario_label(), tuner);
                    let result = session.run().unwrap_or_else(|e| panic!("{label}: {e}"));
                    assert_eq!(result.rounds.len(), workload.rounds(), "{label}");
                    for r in &result.rounds {
                        for v in [
                            r.recommendation.secs(),
                            r.creation.secs(),
                            r.execution.secs(),
                            r.maintenance.secs(),
                            r.shift_intensity,
                        ] {
                            assert!(v.is_finite(), "{label}: non-finite record");
                        }
                    }
                    match result.safety {
                        Some(safety) if guarded => {
                            assert_eq!(safety.rounds.len(), workload.rounds(), "{label}");
                            for s in &safety.rounds {
                                for v in [
                                    s.shadow_noindex_s,
                                    s.shadow_prev_s,
                                    s.actual_s,
                                    s.regret_s,
                                    s.cum_regret_s,
                                ] {
                                    assert!(v.is_finite(), "{label}: non-finite safety");
                                }
                            }
                        }
                        None if !guarded => {}
                        other => panic!("{label}: unexpected safety report {other:?}"),
                    }
                }
            }
        }
    }

    /// The shared what-if service: a guarded session's shadow pricing
    /// costs every round's workload hypothetically, and repeat rounds of
    /// an unchanged workload are served from the memo — counted in the
    /// round records. Tuners that never cost hypothetically leave the
    /// counters at zero.
    #[test]
    fn guarded_sessions_hit_the_whatif_memo() {
        use dba_safety::SafetyConfig;
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 6 })
            .tuner(TunerKind::Mab)
            .safeguard(SafetyConfig::default())
            .seed(7)
            .build()
            .unwrap();
        let result = session.run().unwrap();
        assert!(
            result.total_whatif_misses() > 0,
            "shadow pricing costs hypothetically every round"
        );
        assert!(
            result.total_whatif_hits() > 0,
            "repeat rounds must be served from the what-if memo"
        );
        assert!(result.whatif_hit_rate() > 0.0);
        let svc = session.whatif_stats();
        assert_eq!(
            svc.hits,
            result.total_whatif_hits(),
            "record deltas must sum to the service totals"
        );

        // A NoIndex session never costs hypothetically.
        let mut plain = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 3 })
            .tuner(TunerKind::NoIndex)
            .seed(7)
            .build()
            .unwrap();
        let plain_result = plain.run().unwrap();
        assert_eq!(plain_result.total_whatif_hits(), 0);
        assert_eq!(plain_result.total_whatif_misses(), 0);
    }

    #[test]
    fn events_report_materialised_state() {
        let mut session = SessionBuilder::new()
            .benchmark(ssb(0.02))
            .workload(WorkloadKind::Static { rounds: 5 })
            .tuner(TunerKind::Mab)
            .seed(7)
            .build()
            .unwrap();
        let mut last_bytes = 0;
        let mut saw_indexes = false;
        session
            .run_with(&mut |event| {
                if event.index_count > 0 {
                    saw_indexes = true;
                    assert!(event.index_bytes > 0);
                }
                last_bytes = event.index_bytes;
            })
            .unwrap();
        assert!(saw_indexes, "MAB should materialise something in 5 rounds");
        assert_eq!(last_bytes, session.catalog().live_index_bytes());
        assert!(last_bytes <= session.memory_budget_bytes());
    }
}
