//! Per-round and per-run accounting, split the way the paper's Table I
//! reports it.

use dba_common::SimSeconds;
use dba_safety::SafetyReport;

/// One round's time breakdown.
#[derive(Debug, Clone, Copy)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    pub recommendation: SimSeconds,
    pub creation: SimSeconds,
    pub execution: SimSeconds,
    /// Index maintenance paid for the round's data change (zero on
    /// read-only rounds — the paper's original setting).
    pub maintenance: SimSeconds,
    /// Queries this round whose plan came from the session's plan cache
    /// (replans skipped because nothing their tables depend on moved).
    pub plan_cache_hits: u64,
    /// Queries this round that had to be planned (cold template, or an
    /// index/stats/drift change invalidated the cached plan).
    pub plan_cache_misses: u64,
    /// What-if costings this round served from the session's shared
    /// [`WhatIfService`](dba_optimizer::WhatIfService) memo (hypothetical
    /// replans skipped — guardrail shadow pricing, rollback assessment and
    /// PDTool scoring all count here).
    pub whatif_hits: u64,
    /// What-if costings this round that had to plan a hypothetical
    /// configuration fresh.
    pub whatif_misses: u64,
    /// Workload-shift intensity of the round: the fraction of this
    /// round's templates that were previously unseen (the query store's
    /// definition) — what makes safety throttling decisions auditable
    /// alongside the shift that provoked them.
    pub shift_intensity: f64,
    /// Bandit scatter-matrix re-inversions performed this round (zero for
    /// advisors without a bandit). Sherman–Morrison refreshes are the
    /// costliest maintenance step on the streaming hot path, so records
    /// carry them next to the plan/what-if cache counters.
    pub bandit_refreshes: u64,
    /// Bandit forgetting (decay) events this round.
    pub bandit_decays: u64,
}

impl RoundRecord {
    pub fn total(&self) -> SimSeconds {
        self.recommendation + self.creation + self.execution + self.maintenance
    }
}

/// A complete run of one tuner over one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub tuner: String,
    pub benchmark: String,
    pub workload: String,
    pub rounds: Vec<RoundRecord>,
    /// Guardrail outcome (vetoes, rollbacks, throttled rounds, regret
    /// trajectory); present only for sessions built with
    /// [`SessionBuilder::safeguard`](crate::SessionBuilder::safeguard).
    pub safety: Option<SafetyReport>,
}

impl RunResult {
    pub fn total_recommendation(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.recommendation).sum()
    }

    pub fn total_creation(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.creation).sum()
    }

    pub fn total_execution(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.execution).sum()
    }

    pub fn total_maintenance(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.maintenance).sum()
    }

    pub fn total(&self) -> SimSeconds {
        self.total_recommendation()
            + self.total_creation()
            + self.total_execution()
            + self.total_maintenance()
    }

    /// Execution time of the final round (the paper's converged-quality
    /// metric, §V-B1 "What is the best search strategy?").
    pub fn final_round_execution(&self) -> SimSeconds {
        self.rounds
            .last()
            .map(|r| r.execution)
            .unwrap_or(SimSeconds::ZERO)
    }

    /// Plans served from the session plan cache over the whole run.
    pub fn total_plan_cache_hits(&self) -> u64 {
        self.rounds.iter().map(|r| r.plan_cache_hits).sum()
    }

    /// Plans that had to be produced by the planner over the whole run.
    pub fn total_plan_cache_misses(&self) -> u64 {
        self.rounds.iter().map(|r| r.plan_cache_misses).sum()
    }

    /// Fraction of plan lookups answered from the cache (0 when the run
    /// planned nothing).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.total_plan_cache_hits() + self.total_plan_cache_misses();
        if total == 0 {
            return 0.0;
        }
        self.total_plan_cache_hits() as f64 / total as f64
    }

    /// Bandit scatter re-inversions across the run (zero for non-bandit
    /// tuners).
    pub fn total_bandit_refreshes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bandit_refreshes).sum()
    }

    /// Bandit forgetting (decay) events across the run.
    pub fn total_bandit_decays(&self) -> u64 {
        self.rounds.iter().map(|r| r.bandit_decays).sum()
    }

    /// What-if costings served from the shared service memo over the run.
    pub fn total_whatif_hits(&self) -> u64 {
        self.rounds.iter().map(|r| r.whatif_hits).sum()
    }

    /// What-if costings that planned a hypothetical configuration fresh.
    pub fn total_whatif_misses(&self) -> u64 {
        self.rounds.iter().map(|r| r.whatif_misses).sum()
    }

    /// Fraction of what-if costings answered from the memo (0 when the
    /// run costed nothing hypothetically).
    pub fn whatif_hit_rate(&self) -> f64 {
        let total = self.total_whatif_hits() + self.total_whatif_misses();
        if total == 0 {
            return 0.0;
        }
        self.total_whatif_hits() as f64 / total as f64
    }
}
