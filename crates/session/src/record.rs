//! Per-round and per-run accounting, split the way the paper's Table I
//! reports it.

use dba_common::SimSeconds;

/// One round's time breakdown.
#[derive(Debug, Clone, Copy)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    pub recommendation: SimSeconds,
    pub creation: SimSeconds,
    pub execution: SimSeconds,
    /// Index maintenance paid for the round's data change (zero on
    /// read-only rounds — the paper's original setting).
    pub maintenance: SimSeconds,
}

impl RoundRecord {
    pub fn total(&self) -> SimSeconds {
        self.recommendation + self.creation + self.execution + self.maintenance
    }
}

/// A complete run of one tuner over one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub tuner: String,
    pub benchmark: String,
    pub workload: String,
    pub rounds: Vec<RoundRecord>,
}

impl RunResult {
    pub fn total_recommendation(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.recommendation).sum()
    }

    pub fn total_creation(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.creation).sum()
    }

    pub fn total_execution(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.execution).sum()
    }

    pub fn total_maintenance(&self) -> SimSeconds {
        self.rounds.iter().map(|r| r.maintenance).sum()
    }

    pub fn total(&self) -> SimSeconds {
        self.total_recommendation()
            + self.total_creation()
            + self.total_execution()
            + self.total_maintenance()
    }

    /// Execution time of the final round (the paper's converged-quality
    /// metric, §V-B1 "What is the best search strategy?").
    pub fn final_round_execution(&self) -> SimSeconds {
        self.rounds
            .last()
            .map(|r| r.execution)
            .unwrap_or(SimSeconds::ZERO)
    }
}
