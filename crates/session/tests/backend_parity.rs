//! Cross-backend contracts at the session level.
//!
//! The `Measured` backend (crate `dba-backend`) must agree with the
//! `Simulated` one bit-exactly on every logical field — `result_rows`,
//! `indexes_used`, per-access `rows_out` — across every scenario axis the
//! harness drives, and must be fully deterministic once its clock is
//! injected. The lock-step [`DualBackend`](dba_backend::DualBackend)
//! enforces per-query parity internally (it panics on the first
//! divergence), so the sweep below both exercises that assertion over
//! whole tuning trajectories and checks the stronger session-level
//! property: the dual run's *trajectory* is bit-identical to a pure
//! simulated run — the measured path rides along without perturbing a
//! single simulated number.

use dba_backend::{dual, measured_with_clock, scripted};
use dba_engine::CostModel;
use dba_optimizer::StatsCatalog;
use dba_session::{DataDrift, DriftRates, RunResult, SessionBuilder, TunerKind};
use dba_storage::Catalog;
use dba_workloads::{ssb::ssb, Benchmark, WorkloadKind};

fn scenarios() -> Vec<(&'static str, WorkloadKind, Option<DataDrift>)> {
    vec![
        ("static", WorkloadKind::Static { rounds: 4 }, None),
        (
            "shifting",
            WorkloadKind::Shifting {
                groups: 2,
                rounds_per_group: 2,
            },
            None,
        ),
        (
            "random",
            WorkloadKind::Random {
                rounds: 4,
                queries_per_round: 5,
            },
            None,
        ),
        (
            "drift",
            WorkloadKind::Static { rounds: 4 },
            Some(DataDrift::uniform(DriftRates::new(0.05, 0.02, 0.02))),
        ),
    ]
}

#[allow(clippy::too_many_arguments)]
fn run(
    bench: &Benchmark,
    base: &Catalog,
    stats: &StatsCatalog,
    workload: WorkloadKind,
    drift: Option<&DataDrift>,
    budget: Option<u64>,
    backend: Option<Box<dyn dba_engine::ExecutionBackend>>,
    label: &str,
) -> RunResult {
    let mut builder = SessionBuilder::new()
        .benchmark(bench.clone())
        .shared_data(base)
        .shared_stats(stats)
        .workload(workload)
        .tuner(TunerKind::Mab)
        .seed(7);
    if let Some(drift) = drift {
        builder = builder.data_drift(drift.clone());
    }
    if let Some(bytes) = budget {
        builder = builder.memory_budget_bytes(bytes);
    }
    if let Some(backend) = backend {
        builder = builder.backend_boxed(backend);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("{label}: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("{label}: {e}"))
}

fn assert_bit_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.rounds.len(), b.rounds.len(), "{label}: round count");
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        for (part, x, y) in [
            ("recommendation", ra.recommendation, rb.recommendation),
            ("creation", ra.creation, rb.creation),
            ("execution", ra.execution, rb.execution),
            ("maintenance", ra.maintenance, rb.maintenance),
        ] {
            assert_eq!(
                x.secs().to_bits(),
                y.secs().to_bits(),
                "{label}: round {} {part} differs: {} vs {}",
                ra.round,
                x.secs(),
                y.secs()
            );
        }
        assert_eq!(ra.plan_cache_hits, rb.plan_cache_hits, "{label}: hits");
        assert_eq!(
            ra.plan_cache_misses, rb.plan_cache_misses,
            "{label}: misses"
        );
    }
}

/// The parity sweep: every scenario axis × {tight, unbounded} memory
/// budgets. A tight budget forces drops and rebuilds, so the measured
/// backend's B+Tree cache must track catalog index churn correctly; the
/// dual backend panics on the first logical divergence, and the resulting
/// trajectory must match the pure simulated run bit for bit.
#[test]
fn dual_backend_is_bit_exact_with_simulated_across_scenarios_and_budgets() {
    let bench = ssb(0.02);
    let base = bench.build_catalog(7).unwrap();
    let stats = StatsCatalog::build(&base);
    let budgets: [(&str, Option<u64>); 2] = [("tight", Some(512 * 1024)), ("unbounded", None)];
    for (scenario, workload, drift) in &scenarios() {
        for (budget_label, budget) in &budgets {
            let label = format!("{scenario}/{budget_label}");
            let sim = run(
                &bench,
                &base,
                &stats,
                *workload,
                drift.as_ref(),
                *budget,
                None,
                &label,
            );
            let dual_run = run(
                &bench,
                &base,
                &stats,
                *workload,
                drift.as_ref(),
                *budget,
                Some(dual(CostModel::paper_scale())),
                &label,
            );
            assert_bit_identical(&label, &sim, &dual_run);
        }
    }
}

/// With an injected (scripted) clock, the measured backend is a pure
/// function of its inputs: repeated runs are bit-identical, and running
/// several sessions concurrently — the suite fan-out the `DBA_THREADS`
/// knob controls — cannot perturb any of them.
#[test]
fn measured_backend_is_deterministic_under_scripted_clock() {
    let bench = ssb(0.02);
    let base = bench.build_catalog(7).unwrap();
    let stats = StatsCatalog::build(&base);
    let workload = WorkloadKind::Static { rounds: 3 };
    let run_measured = || {
        run(
            &bench,
            &base,
            &stats,
            workload,
            None,
            None,
            Some(measured_with_clock(
                CostModel::paper_scale(),
                scripted(1e-6),
            )),
            "measured",
        )
    };

    let first = run_measured();
    assert!(
        first.total().secs() > 0.0,
        "scripted clock must charge nonzero time"
    );
    let second = run_measured();
    assert_bit_identical("rerun", &first, &second);

    // Concurrent sessions (the fan-out path) see the same bits.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3).map(|_| scope.spawn(run_measured)).collect();
        for handle in handles {
            let parallel = handle.join().expect("measured session run panicked");
            assert_bit_identical("parallel", &first, &parallel);
        }
    });
}
