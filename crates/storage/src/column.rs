//! Typed columnar storage.
//!
//! All column data is held as `Vec<i64>` codes. The [`ColumnType`] records
//! how codes map back to logical values (plain integers, dates as day
//! numbers, fixed-point decimals, or dictionary-coded strings). Keeping a
//! single physical representation makes scans, comparisons and index key
//! ordering uniform and fast, mirroring dictionary/fixed-point encodings in
//! real columnar engines.

use serde::{Deserialize, Serialize};

/// Logical interpretation of a column's `i64` codes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Plain 64-bit integer (keys, quantities, flags).
    Int,
    /// Date stored as days since an epoch.
    Date,
    /// Fixed-point decimal with `scale` fractional digits (e.g. scale 2 →
    /// code 1234 means 12.34).
    Decimal { scale: u8 },
    /// Dictionary-coded string; codes index a (conceptual) dictionary of
    /// `cardinality` distinct strings. The dictionary itself is not
    /// materialised — workloads only compare codes.
    Dict { cardinality: u32 },
}

impl ColumnType {
    /// Logical width in bytes used for size accounting (what the value would
    /// occupy in a tuned on-disk layout, not our in-memory `i64`).
    pub fn logical_width(&self) -> u32 {
        match self {
            ColumnType::Int => 8,
            ColumnType::Date => 4,
            ColumnType::Decimal { .. } => 8,
            // Dictionary-coded strings store a code; charge a typical
            // string payload amortised into the column for realism.
            ColumnType::Dict { .. } => 16,
        }
    }
}

/// A single materialised column.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    ctype: ColumnType,
    data: Vec<i64>,
}

impl Column {
    pub fn new(name: impl Into<String>, ctype: ColumnType, data: Vec<i64>) -> Self {
        Column {
            name: name.into(),
            ctype,
            data,
        }
    }

    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    pub fn ctype(&self) -> &ColumnType {
        &self.ctype
    }

    /// Raw codes.
    #[inline]
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn value(&self, row: usize) -> i64 {
        self.data[row]
    }

    /// Count rows whose code lies in `[lo, hi]` (inclusive). This is the
    /// ground-truth selectivity oracle used by the executor.
    pub fn count_in_range(&self, lo: i64, hi: i64) -> usize {
        self.data.iter().filter(|&&v| v >= lo && v <= hi).count()
    }

    /// Minimum and maximum code, or `None` for an empty column.
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = self.data.iter();
        let first = *it.next()?;
        let (mut lo, mut hi) = (first, first);
        for &v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }

    /// Number of distinct codes (exact; O(n log n)).
    pub fn distinct_count(&self) -> usize {
        let mut sorted = self.data.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Append the row ids in `[start, end)` whose code lies in `[lo, hi]`
    /// (inclusive) to `out`. The batch-scan seed: one tight pass over a
    /// contiguous slice producing an ascending selection vector.
    #[inline]
    pub fn fill_matching_in(&self, lo: i64, hi: i64, start: usize, end: usize, out: &mut Vec<u32>) {
        for (off, &v) in self.data[start..end].iter().enumerate() {
            if v >= lo && v <= hi {
                out.push((start + off) as u32);
            }
        }
    }

    /// Retain only the selected rows whose code lies in `[lo, hi]`
    /// (inclusive). Refines a selection vector in place, preserving order.
    #[inline]
    pub fn retain_matching(&self, lo: i64, hi: i64, sel: &mut Vec<u32>) {
        sel.retain(|&r| {
            let v = self.data[r as usize];
            v >= lo && v <= hi
        });
    }

    /// Gather the codes of `rows` into `out` (cleared first). The heap-fetch
    /// primitive of the measured backend: materialises the selected values
    /// in selection order.
    #[inline]
    pub fn gather_into(&self, rows: &[u32], out: &mut Vec<i64>) {
        out.clear();
        out.reserve(rows.len());
        for &r in rows {
            out.push(self.data[r as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[i64]) -> Column {
        Column::new("c", ColumnType::Int, values.to_vec())
    }

    #[test]
    fn count_in_range_inclusive_bounds() {
        let c = col(&[1, 2, 3, 4, 5, 5, 5]);
        assert_eq!(c.count_in_range(2, 4), 3);
        assert_eq!(c.count_in_range(5, 5), 3);
        assert_eq!(c.count_in_range(6, 10), 0);
        assert_eq!(c.count_in_range(i64::MIN, i64::MAX), 7);
    }

    #[test]
    fn min_max_and_distinct() {
        let c = col(&[4, -1, 9, 4, 9]);
        assert_eq!(c.min_max(), Some((-1, 9)));
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(col(&[]).min_max(), None);
    }

    #[test]
    fn fill_matching_in_matches_scalar_filter() {
        let c = col(&[5, 1, 9, 5, 2, 7, 5, 0]);
        let mut sel = Vec::new();
        c.fill_matching_in(2, 7, 0, c.len(), &mut sel);
        let scalar: Vec<u32> = (0..c.len() as u32)
            .filter(|&r| (2..=7).contains(&c.value(r as usize)))
            .collect();
        assert_eq!(sel, scalar);

        // Batch windows concatenate to the full result.
        let mut batched = Vec::new();
        c.fill_matching_in(2, 7, 0, 3, &mut batched);
        c.fill_matching_in(2, 7, 3, c.len(), &mut batched);
        assert_eq!(batched, scalar);
    }

    #[test]
    fn retain_matching_refines_in_order() {
        let c = col(&[5, 1, 9, 5, 2, 7, 5, 0]);
        let mut sel: Vec<u32> = vec![0, 2, 3, 5, 7];
        c.retain_matching(5, 9, &mut sel);
        assert_eq!(sel, vec![0, 2, 3, 5]);
        c.retain_matching(100, 200, &mut sel);
        assert!(sel.is_empty());
    }

    #[test]
    fn gather_into_follows_selection_order() {
        let c = col(&[10, 20, 30, 40]);
        let mut out = vec![99]; // must be cleared
        c.gather_into(&[3, 0, 2], &mut out);
        assert_eq!(out, vec![40, 10, 30]);
    }

    #[test]
    fn logical_widths() {
        assert_eq!(ColumnType::Int.logical_width(), 8);
        assert_eq!(ColumnType::Date.logical_width(), 4);
        assert_eq!(ColumnType::Decimal { scale: 2 }.logical_width(), 8);
        assert_eq!(ColumnType::Dict { cardinality: 10 }.logical_width(), 16);
    }
}
