//! In-memory columnar storage substrate for the `dba-bandits` reproduction.
//!
//! The paper runs against a commercial DBMS; we build the storage layer that
//! DBMS provides: dictionary/fixed-point encoded columnar tables populated by
//! seeded generators (uniform, zipfian, correlated — the distributions whose
//! mismatch with optimiser assumptions drives the paper's results), and
//! composite-key secondary indexes with optional included (payload) columns.
//!
//! Everything is deterministic given a root seed. All values are stored as
//! `i64` codes with a [`ColumnType`] describing their logical interpretation,
//! which keeps predicate evaluation, sorting, and index probes branch-light.

pub mod catalog;
pub mod column;
pub mod gen;
pub mod index;
pub mod table;

pub use catalog::{BaseData, Catalog, IndexMeta, TableDriftState};
pub use column::{Column, ColumnType};
pub use gen::{ColumnSpec, Distribution};
pub use index::{Index, IndexDef};
pub use table::{Table, TableBuilder, TableSchema, PAGE_BYTES};
