//! Tables: schemas, builders, and size accounting.

use dba_common::{rng::rng_for, TableId};
use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::gen::ColumnSpec;

/// Size of a storage page used for I/O accounting, in bytes.
pub const PAGE_BYTES: u64 = 8192;

/// Schema of a table: an ordered list of column specifications plus the
/// logical width of columns the workload never touches.
///
/// Real benchmark tables carry comment/name/address columns that queries
/// rarely read but that every heap scan must pay for; `pad_bytes` accounts
/// for them without materialising data. This width asymmetry between the
/// heap and narrow secondary indexes is what makes covering indexes
/// profitable in row stores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnSpec>,
    pub pad_bytes: u32,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSpec>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            pad_bytes: 0,
        }
    }

    /// Add untouched-column padding to the logical row width.
    pub fn with_pad(mut self, pad_bytes: u32) -> Self {
        self.pad_bytes = pad_bytes;
        self
    }

    pub fn column_ordinal(&self, name: &str) -> Option<u16> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|p| p as u16)
    }

    /// Logical row width in bytes (column widths plus padding).
    pub fn row_bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.ctype.logical_width() as u64)
            .sum::<u64>()
            + self.pad_bytes as u64
    }
}

/// A fully materialised table.
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    columns: Vec<Column>,
    rows: usize,
    pad_bytes: u32,
}

impl Table {
    #[inline]
    pub fn id(&self) -> TableId {
        self.id
    }

    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    #[inline]
    pub fn column(&self, ordinal: u16) -> &Column {
        &self.columns[ordinal as usize]
    }

    pub fn column_by_name(&self, name: &str) -> Option<(u16, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name() == name)
            .map(|(i, c)| (i as u16, c))
    }

    /// Logical width of one heap row in bytes (column widths plus padding).
    pub fn row_bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(|c| c.ctype().logical_width() as u64)
            .sum::<u64>()
            + self.pad_bytes as u64
    }

    /// Logical heap size in bytes (row width × rows, padding included).
    pub fn heap_bytes(&self) -> u64 {
        self.row_bytes() * self.rows as u64
    }

    /// Number of heap pages a full table scan must read.
    pub fn heap_pages(&self) -> u64 {
        self.heap_bytes().div_ceil(PAGE_BYTES).max(1)
    }

    /// Logical width in bytes of a subset of columns.
    pub fn columns_width(&self, ordinals: &[u16]) -> u64 {
        ordinals
            .iter()
            .map(|&o| self.columns[o as usize].ctype().logical_width() as u64)
            .sum()
    }
}

/// Builds a [`Table`] from a schema by running each column's generator with
/// a deterministic per-column RNG stream derived from the experiment seed.
#[derive(Debug)]
pub struct TableBuilder {
    schema: TableSchema,
    rows: usize,
}

impl TableBuilder {
    pub fn new(schema: TableSchema, rows: usize) -> Self {
        TableBuilder { schema, rows }
    }

    pub fn build(self, id: TableId, root_seed: u64) -> Table {
        let mut generated: Vec<Vec<i64>> = Vec::with_capacity(self.schema.columns.len());
        for (ord, spec) in self.schema.columns.iter().enumerate() {
            let mut rng = rng_for(root_seed, "datagen", ((id.raw() as u64) << 16) | ord as u64);
            let data = spec.dist.generate(self.rows, &mut rng, &generated);
            generated.push(data);
        }
        let columns = self
            .schema
            .columns
            .iter()
            .zip(generated)
            .map(|(spec, data)| Column::new(spec.name.clone(), spec.ctype.clone(), data))
            .collect();
        Table {
            id,
            name: self.schema.name,
            columns,
            rows: self.rows,
            pad_bytes: self.schema.pad_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::gen::Distribution;

    fn schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                ColumnSpec::new("o_orderkey", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "o_custkey",
                    ColumnType::Int,
                    Distribution::FkUniform { parent_rows: 100 },
                ),
                ColumnSpec::new(
                    "o_orderdate",
                    ColumnType::Date,
                    Distribution::Uniform { lo: 0, hi: 2555 },
                ),
            ],
        )
    }

    #[test]
    fn build_produces_all_columns_with_row_count() {
        let t = TableBuilder::new(schema(), 1000).build(TableId(1), 42);
        assert_eq!(t.rows(), 1000);
        assert_eq!(t.columns().len(), 3);
        assert_eq!(t.column(0).len(), 1000);
        assert_eq!(t.name(), "orders");
    }

    #[test]
    fn column_lookup_by_name() {
        let t = TableBuilder::new(schema(), 10).build(TableId(1), 42);
        let (ord, col) = t.column_by_name("o_custkey").unwrap();
        assert_eq!(ord, 1);
        assert_eq!(col.name(), "o_custkey");
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    fn size_accounting() {
        let t = TableBuilder::new(schema(), 1000).build(TableId(1), 42);
        // widths: Int 8 + Int 8 + Date 4 = 20 bytes/row.
        assert_eq!(t.heap_bytes(), 20_000);
        assert_eq!(t.heap_pages(), 20_000u64.div_ceil(PAGE_BYTES));
        assert_eq!(t.columns_width(&[0, 2]), 12);
    }

    #[test]
    fn padding_widens_heap_but_not_projections() {
        let padded = TableBuilder::new(schema().with_pad(80), 1000).build(TableId(1), 42);
        assert_eq!(padded.heap_bytes(), (20 + 80) * 1000);
        // Projections of real columns are unaffected.
        assert_eq!(padded.columns_width(&[0, 2]), 12);
        assert_eq!(schema().with_pad(80).row_bytes(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TableBuilder::new(schema(), 100).build(TableId(1), 7);
        let b = TableBuilder::new(schema(), 100).build(TableId(1), 7);
        let c = TableBuilder::new(schema(), 100).build(TableId(1), 8);
        assert_eq!(a.column(1).data(), b.column(1).data());
        assert_ne!(a.column(1).data(), c.column(1).data());
    }

    #[test]
    fn schema_helpers() {
        let s = schema();
        assert_eq!(s.column_ordinal("o_orderdate"), Some(2));
        assert_eq!(s.column_ordinal("missing"), None);
        assert_eq!(s.row_bytes(), 20);
    }
}
