//! Composite-key secondary indexes with included (payload) columns.
//!
//! An index is an ordering of the table's row ids by a tuple of key columns
//! (a sorted permutation — the moral equivalent of a B+-tree's leaf level).
//! Probes bisect on an equality prefix plus an optional range on the next
//! key column, exactly the access pattern the planner's `IndexSeek` uses.
//! `include_cols` model covering indexes: columns carried in the leaves so
//! qualifying queries never touch the heap.

use dba_common::{IndexId, TableId};
use serde::{Deserialize, Serialize};

use crate::table::Table;

/// Structural definition of an index: which table, which key columns (order
/// matters), which extra columns are included in the leaves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexDef {
    pub table: TableId,
    pub key_cols: Vec<u16>,
    pub include_cols: Vec<u16>,
}

impl IndexDef {
    pub fn new(table: TableId, key_cols: Vec<u16>, include_cols: Vec<u16>) -> Self {
        debug_assert!(!key_cols.is_empty(), "index with no key columns");
        IndexDef {
            table,
            key_cols,
            include_cols,
        }
    }

    /// All column ordinals readable from the index leaves (keys + includes).
    pub fn leaf_columns(&self) -> Vec<u16> {
        let mut cols = self.key_cols.clone();
        for &c in &self.include_cols {
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        cols
    }

    /// Whether every ordinal in `needed` can be served from the leaves.
    pub fn covers(&self, needed: &[u16]) -> bool {
        needed
            .iter()
            .all(|c| self.key_cols.contains(c) || self.include_cols.contains(c))
    }

    /// Whether `other` prefix-subsumes this index: `other` has at
    /// least the same key columns in the same order as a prefix.
    pub fn is_prefix_of(&self, other: &IndexDef) -> bool {
        self.table == other.table
            && self.key_cols.len() <= other.key_cols.len()
            && self
                .key_cols
                .iter()
                .zip(&other.key_cols)
                .all(|(a, b)| a == b)
    }

    /// Estimated materialised size in bytes given the table, before
    /// building. Mirrors [`Index::size_bytes`] so what-if costing agrees
    /// with reality.
    pub fn estimated_bytes(&self, table: &Table) -> u64 {
        index_bytes(table, self)
    }
}

/// B+-tree-shaped size model: leaf payload plus ~15% structural overhead
/// (interior nodes, per-entry headers, fill factor).
fn index_bytes(table: &Table, def: &IndexDef) -> u64 {
    let key_w = table.columns_width(&def.key_cols);
    let incl_w = table.columns_width(&def.include_cols);
    let per_row = key_w + incl_w + 8; // 8 bytes row locator
    let leaf = per_row * table.rows() as u64;
    leaf + leaf * 3 / 20
}

/// A materialised secondary index.
#[derive(Debug, Clone)]
pub struct Index {
    id: IndexId,
    def: IndexDef,
    /// Row ids of the table, ordered by the key tuple.
    perm: Vec<u32>,
    size_bytes: u64,
    rows: usize,
}

impl Index {
    /// Build the index by sorting the table's row ids on the key tuple.
    pub fn build(id: IndexId, def: IndexDef, table: &Table) -> Self {
        assert_eq!(def.table, table.id(), "index/table mismatch");
        let keys: Vec<&[i64]> = def
            .key_cols
            .iter()
            .map(|&c| table.column(c).data())
            .collect();
        let mut perm: Vec<u32> = (0..table.rows() as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for k in &keys {
                let ord = k[a as usize].cmp(&k[b as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b)
        });
        let size_bytes = index_bytes(table, &def);
        Index {
            id,
            def,
            perm,
            size_bytes,
            rows: table.rows(),
        }
    }

    #[inline]
    pub fn id(&self) -> IndexId {
        self.id
    }

    #[inline]
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Leaf pages for a full index (covering) scan.
    pub fn leaf_pages(&self) -> u64 {
        self.size_bytes.div_ceil(crate::table::PAGE_BYTES).max(1)
    }

    /// Row ids in key order.
    #[inline]
    pub fn ordered_rows(&self) -> &[u32] {
        &self.perm
    }

    /// Probe: find the contiguous `perm` range matching `eq_prefix` values
    /// on the first `eq_prefix.len()` key columns, optionally narrowed by an
    /// inclusive `[lo, hi]` range on the next key column.
    ///
    /// Returns `(start, end)` half-open bounds into [`Self::ordered_rows`].
    pub fn probe(
        &self,
        table: &Table,
        eq_prefix: &[i64],
        range_next: Option<(i64, i64)>,
    ) -> (usize, usize) {
        debug_assert!(eq_prefix.len() <= self.def.key_cols.len());
        debug_assert!(
            range_next.is_none() || eq_prefix.len() < self.def.key_cols.len(),
            "range column beyond key columns"
        );
        let keys: Vec<&[i64]> = self
            .def
            .key_cols
            .iter()
            .map(|&c| table.column(c).data())
            .collect();

        // Compare a row against (eq_prefix, bound-on-next) lexicographically.
        // `next_bound` is interpreted per `upper`: for the lower bound we
        // look for the first row ≥ (prefix, lo); for the upper bound the
        // first row > (prefix, hi).
        let cmp_row = |row: u32, next_bound: Option<i64>, upper: bool| -> std::cmp::Ordering {
            for (i, &v) in eq_prefix.iter().enumerate() {
                let rv = keys[i][row as usize];
                match rv.cmp(&v) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            if let Some(b) = next_bound {
                let rv = keys[eq_prefix.len()][row as usize];
                match rv.cmp(&b) {
                    std::cmp::Ordering::Equal => {
                        if upper {
                            std::cmp::Ordering::Less // equal keys belong inside an inclusive hi
                        } else {
                            std::cmp::Ordering::Greater // equal keys belong inside an inclusive lo
                        }
                    }
                    other => other,
                }
            } else if upper {
                std::cmp::Ordering::Less // all rows equal on prefix are inside
            } else {
                std::cmp::Ordering::Greater
            }
        };

        let (lo_bound, hi_bound) = match range_next {
            Some((lo, hi)) => (Some(lo), Some(hi)),
            None => (None, None),
        };

        let start = self
            .perm
            .partition_point(|&r| cmp_row(r, lo_bound, false) == std::cmp::Ordering::Less);
        let end = self
            .perm
            .partition_point(|&r| cmp_row(r, hi_bound, true) != std::cmp::Ordering::Greater);
        (start, end.max(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::gen::{ColumnSpec, Distribution};
    use crate::table::{TableBuilder, TableSchema};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int, Distribution::Uniform { lo: 0, hi: 9 }),
                ColumnSpec::new(
                    "b",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
                ColumnSpec::new("c", ColumnType::Int, Distribution::Sequential),
            ],
        );
        TableBuilder::new(schema, 2000).build(TableId(0), 11)
    }

    #[test]
    fn probe_equality_matches_ground_truth() {
        let t = table();
        let ix = Index::build(IndexId(0), IndexDef::new(TableId(0), vec![0], vec![]), &t);
        for v in 0..10 {
            let (s, e) = ix.probe(&t, &[v], None);
            let expected = t.column(0).count_in_range(v, v);
            assert_eq!(e - s, expected, "value {v}");
            for &r in &ix.ordered_rows()[s..e] {
                assert_eq!(t.column(0).value(r as usize), v);
            }
        }
    }

    #[test]
    fn probe_composite_equality_plus_range() {
        let t = table();
        let ix = Index::build(
            IndexId(1),
            IndexDef::new(TableId(0), vec![0, 1], vec![2]),
            &t,
        );
        let (s, e) = ix.probe(&t, &[3], Some((10, 20)));
        let expected = t
            .column(0)
            .data()
            .iter()
            .zip(t.column(1).data())
            .filter(|(&a, &b)| a == 3 && (10..=20).contains(&b))
            .count();
        assert_eq!(e - s, expected);
        for &r in &ix.ordered_rows()[s..e] {
            assert_eq!(t.column(0).value(r as usize), 3);
            let b = t.column(1).value(r as usize);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn probe_full_range_on_first_column() {
        let t = table();
        let ix = Index::build(IndexId(2), IndexDef::new(TableId(0), vec![1], vec![]), &t);
        let (s, e) = ix.probe(&t, &[], Some((0, 99)));
        assert_eq!(e - s, t.rows());
        let (s, e) = ix.probe(&t, &[], Some((50, 59)));
        assert_eq!(e - s, t.column(1).count_in_range(50, 59));
    }

    #[test]
    fn probe_missing_value_returns_empty() {
        let t = table();
        let ix = Index::build(IndexId(3), IndexDef::new(TableId(0), vec![0], vec![]), &t);
        let (s, e) = ix.probe(&t, &[99], None);
        assert_eq!(s, e);
    }

    #[test]
    fn covers_and_prefix_relations() {
        let d1 = IndexDef::new(TableId(0), vec![0, 1], vec![2]);
        let d2 = IndexDef::new(TableId(0), vec![0, 1, 2], vec![]);
        let d3 = IndexDef::new(TableId(0), vec![1, 0], vec![]);
        assert!(d1.covers(&[0, 1, 2]));
        assert!(!d3.covers(&[2]));
        assert!(d1.is_prefix_of(&d2));
        assert!(!d2.is_prefix_of(&d1));
        assert!(!d3.is_prefix_of(&d2));
        assert_eq!(d1.leaf_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn size_model_counts_keys_includes_and_overhead() {
        let t = table();
        let narrow = Index::build(IndexId(4), IndexDef::new(TableId(0), vec![0], vec![]), &t);
        let wide = Index::build(
            IndexId(5),
            IndexDef::new(TableId(0), vec![0, 1], vec![2]),
            &t,
        );
        assert!(wide.size_bytes() > narrow.size_bytes());
        // Estimated size (pre-build) must match actual.
        assert_eq!(
            IndexDef::new(TableId(0), vec![0], vec![]).estimated_bytes(&t),
            narrow.size_bytes()
        );
        // narrow: (8 key + 8 rowid) * 2000 * 1.15
        assert_eq!(narrow.size_bytes(), (16 * 2000) + (16 * 2000) * 3 / 20);
    }

    #[test]
    fn ordered_rows_are_sorted_by_key() {
        let t = table();
        let ix = Index::build(
            IndexId(6),
            IndexDef::new(TableId(0), vec![0, 1], vec![]),
            &t,
        );
        let rows = ix.ordered_rows();
        for w in rows.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            let ka = (t.column(0).value(a), t.column(1).value(a));
            let kb = (t.column(0).value(b), t.column(1).value(b));
            assert!(ka <= kb);
        }
    }
}
