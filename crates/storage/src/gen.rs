//! Seeded data generators.
//!
//! A [`ColumnSpec`] pairs a column definition with a [`Distribution`]. The
//! distributions cover what the paper's benchmarks need:
//!
//! * `Uniform` — TPC-H / SSB uniform data, the case where optimiser
//!   assumptions hold and the commercial advisor shines;
//! * `Zipf { s }` — TPC-H Skew (the paper uses zipfian factor 4) and the
//!   skewed dimensions of TPC-DS/IMDb, where uniformity assumptions break;
//! * `Sequential` — primary keys;
//! * `FkUniform` / `FkZipf` — foreign keys referencing a parent of a given
//!   cardinality, uniformly or with skew (hot parents);
//! * `Correlated` — a value functionally derived from another column of the
//!   same table plus bounded noise, which breaks the attribute-value-
//!   independence (AVI) assumption that the paper identifies as a root cause
//!   of advisor mistakes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::column::ColumnType;

/// Generator specification for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnSpec {
    pub name: String,
    pub ctype: ColumnType,
    pub dist: Distribution,
}

impl ColumnSpec {
    pub fn new(name: impl Into<String>, ctype: ColumnType, dist: Distribution) -> Self {
        ColumnSpec {
            name: name.into(),
            ctype,
            dist,
        }
    }
}

/// Value distribution for a generated column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform integers in `[lo, hi]` (inclusive).
    Uniform { lo: i64, hi: i64 },
    /// Zipfian over `n` distinct values `{0, .., n-1}` with exponent `s`.
    /// Rank 1 (value 0) is the most frequent. `s = 0` degenerates to
    /// uniform; the paper's TPC-H Skew uses `s = 4`.
    Zipf { n: u64, s: f64 },
    /// Row number itself: `0, 1, 2, ...` (primary keys).
    Sequential,
    /// Uniform foreign key into a parent with `parent_rows` rows.
    FkUniform { parent_rows: u64 },
    /// Zipf-skewed foreign key into a parent with `parent_rows` rows:
    /// a few hot parents receive most children.
    FkZipf { parent_rows: u64, s: f64 },
    /// `value = (source_value * a + b) mod m + noise`, where `source` is the
    /// ordinal of an *earlier* column in the same table and `noise` is
    /// uniform in `[0, noise]`. Produces strong cross-column correlation.
    Correlated {
        source: u16,
        a: i64,
        b: i64,
        m: i64,
        noise: i64,
    },
}

/// Precomputed zipf CDF sampler over ranks `0..n`.
///
/// For the extreme exponents the paper uses (s = 4) nearly all mass sits in
/// the first handful of ranks, so CDF + binary search is both exact and
/// cache-friendly. We cap the materialised CDF and assign any residual tail
/// mass to the final bucket — for s ≥ 1 the truncation error at the cap is
/// far below one part in a million of total mass.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    n: u64,
}

/// Largest CDF table we materialise; ranks past this share the final slot.
const ZIPF_CDF_CAP: usize = 1 << 20;

impl ZipfSampler {
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over zero values");
        let m = (n as usize).min(ZIPF_CDF_CAP);
        let mut weights = Vec::with_capacity(m);
        for rank in 1..=m {
            weights.push((rank as f64).powf(-s));
        }
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler { cdf, n }
    }

    /// Sample a value in `[0, n)`; rank 0 is the hottest value.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let idx = match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i,
        };
        let idx = idx.min(self.cdf.len() - 1) as u64;
        // If n exceeds the CDF cap, spread the final bucket across the tail.
        if idx == (self.cdf.len() - 1) as u64 && self.n > self.cdf.len() as u64 {
            let span = self.n - (self.cdf.len() as u64 - 1);
            self.cdf.len() as u64 - 1 + rng.gen_range(0..span)
        } else {
            idx
        }
    }
}

impl Distribution {
    /// Generate `rows` codes for this distribution. `earlier` exposes the
    /// already-generated columns of the table (for `Correlated`).
    pub fn generate(&self, rows: usize, rng: &mut StdRng, earlier: &[Vec<i64>]) -> Vec<i64> {
        match *self {
            Distribution::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform range inverted");
                (0..rows).map(|_| rng.gen_range(lo..=hi)).collect()
            }
            Distribution::Zipf { n, s } => {
                let sampler = ZipfSampler::new(n, s);
                (0..rows).map(|_| sampler.sample(rng) as i64).collect()
            }
            Distribution::Sequential => (0..rows as i64).collect(),
            Distribution::FkUniform { parent_rows } => {
                assert!(parent_rows > 0, "fk into empty parent");
                (0..rows)
                    .map(|_| rng.gen_range(0..parent_rows) as i64)
                    .collect()
            }
            Distribution::FkZipf { parent_rows, s } => {
                let sampler = ZipfSampler::new(parent_rows, s);
                (0..rows).map(|_| sampler.sample(rng) as i64).collect()
            }
            Distribution::Correlated {
                source,
                a,
                b,
                m,
                noise,
            } => {
                let src = earlier
                    .get(source as usize)
                    .expect("correlated source must be an earlier column");
                assert!(m > 0, "correlated modulus must be positive");
                src.iter()
                    .map(|&v| {
                        let base = (v.wrapping_mul(a).wrapping_add(b)).rem_euclid(m);
                        if noise > 0 {
                            base + rng.gen_range(0..=noise)
                        } else {
                            base
                        }
                    })
                    .collect()
            }
        }
    }

    /// The number of distinct values this distribution can produce, when it
    /// is known a priori (used to size dictionaries and sanity-check stats).
    pub fn domain_size_hint(&self, rows: usize) -> Option<u64> {
        match *self {
            Distribution::Uniform { lo, hi } => Some((hi - lo + 1) as u64),
            Distribution::Zipf { n, .. } => Some(n),
            Distribution::Sequential => Some(rows as u64),
            Distribution::FkUniform { parent_rows } => Some(parent_rows),
            Distribution::FkZipf { parent_rows, .. } => Some(parent_rows),
            Distribution::Correlated { m, noise, .. } => Some((m + noise) as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::rng::rng_for;

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = rng_for(1, "gen", 0);
        let data = Distribution::Uniform { lo: -5, hi: 5 }.generate(10_000, &mut rng, &[]);
        assert!(data.iter().all(|&v| (-5..=5).contains(&v)));
        // All 11 values should appear in 10k draws.
        let distinct: std::collections::HashSet<_> = data.iter().collect();
        assert_eq!(distinct.len(), 11);
    }

    #[test]
    fn sequential_is_identity() {
        let mut rng = rng_for(1, "gen", 1);
        let data = Distribution::Sequential.generate(5, &mut rng, &[]);
        assert_eq!(data, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zipf_hot_value_dominates_at_high_exponent() {
        let mut rng = rng_for(1, "gen", 2);
        let data = Distribution::Zipf { n: 1000, s: 4.0 }.generate(20_000, &mut rng, &[]);
        let zeros = data.iter().filter(|&&v| v == 0).count();
        // With s=4, P(rank 1) = 1/zeta(4) ≈ 0.924.
        assert!(
            zeros as f64 / 20_000.0 > 0.85,
            "hot value frequency {} too low",
            zeros
        );
    }

    #[test]
    fn zipf_low_exponent_spreads_mass() {
        let mut rng = rng_for(1, "gen", 3);
        let data = Distribution::Zipf { n: 100, s: 0.5 }.generate(20_000, &mut rng, &[]);
        let zeros = data.iter().filter(|&&v| v == 0).count();
        assert!((zeros as f64 / 20_000.0) < 0.25);
        let distinct: std::collections::HashSet<_> = data.iter().collect();
        assert!(distinct.len() > 60);
    }

    #[test]
    fn zipf_handles_domain_beyond_cdf_cap() {
        let sampler = ZipfSampler::new(5_000_000, 1.1);
        let mut rng = rng_for(1, "gen", 4);
        for _ in 0..1000 {
            let v = sampler.sample(&mut rng);
            assert!(v < 5_000_000);
        }
    }

    #[test]
    fn correlated_tracks_source() {
        let mut rng = rng_for(1, "gen", 5);
        let src: Vec<i64> = (0..1000).map(|i| i % 50).collect();
        let data = Distribution::Correlated {
            source: 0,
            a: 3,
            b: 7,
            m: 1000,
            noise: 0,
        }
        .generate(1000, &mut rng, std::slice::from_ref(&src));
        for (s, d) in src.iter().zip(&data) {
            assert_eq!(*d, (s * 3 + 7) % 1000);
        }
    }

    #[test]
    fn fk_uniform_within_parent() {
        let mut rng = rng_for(1, "gen", 6);
        let data = Distribution::FkUniform { parent_rows: 17 }.generate(5_000, &mut rng, &[]);
        assert!(data.iter().all(|&v| (0..17).contains(&v)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = Distribution::Zipf { n: 100, s: 2.0 };
        let a = d.generate(100, &mut rng_for(7, "gen", 0), &[]);
        let b = d.generate(100, &mut rng_for(7, "gen", 0), &[]);
        let c = d.generate(100, &mut rng_for(8, "gen", 0), &[]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn domain_size_hints() {
        assert_eq!(
            Distribution::Uniform { lo: 0, hi: 9 }.domain_size_hint(5),
            Some(10)
        );
        assert_eq!(Distribution::Sequential.domain_size_hint(5), Some(5));
    }
}
