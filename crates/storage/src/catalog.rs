//! The catalog: an immutable, shareable data base plus the mutable
//! per-session overlay of secondary indexes and drift state.
//!
//! Generated table data lives in a single [`BaseData`] behind an `Arc`:
//! forking a catalog for another tuner session ([`Catalog::fork_empty`])
//! is one reference-count bump, never a data copy, and the shared base is
//! `Sync` so forks can run on different threads. Each fork owns the cheap
//! per-session parts — its index set and its drift overlay.
//!
//! Data change (HTAP-style drift) is modelled as a per-table **logical
//! overlay** ([`TableDriftState`]): inserts grow the live row count and the
//! heap, deletes shrink the live row count but leave dead space in the heap
//! (no vacuum), updates rewrite rows in place. The physical column data
//! never changes — drift moves the *size accounting* every cost formula
//! reads (`live_rows`, `live_heap_pages`), which is what makes scans slow
//! down and index maintenance chargeable under churn.
//!
//! Every physical change is versioned per table ([`Catalog::table_version`]
//! moves on index create/drop and on applied drift), giving plan caches a
//! cheap configuration signature to validate against.

use std::collections::BTreeMap;
use std::sync::Arc;

use dba_common::{DbError, DbResult, IndexId, TableId};

use crate::index::{Index, IndexDef};
use crate::table::{Table, PAGE_BYTES};

/// Metadata snapshot for one materialised index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    pub id: IndexId,
    pub def: IndexDef,
    /// Size at creation time, drift included: on a table that has grown
    /// since generation, a freshly built index is proportionally larger
    /// than its generation-time estimate.
    pub size_bytes: u64,
}

/// Logical data-change overlay for one table: rows inserted, updated and
/// deleted since generation. See the module docs for the semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableDriftState {
    /// Rows logically appended since generation.
    pub inserted: u64,
    /// Rows logically rewritten in place.
    pub updated: u64,
    /// Rows logically deleted (dead tuples keep occupying heap pages).
    pub deleted: u64,
}

impl TableDriftState {
    /// Total row versions touched — the unit index maintenance is priced in.
    pub fn rows_changed(&self) -> u64 {
        self.inserted + self.updated + self.deleted
    }

    pub fn is_clean(&self) -> bool {
        self.rows_changed() == 0
    }
}

/// The immutable half of the storage layer: every generated table of a
/// benchmark, built once and shared (`Arc`) by all sessions over it.
///
/// `BaseData` is never mutated after construction — indexes and drift live
/// in each session's [`Catalog`] overlay — so sharing it across threads is
/// safe and forking a session is free.
#[derive(Debug)]
pub struct BaseData {
    tables: Vec<Table>,
}

impl BaseData {
    pub fn new(tables: Vec<Table>) -> Self {
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(
                t.id().raw() as usize,
                i,
                "table ids must be dense and ordered"
            );
        }
        BaseData { tables }
    }

    #[inline]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.raw() as usize]
    }

    /// Total bytes of generated (pre-drift) heap data.
    pub fn generated_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.heap_bytes()).sum()
    }
}

/// Shared base data + per-session overlay (secondary indexes, drift).
#[derive(Debug, Clone)]
pub struct Catalog {
    base: Arc<BaseData>,
    indexes: BTreeMap<IndexId, Arc<Index>>,
    /// Per-index table growth factor *at creation time* (the table's
    /// [`index_growth`](Catalog::index_growth) when the index was built).
    /// Sizing an index live means scaling its generation-baseline
    /// structural size by total growth; billing its growth since creation
    /// means dividing total growth by this snapshot.
    created_growth: BTreeMap<IndexId, f64>,
    /// Per-table drift overlay, parallel to `base.tables()`.
    drift: Vec<TableDriftState>,
    /// Per-table physical version, parallel to `base.tables()`: bumped when
    /// an index on the table is created or dropped and when drift touches
    /// its live data. Plan caches validate against it.
    versions: Vec<u64>,
    next_index: u64,
}

impl Catalog {
    pub fn new(tables: Vec<Table>) -> Self {
        Catalog::from_base(Arc::new(BaseData::new(tables)))
    }

    /// A fresh overlay (no indexes, no drift) over already-generated data.
    /// This is how sessions fork: the `Arc` is bumped, nothing is copied.
    pub fn from_base(base: Arc<BaseData>) -> Self {
        let n = base.tables().len();
        Catalog {
            base,
            indexes: BTreeMap::new(),
            created_growth: BTreeMap::new(),
            drift: vec![TableDriftState::default(); n],
            versions: vec![0; n],
            next_index: 0,
        }
    }

    /// The shared immutable base this catalog overlays.
    #[inline]
    pub fn base(&self) -> &Arc<BaseData> {
        &self.base
    }

    #[inline]
    pub fn tables(&self) -> &[Table] {
        self.base.tables()
    }

    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        self.base.table(id)
    }

    pub fn table_by_name(&self, name: &str) -> DbResult<&Table> {
        self.tables()
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Physical version of `table`: moves on every index create/drop on it
    /// and on every applied drift round. Equal versions guarantee a cached
    /// plan over the table is still valid (stats staleness is versioned
    /// separately by the optimiser).
    #[inline]
    pub fn table_version(&self, table: TableId) -> u64 {
        self.versions[table.raw() as usize]
    }

    #[inline]
    fn bump_version(&mut self, table: TableId) {
        self.versions[table.raw() as usize] += 1;
    }

    /// Total logical size of all base tables (the paper's “database size”,
    /// used for memory budgets and context features). Tracks drift: the
    /// database grows as rows are inserted.
    pub fn database_bytes(&self) -> u64 {
        self.tables()
            .iter()
            .map(|t| self.live_heap_bytes(t.id()))
            .sum()
    }

    /// Record a round of data change against `table`. Deletes and updates
    /// are capped at the rows that actually exist (live rows plus this
    /// round's inserts). Returns the *applied* delta — callers pricing
    /// maintenance or tracking staleness must use it, not the requested
    /// counts, so nobody is billed for rows that were never touched.
    // bumps: catalog_version
    pub fn apply_drift(
        &mut self,
        table: TableId,
        inserted: u64,
        updated: u64,
        deleted: u64,
    ) -> TableDriftState {
        let live = self.live_rows(table);
        let applied = TableDriftState {
            inserted,
            deleted: deleted.min(live + inserted),
            updated: updated.min(live + inserted),
        };
        let state = &mut self.drift[table.raw() as usize];
        state.inserted += applied.inserted;
        state.deleted += applied.deleted;
        state.updated += applied.updated;
        if applied.rows_changed() > 0 {
            self.bump_version(table);
        }
        applied
    }

    /// Accumulated drift of `table` since generation.
    pub fn drift_state(&self, table: TableId) -> TableDriftState {
        self.drift[table.raw() as usize]
    }

    /// Whether any table has drifted since generation.
    pub fn has_drift(&self) -> bool {
        self.drift.iter().any(|d| !d.is_clean())
    }

    /// Live (visible) row count of `table`: generated + inserted − deleted.
    pub fn live_rows(&self, table: TableId) -> u64 {
        let base = self.table(table).rows() as u64;
        let d = self.drift[table.raw() as usize];
        (base + d.inserted).saturating_sub(d.deleted)
    }

    /// Heap size of `table` in bytes, including dead space: inserts extend
    /// the heap, deletes never shrink it (no vacuum in the model).
    pub fn live_heap_bytes(&self, table: TableId) -> u64 {
        let t = self.table(table);
        let d = self.drift[table.raw() as usize];
        t.row_bytes() * (t.rows() as u64 + d.inserted)
    }

    /// Heap pages a full scan of `table` must read, drift included.
    pub fn live_heap_pages(&self, table: TableId) -> u64 {
        self.live_heap_bytes(table).div_ceil(PAGE_BYTES).max(1)
    }

    /// Growth factor (≥ 1) of `table`'s indexed row population since
    /// generation. Maintained indexes absorb every insert, so their leaf
    /// levels scale with the heap's row count — deleted entries linger like
    /// dead heap tuples (no vacuum). Costing of covering scans and of
    /// maintenance itself multiplies creation-time leaf pages by this
    /// factor, so an index on a churning table pays for its own growth.
    pub fn index_growth(&self, table: TableId) -> f64 {
        let base = self.table(table).rows().max(1) as f64;
        let d = self.drift[table.raw() as usize];
        (base + d.inserted as f64) / base
    }

    /// Growth factor (≥ 1) of `index`'s table **since the index was
    /// created**: total table growth divided by the growth snapshot taken
    /// at creation time. An index created late in a drifted session is
    /// billed only for inserts it actually absorbed — not for growth that
    /// predates it (which is already in its creation-time size). Unknown
    /// ids (e.g. what-if hypotheticals, which are "created" now) grow by
    /// definition 1.0.
    pub fn index_growth_of(&self, id: IndexId) -> f64 {
        let Some(ix) = self.indexes.get(&id) else {
            return 1.0;
        };
        let at_creation = self.created_growth.get(&id).copied().unwrap_or(1.0);
        (self.index_growth(ix.def().table) / at_creation).max(1.0)
    }

    /// Size of `index` at its creation time, drift included: the
    /// generation-baseline structural size scaled by the table growth
    /// snapshot taken when the index was built.
    pub fn index_creation_bytes(&self, id: IndexId) -> u64 {
        let Some(ix) = self.indexes.get(&id) else {
            return 0;
        };
        let at_creation = self.created_growth.get(&id).copied().unwrap_or(1.0);
        (ix.size_bytes() as f64 * at_creation).ceil() as u64
    }

    /// Current live size of `index`: creation-time size plus every insert
    /// absorbed since (deleted entries linger — no vacuum, matching the
    /// heap model).
    pub fn index_live_bytes(&self, id: IndexId) -> u64 {
        let Some(ix) = self.indexes.get(&id) else {
            return 0;
        };
        (ix.size_bytes() as f64 * self.index_growth(ix.def().table)).ceil() as u64
    }

    /// Leaf pages a full (covering) scan of `index` must read today:
    /// the live size in pages.
    pub fn index_live_leaf_pages(&self, id: IndexId) -> u64 {
        self.index_live_bytes(id).div_ceil(PAGE_BYTES).max(1)
    }

    /// Estimated size of materialising `def` **now**, on the live
    /// (drift-grown) table — what a fresh build would cost to write and
    /// hold. This is the size memory-budget checks and build billing must
    /// use on drifted tables; without drift it equals
    /// [`IndexDef::estimated_bytes`].
    pub fn estimated_live_bytes(&self, def: &IndexDef) -> u64 {
        let table = self.table(def.table);
        (def.estimated_bytes(table) as f64 * self.index_growth(def.table)).ceil() as u64
    }

    /// Total size of materialised secondary indexes at their creation-time
    /// (drift-included) sizes.
    pub fn index_bytes(&self) -> u64 {
        self.indexes
            .keys()
            .map(|&id| self.index_creation_bytes(id))
            .sum()
    }

    /// Total *live* size of materialised secondary indexes: creation-time
    /// sizes plus all growth absorbed since. This is what competes with the
    /// memory budget under drift — the quantity safety headroom checks
    /// guard.
    pub fn live_index_bytes(&self) -> u64 {
        self.indexes
            .keys()
            .map(|&id| self.index_live_bytes(id))
            .sum()
    }

    /// Materialise an index. Returns the new index id and its size.
    ///
    /// The caller is responsible for charging creation time through the cost
    /// model; the catalog only builds the structure.
    // bumps: catalog_version
    pub fn create_index(&mut self, def: IndexDef) -> DbResult<IndexMeta> {
        if def.key_cols.is_empty() {
            return Err(DbError::Invalid("index with no key columns".into()));
        }
        let table = self
            .tables()
            .get(def.table.raw() as usize)
            .ok_or_else(|| DbError::UnknownTable(format!("{}", def.table)))?;
        for &c in def.key_cols.iter().chain(&def.include_cols) {
            if c as usize >= table.columns().len() {
                return Err(DbError::UnknownColumn {
                    table: table.name().to_string(),
                    column: format!("ordinal {c}"),
                });
            }
        }
        let id = IndexId(self.next_index);
        self.next_index += 1;
        let ix = Index::build(id, def.clone(), self.base.table(def.table));
        let growth_at_creation = self.index_growth(def.table);
        let meta = IndexMeta {
            id,
            def,
            size_bytes: (ix.size_bytes() as f64 * growth_at_creation).ceil() as u64,
        };
        self.indexes.insert(id, Arc::new(ix));
        self.created_growth.insert(id, growth_at_creation);
        self.bump_version(meta.def.table);
        Ok(meta)
    }

    // bumps: catalog_version
    pub fn drop_index(&mut self, id: IndexId) -> DbResult<()> {
        let ix = self
            .indexes
            .remove(&id)
            .ok_or(DbError::UnknownIndex(id.raw()))?;
        self.created_growth.remove(&id);
        self.bump_version(ix.def().table);
        Ok(())
    }

    pub fn index(&self, id: IndexId) -> DbResult<&Arc<Index>> {
        self.indexes.get(&id).ok_or(DbError::UnknownIndex(id.raw()))
    }

    /// All materialised indexes on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &Arc<Index>> {
        self.indexes
            .values()
            .filter(move |ix| ix.def().table == table)
    }

    pub fn all_indexes(&self) -> impl Iterator<Item = &Arc<Index>> {
        self.indexes.values()
    }

    /// Find a materialised index with exactly this definition.
    pub fn find_index(&self, def: &IndexDef) -> Option<&Arc<Index>> {
        self.indexes.values().find(|ix| ix.def() == def)
    }

    /// Fresh catalog over the same shared base data, with no indexes and no
    /// drift — used to give each tuner an identical starting state. Costs
    /// one `Arc` bump; the generated data is never copied.
    pub fn fork_empty(&self) -> Catalog {
        Catalog::from_base(Arc::clone(&self.base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::gen::{ColumnSpec, Distribution};
    use crate::table::{TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int, Distribution::Uniform { lo: 0, hi: 9 }),
                ColumnSpec::new("b", ColumnType::Int, Distribution::Sequential),
            ],
        );
        let t = TableBuilder::new(schema, 500).build(TableId(0), 3);
        Catalog::new(vec![t])
    }

    #[test]
    fn create_and_drop_index() {
        let mut cat = catalog();
        let meta = cat
            .create_index(IndexDef::new(TableId(0), vec![0], vec![1]))
            .unwrap();
        assert!(cat.index(meta.id).is_ok());
        assert_eq!(cat.indexes_on(TableId(0)).count(), 1);
        assert!(cat.index_bytes() > 0);
        cat.drop_index(meta.id).unwrap();
        assert!(cat.index(meta.id).is_err());
        assert_eq!(cat.index_bytes(), 0);
    }

    #[test]
    fn create_index_validates_columns() {
        let mut cat = catalog();
        let err = cat
            .create_index(IndexDef {
                table: TableId(0),
                key_cols: vec![9],
                include_cols: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, DbError::UnknownColumn { .. }));
        let err = cat
            .create_index(IndexDef {
                table: TableId(0),
                key_cols: vec![],
                include_cols: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, DbError::Invalid(_)));
    }

    #[test]
    fn find_index_by_definition() {
        let mut cat = catalog();
        let def = IndexDef::new(TableId(0), vec![0], vec![]);
        cat.create_index(def.clone()).unwrap();
        assert!(cat.find_index(&def).is_some());
        let other = IndexDef::new(TableId(0), vec![1], vec![]);
        assert!(cat.find_index(&other).is_none());
    }

    #[test]
    fn fork_empty_shares_base_but_not_indexes() {
        let mut cat = catalog();
        cat.create_index(IndexDef::new(TableId(0), vec![0], vec![]))
            .unwrap();
        let before = Arc::strong_count(cat.base());
        let fork = cat.fork_empty();
        assert_eq!(fork.all_indexes().count(), 0);
        assert_eq!(fork.tables().len(), 1);
        // Zero-copy: the fork holds the same allocation, one more ref.
        assert!(Arc::ptr_eq(fork.base(), cat.base()));
        assert_eq!(Arc::strong_count(cat.base()), before + 1);
    }

    #[test]
    fn table_lookup_by_name_errors_cleanly() {
        let cat = catalog();
        assert!(cat.table_by_name("t").is_ok());
        assert!(matches!(
            cat.table_by_name("missing"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn database_bytes_sums_heaps() {
        let cat = catalog();
        assert_eq!(cat.database_bytes(), 16 * 500);
    }

    #[test]
    fn drift_moves_live_rows_and_heap_pages() {
        let mut cat = catalog();
        assert!(!cat.has_drift());
        assert_eq!(cat.live_rows(TableId(0)), 500);
        let pages_before = cat.live_heap_pages(TableId(0));
        let db_before = cat.database_bytes();

        cat.apply_drift(TableId(0), 100_000, 50, 20);
        assert!(cat.has_drift());
        assert_eq!(cat.live_rows(TableId(0)), 500 + 100_000 - 20);
        assert!(cat.live_heap_pages(TableId(0)) > pages_before);
        assert!(cat.database_bytes() > db_before);
        let d = cat.drift_state(TableId(0));
        assert_eq!(d.rows_changed(), 100_000 + 50 + 20);
    }

    #[test]
    fn deletes_cap_at_live_rows_and_keep_heap_pages() {
        let mut cat = catalog();
        // Deleting more rows than exist (500) caps at the live count.
        let applied = cat.apply_drift(TableId(0), 0, 0, 9_999);
        assert_eq!(applied.deleted, 500, "applied delta reports the cap");
        assert_eq!(cat.live_rows(TableId(0)), 0);
        // Dead rows still occupy the heap (no vacuum).
        let t_pages = cat.table(TableId(0)).heap_pages();
        assert_eq!(cat.live_heap_pages(TableId(0)), t_pages);
        // Further deletes and updates on the drained table are no-ops.
        let applied = cat.apply_drift(TableId(0), 0, 7, 10);
        assert_eq!(applied.deleted, 0);
        assert_eq!(applied.updated, 0);
        assert_eq!(applied.rows_changed(), 0);
        assert_eq!(cat.live_rows(TableId(0)), 0);
    }

    #[test]
    fn index_growth_tracks_inserts_only() {
        let mut cat = catalog();
        assert_eq!(cat.index_growth(TableId(0)), 1.0);
        cat.apply_drift(TableId(0), 500, 100, 100);
        // 500 base rows + 500 inserted = 2× leaves; updates/deletes don't
        // grow the leaf level (dead entries replace live ones).
        assert!((cat.index_growth(TableId(0)) - 2.0).abs() < 1e-12);
    }

    /// The drift-sizing contract: an index created *after* the table grew
    /// is creation-priced at the grown size and billed only for growth it
    /// actually absorbs; an index created *before* the growth is billed
    /// for all of it.
    #[test]
    fn per_index_growth_bills_only_growth_since_creation() {
        let mut cat = catalog();
        let early = cat
            .create_index(IndexDef::new(TableId(0), vec![0], vec![]))
            .unwrap();
        let base_size = early.size_bytes;

        // Table doubles its indexed population (500 → 1000 insert-rows).
        cat.apply_drift(TableId(0), 500, 0, 0);
        assert!((cat.index_growth(TableId(0)) - 2.0).abs() < 1e-12);
        // The early index absorbed the doubling.
        assert!((cat.index_growth_of(early.id) - 2.0).abs() < 1e-12);
        assert_eq!(cat.index_live_bytes(early.id), base_size * 2);
        assert_eq!(cat.index_creation_bytes(early.id), base_size);

        // A late index is built over the doubled table: creation size is
        // live-scaled, and it has absorbed no growth yet.
        let late = cat
            .create_index(IndexDef::new(TableId(0), vec![1], vec![]))
            .unwrap();
        let late_base = cat.index(late.id).unwrap().size_bytes();
        assert_eq!(late.size_bytes, late_base * 2, "creation billed live");
        assert!((cat.index_growth_of(late.id) - 1.0).abs() < 1e-12);
        assert_eq!(cat.index_live_bytes(late.id), late.size_bytes);
        assert_eq!(cat.index_creation_bytes(late.id), late.size_bytes);

        // Another 50% growth on the doubled base: early = 3×, late = 1.5×.
        cat.apply_drift(TableId(0), 500, 0, 0);
        assert!((cat.index_growth_of(early.id) - 3.0).abs() < 1e-12);
        assert!((cat.index_growth_of(late.id) - 1.5).abs() < 1e-12);
        // Live sizes agree between per-index and total accounting.
        assert_eq!(
            cat.live_index_bytes(),
            cat.index_live_bytes(early.id) + cat.index_live_bytes(late.id)
        );
        assert!(cat.live_index_bytes() > cat.index_bytes());

        // A hypothetical (unknown) id has by definition absorbed nothing.
        assert!((cat.index_growth_of(IndexId(999)) - 1.0).abs() < 1e-12);
        assert_eq!(cat.index_live_bytes(IndexId(999)), 0);
    }

    #[test]
    fn estimated_live_bytes_tracks_insert_growth() {
        let mut cat = catalog();
        let def = IndexDef::new(TableId(0), vec![0], vec![]);
        let flat = cat.estimated_live_bytes(&def);
        assert_eq!(flat, def.estimated_bytes(cat.table(TableId(0))));
        cat.apply_drift(TableId(0), 1000, 0, 0);
        let grown = cat.estimated_live_bytes(&def);
        assert_eq!(grown, flat * 3, "500 base + 1000 inserted = 3× the rows");
        // Deletes leave dead entries behind: the estimate never shrinks.
        cat.apply_drift(TableId(0), 0, 0, 1200);
        assert_eq!(cat.estimated_live_bytes(&def), grown);
    }

    #[test]
    fn fork_empty_resets_drift() {
        let mut cat = catalog();
        cat.apply_drift(TableId(0), 10, 10, 10);
        let fork = cat.fork_empty();
        assert!(!fork.has_drift());
        assert_eq!(fork.live_rows(TableId(0)), 500);
    }

    #[test]
    fn table_versions_move_on_index_changes_and_drift_only() {
        let mut cat = catalog();
        assert_eq!(cat.table_version(TableId(0)), 0);

        let meta = cat
            .create_index(IndexDef::new(TableId(0), vec![0], vec![]))
            .unwrap();
        assert_eq!(cat.table_version(TableId(0)), 1, "create bumps");
        cat.drop_index(meta.id).unwrap();
        assert_eq!(cat.table_version(TableId(0)), 2, "drop bumps");

        cat.apply_drift(TableId(0), 10, 0, 0);
        assert_eq!(cat.table_version(TableId(0)), 3, "applied drift bumps");
        // A drift round that touches no rows leaves the version alone.
        let applied = cat.apply_drift(TableId(0), 0, 0, 0);
        assert_eq!(applied.rows_changed(), 0);
        assert_eq!(cat.table_version(TableId(0)), 3);

        // Forks start from version 0 again.
        assert_eq!(cat.fork_empty().table_version(TableId(0)), 0);
    }

    #[test]
    fn base_data_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BaseData>();
        assert_send_sync::<Catalog>();
    }

    #[test]
    fn ids_are_monotonic() {
        let mut cat = catalog();
        let a = cat
            .create_index(IndexDef::new(TableId(0), vec![0], vec![]))
            .unwrap();
        let b = cat
            .create_index(IndexDef::new(TableId(0), vec![1], vec![]))
            .unwrap();
        assert!(b.id.raw() > a.id.raw());
        cat.drop_index(a.id).unwrap();
        let c = cat
            .create_index(IndexDef::new(TableId(0), vec![0, 1], vec![]))
            .unwrap();
        assert!(c.id.raw() > b.id.raw(), "ids are never reused");
    }
}
