//! The catalog: tables plus the mutable set of materialised secondary
//! indexes.
//!
//! Generated table data is immutable and shared (`Arc`) so that multiple
//! tuner runs over the same benchmark reuse one copy; each run owns its own
//! index set, which it creates and drops as tuning proceeds.

use std::collections::BTreeMap;
use std::sync::Arc;

use dba_common::{DbError, DbResult, IndexId, TableId};

use crate::index::{Index, IndexDef};
use crate::table::Table;

/// Metadata snapshot for one materialised index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    pub id: IndexId,
    pub def: IndexDef,
    pub size_bytes: u64,
}

/// Tables + secondary indexes.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: Vec<Arc<Table>>,
    indexes: BTreeMap<IndexId, Arc<Index>>,
    next_index: u64,
}

impl Catalog {
    pub fn new(tables: Vec<Arc<Table>>) -> Self {
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(
                t.id().raw() as usize,
                i,
                "table ids must be dense and ordered"
            );
        }
        Catalog {
            tables,
            indexes: BTreeMap::new(),
            next_index: 0,
        }
    }

    #[inline]
    pub fn tables(&self) -> &[Arc<Table>] {
        &self.tables
    }

    #[inline]
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.raw() as usize]
    }

    pub fn table_by_name(&self, name: &str) -> DbResult<&Arc<Table>> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Total logical size of all base tables (the paper's “database size”,
    /// used for memory budgets and context features).
    pub fn database_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.heap_bytes()).sum()
    }

    /// Total size of materialised secondary indexes.
    pub fn index_bytes(&self) -> u64 {
        self.indexes.values().map(|ix| ix.size_bytes()).sum()
    }

    /// Materialise an index. Returns the new index id and its size.
    ///
    /// The caller is responsible for charging creation time through the cost
    /// model; the catalog only builds the structure.
    pub fn create_index(&mut self, def: IndexDef) -> DbResult<IndexMeta> {
        if def.key_cols.is_empty() {
            return Err(DbError::Invalid("index with no key columns".into()));
        }
        let table = self
            .tables
            .get(def.table.raw() as usize)
            .ok_or_else(|| DbError::UnknownTable(format!("{}", def.table)))?
            .clone();
        for &c in def.key_cols.iter().chain(&def.include_cols) {
            if c as usize >= table.columns().len() {
                return Err(DbError::UnknownColumn {
                    table: table.name().to_string(),
                    column: format!("ordinal {c}"),
                });
            }
        }
        let id = IndexId(self.next_index);
        self.next_index += 1;
        let ix = Index::build(id, def.clone(), &table);
        let meta = IndexMeta {
            id,
            def,
            size_bytes: ix.size_bytes(),
        };
        self.indexes.insert(id, Arc::new(ix));
        Ok(meta)
    }

    pub fn drop_index(&mut self, id: IndexId) -> DbResult<()> {
        self.indexes
            .remove(&id)
            .map(|_| ())
            .ok_or(DbError::UnknownIndex(id.raw()))
    }

    pub fn index(&self, id: IndexId) -> DbResult<&Arc<Index>> {
        self.indexes.get(&id).ok_or(DbError::UnknownIndex(id.raw()))
    }

    /// All materialised indexes on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &Arc<Index>> {
        self.indexes
            .values()
            .filter(move |ix| ix.def().table == table)
    }

    pub fn all_indexes(&self) -> impl Iterator<Item = &Arc<Index>> {
        self.indexes.values()
    }

    /// Find a materialised index with exactly this definition.
    pub fn find_index(&self, def: &IndexDef) -> Option<&Arc<Index>> {
        self.indexes.values().find(|ix| ix.def() == def)
    }

    /// Fresh catalog over the same shared tables, with no indexes — used to
    /// give each tuner an identical starting state.
    pub fn fork_empty(&self) -> Catalog {
        Catalog {
            tables: self.tables.clone(),
            indexes: BTreeMap::new(),
            next_index: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::gen::{ColumnSpec, Distribution};
    use crate::table::{TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int, Distribution::Uniform { lo: 0, hi: 9 }),
                ColumnSpec::new("b", ColumnType::Int, Distribution::Sequential),
            ],
        );
        let t = TableBuilder::new(schema, 500).build(TableId(0), 3);
        Catalog::new(vec![Arc::new(t)])
    }

    #[test]
    fn create_and_drop_index() {
        let mut cat = catalog();
        let meta = cat
            .create_index(IndexDef::new(TableId(0), vec![0], vec![1]))
            .unwrap();
        assert!(cat.index(meta.id).is_ok());
        assert_eq!(cat.indexes_on(TableId(0)).count(), 1);
        assert!(cat.index_bytes() > 0);
        cat.drop_index(meta.id).unwrap();
        assert!(cat.index(meta.id).is_err());
        assert_eq!(cat.index_bytes(), 0);
    }

    #[test]
    fn create_index_validates_columns() {
        let mut cat = catalog();
        let err = cat
            .create_index(IndexDef {
                table: TableId(0),
                key_cols: vec![9],
                include_cols: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, DbError::UnknownColumn { .. }));
        let err = cat
            .create_index(IndexDef {
                table: TableId(0),
                key_cols: vec![],
                include_cols: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, DbError::Invalid(_)));
    }

    #[test]
    fn find_index_by_definition() {
        let mut cat = catalog();
        let def = IndexDef::new(TableId(0), vec![0], vec![]);
        cat.create_index(def.clone()).unwrap();
        assert!(cat.find_index(&def).is_some());
        let other = IndexDef::new(TableId(0), vec![1], vec![]);
        assert!(cat.find_index(&other).is_none());
    }

    #[test]
    fn fork_empty_shares_tables_but_not_indexes() {
        let mut cat = catalog();
        cat.create_index(IndexDef::new(TableId(0), vec![0], vec![]))
            .unwrap();
        let fork = cat.fork_empty();
        assert_eq!(fork.all_indexes().count(), 0);
        assert_eq!(fork.tables().len(), 1);
        assert!(Arc::ptr_eq(&fork.tables()[0], &cat.tables()[0]));
    }

    #[test]
    fn table_lookup_by_name_errors_cleanly() {
        let cat = catalog();
        assert!(cat.table_by_name("t").is_ok());
        assert!(matches!(
            cat.table_by_name("missing"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn database_bytes_sums_heaps() {
        let cat = catalog();
        assert_eq!(cat.database_bytes(), 16 * 500);
    }

    #[test]
    fn ids_are_monotonic() {
        let mut cat = catalog();
        let a = cat
            .create_index(IndexDef::new(TableId(0), vec![0], vec![]))
            .unwrap();
        let b = cat
            .create_index(IndexDef::new(TableId(0), vec![1], vec![]))
            .unwrap();
        assert!(b.id.raw() > a.id.raw());
        cat.drop_index(a.id).unwrap();
        let c = cat
            .create_index(IndexDef::new(TableId(0), vec![0, 1], vec![]))
            .unwrap();
        assert!(c.id.raw() > b.id.raw(), "ids are never reused");
    }
}
