//! The greedy α-approximation oracle for super-arm selection (§IV).
//!
//! The super-arm reward is a sum of individual arm rewards — a submodular,
//! monotone objective under the knapsack (memory) constraint — so the
//! greedy oracle achieves the classic `1 − 1/e` guarantee (Nemhauser et
//! al.), which is what gives C2UCB its α-regret bound.
//!
//! Per the paper, selection alternates with *filtering* to encourage
//! diversity: negative-score arms are pruned up front; after each pick,
//! arms that no longer fit the remaining budget are dropped, arms whose
//! key prefix is subsumed by a selected arm are dropped, and — if the
//! selected arm is covering for a query — every other arm generated for
//! that query is dropped. Filtering is per-round only (it never mutates
//! the registry).

use dba_common::TemplateId;
use dba_storage::IndexDef;

/// One candidate entering the oracle.
#[derive(Debug, Clone)]
pub struct OracleInput {
    /// Arm-registry index (returned by selection).
    pub arm_idx: usize,
    /// UCB score (expected marginal reward).
    pub score: f64,
    pub size_bytes: u64,
    pub def: IndexDef,
    /// Templates that generated this arm.
    pub generated_by: Vec<TemplateId>,
    /// Templates this arm fully covers.
    pub covers: Vec<TemplateId>,
}

/// Greedy knapsack selection with the paper's filtering steps. Returns the
/// selected arm-registry indices in pick order.
pub fn greedy_select(mut candidates: Vec<OracleInput>, budget_bytes: u64) -> Vec<usize> {
    // Prune arms with non-positive or non-finite scores: non-positive ones
    // cannot improve the (monotone) objective and would only consume
    // memory; NaN/infinite ones are numerical accidents (e.g. a degenerate
    // reward scale) that must never abort the session or starve the budget.
    candidates.retain(|c| c.score.is_finite() && c.score > 0.0);

    let mut remaining = budget_bytes;
    let mut selected: Vec<usize> = Vec::new();
    let mut selected_defs: Vec<IndexDef> = Vec::new();

    // Arms that never fit are dropped immediately.
    candidates.retain(|c| c.size_bytes <= remaining);

    while !candidates.is_empty() {
        // Selection: highest score, ties broken by registry index for
        // determinism (C2UCB is deterministic up to tie-breaks, §V-C).
        let best = candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                // `total_cmp`: a stray NaN (already pruned above, but never
                // trust arithmetic) must not panic mid-session.
                a.score.total_cmp(&b.score).then(b.arm_idx.cmp(&a.arm_idx))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        let pick = candidates.swap_remove(best);
        remaining = remaining.saturating_sub(pick.size_bytes);
        selected.push(pick.arm_idx);

        // Filtering.
        let covered_templates = pick.covers.clone();
        selected_defs.push(pick.def.clone());
        let last = selected_defs.last().expect("just pushed");
        candidates.retain(|c| {
            if c.size_bytes > remaining {
                return false;
            }
            // Prefix-subsumed by the pick (pick serves this arm's seeks and
            // carries at least its leaf columns).
            if c.def.is_prefix_of(last) && last.covers(&c.def.leaf_columns()) {
                return false;
            }
            // Covering pick: drop all other arms generated for the covered
            // queries.
            if c.generated_by.iter().any(|t| covered_templates.contains(t)) {
                return false;
            }
            true
        });
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::TableId;

    fn input(
        arm_idx: usize,
        score: f64,
        size: u64,
        keys: Vec<u16>,
        include: Vec<u16>,
    ) -> OracleInput {
        OracleInput {
            arm_idx,
            score,
            size_bytes: size,
            def: IndexDef::new(TableId(0), keys, include),
            generated_by: vec![TemplateId(0)],
            covers: vec![],
        }
    }

    #[test]
    fn selects_by_score_within_budget() {
        let picks = greedy_select(
            vec![
                input(0, 5.0, 40, vec![0], vec![]),
                input(1, 9.0, 40, vec![1], vec![]),
                input(2, 7.0, 40, vec![2], vec![]),
            ],
            100,
        );
        assert_eq!(picks, vec![1, 2], "best two that fit");
    }

    #[test]
    fn prunes_non_positive_scores() {
        let picks = greedy_select(
            vec![
                input(0, -1.0, 10, vec![0], vec![]),
                input(1, 0.0, 10, vec![1], vec![]),
                input(2, 0.1, 10, vec![2], vec![]),
            ],
            100,
        );
        assert_eq!(picks, vec![2]);
    }

    #[test]
    fn budget_excludes_oversized_arms() {
        let picks = greedy_select(
            vec![
                input(0, 10.0, 200, vec![0], vec![]),
                input(1, 1.0, 50, vec![1], vec![]),
            ],
            100,
        );
        assert_eq!(picks, vec![1], "highest scorer does not fit");
    }

    #[test]
    fn prefix_subsumed_arms_are_filtered() {
        // (0,1) selected first; then (0) is redundant.
        let picks = greedy_select(
            vec![
                input(0, 9.0, 30, vec![0, 1], vec![]),
                input(1, 8.0, 10, vec![0], vec![]),
                input(2, 1.0, 10, vec![5], vec![]),
            ],
            100,
        );
        assert_eq!(picks, vec![0, 2]);
    }

    #[test]
    fn longer_extension_is_not_filtered() {
        // Selecting (0) must not filter (0,1): the longer index adds value.
        let picks = greedy_select(
            vec![
                input(0, 9.0, 10, vec![0], vec![]),
                input(1, 5.0, 30, vec![0, 1], vec![]),
            ],
            100,
        );
        assert_eq!(picks, vec![0, 1]);
    }

    #[test]
    fn covering_pick_filters_same_query_arms() {
        let mut covering = input(0, 9.0, 30, vec![0, 1], vec![2]);
        covering.covers = vec![TemplateId(3)];
        covering.generated_by = vec![TemplateId(3)];
        let mut same_query = input(1, 8.0, 10, vec![1], vec![]);
        same_query.generated_by = vec![TemplateId(3)];
        let mut other_query = input(2, 1.0, 10, vec![5], vec![]);
        other_query.generated_by = vec![TemplateId(4)];
        let picks = greedy_select(vec![covering, same_query, other_query], 100);
        assert_eq!(picks, vec![0, 2]);
    }

    #[test]
    fn non_finite_scores_are_pruned_not_panicking() {
        // Regression: a NaN score used to abort the whole session through
        // `partial_cmp().unwrap()`. Non-finite arms must be dropped and the
        // finite ones selected as usual.
        let picks = greedy_select(
            vec![
                input(0, f64::NAN, 10, vec![0], vec![]),
                input(1, f64::INFINITY, 10, vec![1], vec![]),
                input(2, f64::NEG_INFINITY, 10, vec![2], vec![]),
                input(3, 4.0, 10, vec![3], vec![]),
                input(4, 6.0, 10, vec![4], vec![]),
            ],
            100,
        );
        assert_eq!(picks, vec![4, 3], "only finite positive arms survive");
        // All-non-finite input selects nothing (and does not panic).
        let picks = greedy_select(
            vec![
                input(0, f64::NAN, 10, vec![0], vec![]),
                input(1, f64::INFINITY, 10, vec![1], vec![]),
            ],
            100,
        );
        assert!(picks.is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_arm_index() {
        let picks = greedy_select(
            vec![
                input(7, 5.0, 10, vec![0], vec![]),
                input(3, 5.0, 10, vec![1], vec![]),
            ],
            10,
        );
        assert_eq!(picks, vec![3], "lower registry index wins ties");
    }

    #[test]
    fn empty_input_and_zero_budget() {
        assert!(greedy_select(vec![], 100).is_empty());
        let picks = greedy_select(vec![input(0, 5.0, 10, vec![0], vec![])], 0);
        assert!(picks.is_empty());
    }

    #[test]
    fn budget_tracks_cumulative_size() {
        let picks = greedy_select(
            vec![
                input(0, 9.0, 60, vec![0], vec![]),
                input(1, 8.0, 60, vec![1], vec![]),
                input(2, 7.0, 39, vec![2], vec![]),
            ],
            100,
        );
        // After the 60-byte pick, only 40 remain: arm 1 no longer fits.
        assert_eq!(picks, vec![0, 2]);
    }
}
