//! Minimal dense linear algebra for ridge-regression bandits.
//!
//! C2UCB needs exactly three operations (Algorithm 1): rank-one updates of
//! the scatter matrix `V`, solving `θ = V⁻¹ b`, and quadratic forms
//! `x' V⁻¹ x` for the confidence widths. We maintain `V⁻¹` directly via
//! Sherman–Morrison (O(d²) per update) and keep a Cholesky-based solver for
//! verification and for rebuilding the inverse after forgetting decays.
//! Dimensions are modest (d = schema columns + derived features, a few
//! hundred at most), so dense storage is appropriate — no external linear
//! algebra crate is needed.

// Index-based loops mirror the matrix equations they implement.
#![allow(clippy::needless_range_loop)]

/// Dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    d: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(d: usize) -> Matrix {
        Matrix {
            d,
            data: vec![0.0; d * d],
        }
    }

    /// `λ·I`.
    pub fn scaled_identity(d: usize, lambda: f64) -> Matrix {
        let mut m = Matrix::zeros(d);
        for i in 0..d {
            m.data[i * d + i] = lambda;
        }
        m
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.d + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.d + j] = v;
    }

    /// `self += scale · x xᵀ`.
    pub fn rank_one_update(&mut self, x: &[f64], scale: f64) {
        assert_eq!(x.len(), self.d);
        for i in 0..self.d {
            let xi = x[i] * scale;
            if xi == 0.0 {
                continue;
            }
            let row = &mut self.data[i * self.d..(i + 1) * self.d];
            for (j, &xj) in x.iter().enumerate() {
                row[j] += xi * xj;
            }
        }
    }

    /// Matrix-vector product `self · x`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.mat_vec_into(x, &mut out);
        out
    }

    /// [`mat_vec`](Self::mat_vec) into a caller-owned buffer, so hot loops
    /// (Sherman–Morrison updates, per-arm scoring) reuse one allocation.
    /// Identical floating-point operation order to a fresh computation.
    pub fn mat_vec_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.d);
        out.clear();
        out.resize(self.d, 0.0);
        for i in 0..self.d {
            let row = &self.data[i * self.d..(i + 1) * self.d];
            out[i] = dot(row, x);
        }
    }

    /// Quadratic form `xᵀ · self · x`.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        dot(&self.mat_vec(x), x)
    }

    /// Cholesky factorisation (`self = L Lᵀ`) for a symmetric positive
    /// definite matrix. Returns `None` if not positive definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        let d = self.d;
        let mut l = Matrix::zeros(d);
        for i in 0..d {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }

    /// Solve `self · y = b` via Cholesky (SPD matrices only).
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        let l = self.cholesky()?;
        let d = self.d;
        // Forward: L z = b.
        let mut z = vec![0.0; d];
        for i in 0..d {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l.get(i, k) * z[k];
            }
            z[i] = sum / l.get(i, i);
        }
        // Backward: Lᵀ y = z.
        let mut y = vec![0.0; d];
        for i in (0..d).rev() {
            let mut sum = z[i];
            for k in (i + 1)..d {
                sum -= l.get(k, i) * y[k];
            }
            y[i] = sum / l.get(i, i);
        }
        Some(y)
    }

    /// Full inverse via Cholesky column solves (SPD matrices only).
    pub fn inverse_spd(&self) -> Option<Matrix> {
        let d = self.d;
        let mut inv = Matrix::zeros(d);
        let mut e = vec![0.0; d];
        for j in 0..d {
            e[j] = 1.0;
            let col = self.solve_spd(&e)?;
            e[j] = 0.0;
            for i in 0..d {
                inv.set(i, j, col[i]);
            }
        }
        Some(inv)
    }

    /// `self · M`.
    pub fn mat_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.d, other.d);
        let d = self.d;
        let mut out = Matrix::zeros(d);
        for i in 0..d {
            for k in 0..d {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..d {
                    out.data[i * d + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Largest absolute entry difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Maintains `V` and `V⁻¹` simultaneously under rank-one updates
/// (Sherman–Morrison) and uniform decay (forgetting), with periodic exact
/// re-inversion to bound numerical drift.
#[derive(Debug, Clone)]
pub struct ShermanMorrisonInverse {
    v: Matrix,
    v_inv: Matrix,
    updates_since_refresh: usize,
    /// Exactly re-invert after this many incremental updates.
    refresh_every: usize,
    /// Exact re-inversions performed (periodic, staged-batch and
    /// decay-triggered alike).
    refreshes: u64,
    /// Decay (forgetting) events applied.
    decays: u64,
    /// Reusable `V⁻¹x` buffer for [`add_observation`](Self::add_observation).
    scratch: Vec<f64>,
}

impl ShermanMorrisonInverse {
    pub fn new(d: usize, lambda: f64) -> Self {
        Self::with_refresh_every(d, lambda, 512)
    }

    /// Like [`new`](Self::new) with an explicit re-inversion period.
    /// Smaller periods trade update throughput for tighter numerical
    /// drift bounds; `usize::MAX` disables periodic refreshes entirely.
    pub fn with_refresh_every(d: usize, lambda: f64, refresh_every: usize) -> Self {
        assert!(lambda > 0.0, "ridge parameter must be positive");
        assert!(refresh_every > 0, "refresh period must be positive");
        ShermanMorrisonInverse {
            v: Matrix::scaled_identity(d, lambda),
            v_inv: Matrix::scaled_identity(d, 1.0 / lambda),
            updates_since_refresh: 0,
            refresh_every,
            refreshes: 0,
            decays: 0,
            scratch: Vec::new(),
        }
    }

    /// `(exact re-inversions, decay events)` since construction.
    #[inline]
    pub fn counters(&self) -> (u64, u64) {
        (self.refreshes, self.decays)
    }

    #[inline]
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    #[inline]
    pub fn inv(&self) -> &Matrix {
        &self.v_inv
    }

    /// `V += x xᵀ`; `V⁻¹` updated by Sherman–Morrison:
    /// `V⁻¹ ← V⁻¹ − (V⁻¹ x)(V⁻¹ x)ᵀ / (1 + xᵀ V⁻¹ x)`.
    pub fn add_observation(&mut self, x: &[f64]) {
        self.v.rank_one_update(x, 1.0);
        // `V⁻¹x` lands in the reusable scratch buffer — same FP operation
        // order as an owned `mat_vec`, zero per-call allocation once warm.
        let mut vx = std::mem::take(&mut self.scratch);
        self.v_inv.mat_vec_into(x, &mut vx);
        let denom = 1.0 + dot(&vx, x);
        debug_assert!(denom > 0.0, "V must stay positive definite");
        self.v_inv.rank_one_update(&vx, -1.0 / denom);
        self.scratch = vx;
        self.updates_since_refresh += 1;
        if self.updates_since_refresh >= self.refresh_every {
            self.refresh();
        }
    }

    /// Stage `V += x xᵀ` (sparse, O(nnz²)) *without* touching `V⁻¹`. Used
    /// to batch a window's observations into one scatter update; callers
    /// must [`refresh`](Self::refresh) once the batch is complete, before
    /// the inverse is read again.
    pub fn stage_sparse_observation(&mut self, x: &SparseVec) {
        self.v.rank_one_update_sparse(x, 1.0);
        self.updates_since_refresh += 1;
    }

    /// Decay towards the prior: `V ← γ·V + (1−γ)·λ·I` (used by the tuner's
    /// forgetting on workload shifts). Requires exact re-inversion.
    pub fn decay(&mut self, gamma: f64, lambda: f64) {
        assert!((0.0..=1.0).contains(&gamma));
        let d = self.v.dim();
        for i in 0..d {
            for j in 0..d {
                let mut v = self.v.get(i, j) * gamma;
                if i == j {
                    v += (1.0 - gamma) * lambda;
                }
                self.v.set(i, j, v);
            }
        }
        self.decays += 1;
        self.refresh();
    }

    /// Exact re-inversion of the tracked `V`.
    pub fn refresh(&mut self) {
        self.v_inv = self
            .v
            .inverse_spd()
            .expect("V is positive definite by construction");
        self.updates_since_refresh = 0;
        self.refreshes += 1;
    }

    /// Confidence width squared: `xᵀ V⁻¹ x`.
    #[inline]
    pub fn width_sq(&self, x: &[f64]) -> f64 {
        self.v_inv.quad_form(x).max(0.0)
    }
}

/// Sparse vector: sorted `(dimension, value)` pairs. Arm contexts have only
/// a handful of non-zero entries (prefix-encoded key columns + 3 derived
/// features) while `d` spans every schema column, so sparse scoring turns
/// the per-arm UCB from O(d²) into O(nnz²).
pub type SparseVec = Vec<(usize, f64)>;

/// Densify a sparse vector.
pub fn to_dense(x: &SparseVec, d: usize) -> Vec<f64> {
    let mut out = vec![0.0; d];
    for &(i, v) in x {
        out[i] = v;
    }
    out
}

/// Sparse dot with a dense vector.
#[inline]
pub fn dot_sparse(dense: &[f64], x: &SparseVec) -> f64 {
    x.iter().map(|&(i, v)| dense[i] * v).sum()
}

impl Matrix {
    /// `self += scale · x xᵀ` touching only the O(nnz²) cells a sparse
    /// vector can reach.
    pub fn rank_one_update_sparse(&mut self, x: &SparseVec, scale: f64) {
        for &(i, vi) in x {
            debug_assert!(i < self.d);
            let si = vi * scale;
            for &(j, vj) in x {
                self.data[i * self.d + j] += si * vj;
            }
        }
    }

    /// Quadratic form with a sparse vector: `Σᵢⱼ xᵢ xⱼ M[i,j]`.
    pub fn quad_form_sparse(&self, x: &SparseVec) -> f64 {
        let mut acc = 0.0;
        for &(i, vi) in x {
            for &(j, vj) in x {
                acc += vi * vj * self.get(i, j);
            }
        }
        acc
    }
}

#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(rng: &mut StdRng, d: usize) -> Vec<f64> {
        (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn identity_solve_roundtrip() {
        let m = Matrix::scaled_identity(4, 2.0);
        let b = vec![2.0, 4.0, 6.0, 8.0];
        let y = m.solve_spd(&b).unwrap();
        for (got, want) in y.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((got - want).abs() < 1e-12, "{y:?}");
        }
    }

    #[test]
    fn cholesky_detects_non_spd() {
        let mut m = Matrix::scaled_identity(2, 1.0);
        m.set(0, 0, -1.0);
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = 8;
        let mut m = Matrix::scaled_identity(d, 0.5);
        for _ in 0..20 {
            let x = random_vec(&mut rng, d);
            m.rank_one_update(&x, 1.0);
        }
        let inv = m.inverse_spd().unwrap();
        let prod = m.mat_mul(&inv);
        let id = Matrix::scaled_identity(d, 1.0);
        assert!(prod.max_abs_diff(&id) < 1e-8, "M·M⁻¹ ≉ I");
    }

    #[test]
    fn sherman_morrison_tracks_exact_inverse() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = 6;
        let mut sm = ShermanMorrisonInverse::new(d, 1.5);
        for _ in 0..50 {
            let x = random_vec(&mut rng, d);
            sm.add_observation(&x);
        }
        let exact = sm.v().inverse_spd().unwrap();
        assert!(sm.inv().max_abs_diff(&exact) < 1e-8);
    }

    #[test]
    fn width_shrinks_along_observed_direction() {
        let d = 4;
        let mut sm = ShermanMorrisonInverse::new(d, 1.0);
        let x = vec![1.0, 0.0, 0.0, 0.0];
        let before = sm.width_sq(&x);
        for _ in 0..10 {
            sm.add_observation(&x);
        }
        let after = sm.width_sq(&x);
        assert!(
            after < before / 5.0,
            "width should shrink: {before} → {after}"
        );
        // An orthogonal direction keeps its width.
        let y = vec![0.0, 1.0, 0.0, 0.0];
        assert!((sm.width_sq(&y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decay_moves_v_towards_prior() {
        let d = 3;
        let mut sm = ShermanMorrisonInverse::new(d, 1.0);
        sm.add_observation(&[1.0, 2.0, 3.0]);
        sm.decay(0.0, 1.0); // full forgetting
        let prior = Matrix::scaled_identity(d, 1.0);
        assert!(sm.v().max_abs_diff(&prior) < 1e-12);
        assert!(sm.inv().max_abs_diff(&prior) < 1e-12);
    }

    #[test]
    fn partial_decay_keeps_positive_definiteness() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = 5;
        let mut sm = ShermanMorrisonInverse::new(d, 2.0);
        for _ in 0..30 {
            let x = random_vec(&mut rng, d);
            sm.add_observation(&x);
        }
        sm.decay(0.5, 2.0);
        assert!(sm.v().cholesky().is_some());
        // Inverse still consistent.
        let exact = sm.v().inverse_spd().unwrap();
        assert!(sm.inv().max_abs_diff(&exact) < 1e-8);
    }

    #[test]
    fn quad_form_matches_manual() {
        let mut m = Matrix::scaled_identity(2, 1.0);
        m.rank_one_update(&[1.0, 1.0], 1.0);
        // M = [[2,1],[1,2]]; x=[1,2] → xᵀMx = 2+2+2+8 = 14? compute:
        // Mx = [2·1+1·2, 1·1+2·2] = [4,5]; xᵀ(Mx)=4+10=14.
        assert!((m.quad_form(&[1.0, 2.0]) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn mat_vec_into_matches_owned_bitwise() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = 7;
        let mut m = Matrix::scaled_identity(d, 0.3);
        for _ in 0..10 {
            let x = random_vec(&mut rng, d);
            m.rank_one_update(&x, 1.0);
        }
        let x = random_vec(&mut rng, d);
        let owned = m.mat_vec(&x);
        let mut buf = vec![99.0; 2]; // wrong size and stale contents
        m.mat_vec_into(&x, &mut buf);
        assert_eq!(owned, buf, "buffer reuse must not change a single bit");
    }

    #[test]
    fn sparse_rank_one_matches_dense() {
        let d = 6;
        let sparse: SparseVec = vec![(1, 0.5), (4, -2.0)];
        let dense = to_dense(&sparse, d);
        let mut a = Matrix::scaled_identity(d, 1.0);
        let mut b = a.clone();
        a.rank_one_update(&dense, 0.7);
        b.rank_one_update_sparse(&sparse, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn staged_batch_plus_refresh_matches_sequential_v() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = 5;
        let mut seq = ShermanMorrisonInverse::new(d, 1.0);
        let mut batched = ShermanMorrisonInverse::new(d, 1.0);
        let xs: Vec<SparseVec> = (0..8)
            .map(|_| {
                // Distinct, sorted dimensions (SparseVec's invariant).
                vec![
                    (rng.gen_range(0..2), rng.gen_range(-1.0..1.0)),
                    (rng.gen_range(2..d), 1.0),
                ]
            })
            .collect();
        for x in &xs {
            seq.add_observation(&to_dense(x, d));
            batched.stage_sparse_observation(x);
        }
        batched.refresh();
        assert!(seq.v().max_abs_diff(batched.v()) < 1e-9);
        assert!(seq.inv().max_abs_diff(batched.inv()) < 1e-8);
    }

    #[test]
    fn refresh_and_decay_counters_tick() {
        let d = 3;
        let mut sm = ShermanMorrisonInverse::with_refresh_every(d, 1.0, 2);
        assert_eq!(sm.counters(), (0, 0));
        sm.add_observation(&[1.0, 0.0, 0.0]);
        assert_eq!(sm.counters(), (0, 0));
        sm.add_observation(&[0.0, 1.0, 0.0]);
        assert_eq!(sm.counters(), (1, 0), "periodic refresh at period 2");
        sm.decay(0.5, 1.0);
        assert_eq!(sm.counters(), (2, 1), "decay re-inverts and counts");
    }

    #[test]
    fn periodic_refresh_bounds_drift() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = 4;
        let mut sm = ShermanMorrisonInverse::new(d, 1.0);
        sm.refresh_every = 16;
        for _ in 0..100 {
            let x = random_vec(&mut rng, d);
            sm.add_observation(&x);
        }
        let exact = sm.v().inverse_spd().unwrap();
        assert!(sm.inv().max_abs_diff(&exact) < 1e-9);
    }
}
