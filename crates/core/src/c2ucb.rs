//! The C2UCB algorithm (Qin, Chen & Zhu, SDM 2014; Algorithm 1 in the
//! paper, with the regret analysis corrected by Oetomo et al. 2019).
//!
//! Arms' expected scores are modelled as linear in their contexts:
//! `r_t(i) = θ'x_t(i) + ε`. All learned knowledge lives in the shared
//! estimate of `θ` (ridge regression over played arms), which is what lets
//! the bandit score *never-played* arms — the property §V-B3 credits for
//! MAB's efficient exploration.

use serde::{Deserialize, Serialize};

use crate::linalg::{dot, ShermanMorrisonInverse};

/// Exploration-boost schedule `α_t` (Algorithm 1 takes `α_1..α_T` as
/// input).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum AlphaSchedule {
    /// Fixed boost: the paper's practical choice ("α which controls
    /// exploration").
    Constant(f64),
    /// `α_t = α₀ · √(ln(1 + t))` — grows slowly like the theoretical rate.
    SqrtLog(f64),
    /// `α_t = α₀ / √t` — aggressive decay for quickly-stabilising
    /// workloads.
    DecaySqrt(f64),
}

impl AlphaSchedule {
    pub fn alpha(&self, round: usize) -> f64 {
        let t = round.max(1) as f64;
        match *self {
            AlphaSchedule::Constant(a) => a,
            AlphaSchedule::SqrtLog(a0) => a0 * (1.0 + t).ln().sqrt(),
            AlphaSchedule::DecaySqrt(a0) => a0 / t.sqrt(),
        }
    }
}

/// C2UCB hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct C2UcbConfig {
    /// Ridge regularisation λ (V₀ = λI). Becomes irrelevant as rounds
    /// accumulate (§V-C).
    pub lambda: f64,
    pub alpha: AlphaSchedule,
    /// Exactly re-invert `V⁻¹` after this many incremental
    /// Sherman–Morrison updates (numerical-drift bound). The default 512
    /// matches the previous hard-coded period.
    #[serde(default = "default_refresh_every")]
    pub refresh_every: usize,
}

fn default_refresh_every() -> usize {
    512
}

impl Default for C2UcbConfig {
    fn default() -> Self {
        C2UcbConfig {
            lambda: 1.0,
            // With rewards normalised to ~1 per useful query, a boost of a
            // few units lets structurally different configurations (which
            // compete for the same memory budget) get sampled; the tuner's
            // creation-amortisation penalty provides the churn damping, so
            // exploration pressure can stay constant (the width term itself
            // decays as observations accumulate, which is what "reduces
            // exploration with time", §V-B1).
            alpha: AlphaSchedule::Constant(2.5),
            refresh_every: default_refresh_every(),
        }
    }
}

/// The bandit state: `V_t`, `b_t`, round counter.
#[derive(Debug, Clone)]
pub struct C2Ucb {
    config: C2UcbConfig,
    dim: usize,
    scatter: ShermanMorrisonInverse,
    b: Vec<f64>,
    round: usize,
    /// Bumped whenever `θ̂`/`V⁻¹` change (observations or forgetting);
    /// invalidates the fingerprint score cache.
    model_version: u64,
    /// Context-fingerprint → UCB score memo, valid for one model version.
    score_cache: std::collections::HashMap<u64, f64>,
    score_cache_version: u64,
}

impl C2Ucb {
    pub fn new(dim: usize, config: C2UcbConfig) -> Self {
        C2Ucb {
            config,
            dim,
            scatter: ShermanMorrisonInverse::with_refresh_every(
                dim,
                config.lambda,
                config.refresh_every,
            ),
            b: vec![0.0; dim],
            round: 0,
            model_version: 0,
            score_cache: std::collections::HashMap::new(),
            score_cache_version: 0,
        }
    }

    /// `(exact re-inversions, decay events)` of the scatter inverse —
    /// surfaced per round in session records.
    #[inline]
    pub fn maintenance_counters(&self) -> (u64, u64) {
        self.scatter.counters()
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current ridge estimate `θ̂ = V⁻¹ b` (Algorithm 1 line 5).
    pub fn theta(&self) -> Vec<f64> {
        self.scatter.inv().mat_vec(&self.b)
    }

    /// Expected score of one context under the current model (no boost).
    pub fn mean_score(&self, x: &[f64]) -> f64 {
        dot(&self.theta(), x)
    }

    /// UCB scores for a batch of contexts (Eq. 1):
    /// `r̂_t(i) = θ̂'x_t(i) + α_t √(x_t(i)' V⁻¹ x_t(i))`.
    pub fn ucb_scores(&self, contexts: &[Vec<f64>]) -> Vec<f64> {
        let theta = self.theta();
        let alpha = self.config.alpha.alpha(self.round + 1);
        contexts
            .iter()
            .map(|x| dot(&theta, x) + alpha * self.scatter.width_sq(x).sqrt())
            .collect()
    }

    /// Exploration width (the boost term without α) for one context.
    pub fn width(&self, x: &[f64]) -> f64 {
        self.scatter.width_sq(x).sqrt()
    }

    /// Sparse batch scoring: same results as [`Self::ucb_scores`] but
    /// O(nnz²) per arm instead of O(d²).
    pub fn ucb_scores_sparse(&self, contexts: &[crate::linalg::SparseVec]) -> Vec<f64> {
        let theta = self.theta();
        let alpha = self.config.alpha.alpha(self.round + 1);
        contexts
            .iter()
            .map(|x| {
                let mean = crate::linalg::dot_sparse(&theta, x);
                let width_sq = self.scatter.inv().quad_form_sparse(x).max(0.0);
                mean + alpha * width_sq.sqrt()
            })
            .collect()
    }

    /// Sparse batch scoring through the fingerprint memo: arms whose
    /// context is unchanged since the model last moved are not re-scored.
    /// Numerically this can differ from [`Self::ucb_scores_sparse`] only
    /// through (astronomically unlikely) 64-bit fingerprint collisions, so
    /// the streaming fast path opts in explicitly.
    pub fn ucb_scores_sparse_cached(&mut self, contexts: &[crate::linalg::SparseVec]) -> Vec<f64> {
        if self.score_cache_version != self.model_version {
            self.score_cache.clear();
            self.score_cache_version = self.model_version;
        }
        let alpha = self.config.alpha.alpha(self.round + 1);
        let mut theta: Option<Vec<f64>> = None;
        contexts
            .iter()
            .map(|x| {
                let fp = context_fingerprint(x);
                if let Some(&score) = self.score_cache.get(&fp) {
                    return score;
                }
                let theta = theta.get_or_insert_with(|| self.scatter.inv().mat_vec(&self.b));
                let mean = crate::linalg::dot_sparse(theta, x);
                let width_sq = self.scatter.inv().quad_form_sparse(x).max(0.0);
                let score = mean + alpha * width_sq.sqrt();
                self.score_cache.insert(fp, score);
                score
            })
            .collect()
    }

    /// Sparse update: densifies each context for the Sherman–Morrison
    /// update (plays per round are few, so this is cheap).
    pub fn update_sparse(&mut self, plays: &[(crate::linalg::SparseVec, f64)]) {
        let dense: Vec<(Vec<f64>, f64)> = plays
            .iter()
            .map(|(x, r)| (crate::linalg::to_dense(x, self.dim), *r))
            .collect();
        self.update(&dense);
    }

    /// Batched sparse update: the window's observations are staged into
    /// `V` as O(nnz²) sparse scatter additions and the inverse is rebuilt
    /// *once*, instead of one dense densify + mat-vec + rank-one per play.
    /// `b` accumulates over non-zero entries only. Same model as
    /// [`Self::update_sparse`] up to floating-point accumulation order
    /// (the batch path's inverse is the *exact* one); the round advances
    /// identically.
    pub fn update_sparse_batched(&mut self, plays: &[(crate::linalg::SparseVec, f64)]) {
        if !plays.is_empty() {
            for (x, r) in plays {
                self.scatter.stage_sparse_observation(x);
                for &(i, v) in x {
                    debug_assert!(i < self.dim);
                    self.b[i] += r * v;
                }
            }
            self.scatter.refresh();
            self.model_version += 1;
        }
        self.round += 1;
    }

    /// Register the played arms' observed rewards (Algorithm 1 lines
    /// 11-13): `V += Σ x x'`, `b += Σ r·x`, and advance the round.
    pub fn update(&mut self, plays: &[(Vec<f64>, f64)]) {
        for (x, r) in plays {
            debug_assert_eq!(x.len(), self.dim);
            self.scatter.add_observation(x);
            for (bi, xi) in self.b.iter_mut().zip(x) {
                *bi += r * xi;
            }
        }
        if !plays.is_empty() {
            self.model_version += 1;
        }
        self.round += 1;
    }

    /// Forget a fraction of accumulated knowledge: `V ← γV + (1−γ)λI`,
    /// `b ← γb`. Used on workload shifts; `gamma = 1` is a no-op,
    /// `gamma = 0` resets to the prior.
    pub fn forget(&mut self, gamma: f64) {
        assert!((0.0..=1.0).contains(&gamma));
        if gamma >= 1.0 {
            return;
        }
        self.scatter.decay(gamma, self.config.lambda);
        for bi in &mut self.b {
            *bi *= gamma;
        }
        self.model_version += 1;
    }
}

/// FNV-1a over a sparse context's `(dimension, value-bits)` stream: the
/// within-window identity key for skip-rescoring.
pub fn context_fingerprint(x: &crate::linalg::SparseVec) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &(i, v) in x {
        for byte in (i as u64).to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
        for byte in v.to_bits().to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn config(alpha: f64) -> C2UcbConfig {
        C2UcbConfig {
            lambda: 1.0,
            alpha: AlphaSchedule::Constant(alpha),
            ..C2UcbConfig::default()
        }
    }

    #[test]
    fn learns_a_linear_reward_model() {
        // True θ = (2, -1, 0.5); rewards are exactly linear.
        let theta_true = [2.0, -1.0, 0.5];
        let mut bandit = C2Ucb::new(3, config(0.5));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1500 {
            let x: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let r = dot(&theta_true, &x);
            bandit.update(&[(x, r)]);
        }
        let theta = bandit.theta();
        for (est, truth) in theta.iter().zip(&theta_true) {
            assert!(
                (est - truth).abs() < 0.05,
                "θ̂ {theta:?} should approach {theta_true:?}"
            );
        }
    }

    #[test]
    fn ucb_prefers_unexplored_direction_at_equal_means() {
        let mut bandit = C2Ucb::new(2, config(1.0));
        // Observe only dimension 0.
        for _ in 0..50 {
            bandit.update(&[(vec![1.0, 0.0], 1.0)]);
        }
        let scores = bandit.ucb_scores(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        // Mean of dim0 arm is ~1.0, dim1 arm is 0. But the boost for dim1
        // is maximal (1.0) while dim0's has collapsed.
        let width0 = bandit.width(&[1.0, 0.0]);
        let width1 = bandit.width(&[0.0, 1.0]);
        assert!(width1 > width0 * 5.0);
        assert!(
            scores[0] > scores[1],
            "exploitation should still dominate here"
        );
    }

    #[test]
    fn exploration_boost_decreases_with_observations() {
        let mut bandit = C2Ucb::new(2, config(1.0));
        let x = vec![0.7, 0.3];
        let w_before = bandit.width(&x);
        for _ in 0..20 {
            bandit.update(&[(x.clone(), 0.5)]);
        }
        let w_after = bandit.width(&x);
        assert!(w_after < w_before / 3.0);
    }

    #[test]
    fn generalises_to_unseen_arms() {
        // Train on two contexts, score a third never-played one: the shared
        // θ makes its mean sensible (weight sharing, §V-B3).
        let mut bandit = C2Ucb::new(2, config(0.0));
        for _ in 0..100 {
            bandit.update(&[(vec![1.0, 0.0], 2.0), (vec![0.0, 1.0], -1.0)]);
        }
        let unseen = vec![0.5, 0.5];
        let mean = bandit.mean_score(&unseen);
        assert!(
            (mean - 0.5).abs() < 0.1,
            "0.5·2 + 0.5·(-1) = 0.5, got {mean}"
        );
    }

    #[test]
    fn forget_resets_towards_prior() {
        let mut bandit = C2Ucb::new(2, config(1.0));
        for _ in 0..50 {
            bandit.update(&[(vec![1.0, 0.0], 3.0)]);
        }
        assert!(bandit.mean_score(&[1.0, 0.0]) > 2.0);
        bandit.forget(0.0);
        assert!(bandit.mean_score(&[1.0, 0.0]).abs() < 1e-9);
        // Width restored to the prior level.
        assert!((bandit.width(&[1.0, 0.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_forget_retains_some_signal() {
        let mut bandit = C2Ucb::new(2, config(1.0));
        for _ in 0..50 {
            bandit.update(&[(vec![1.0, 0.0], 3.0)]);
        }
        let before = bandit.mean_score(&[1.0, 0.0]);
        bandit.forget(0.5);
        let after = bandit.mean_score(&[1.0, 0.0]);
        assert!(after > 0.5 * before && after < before);
    }

    #[test]
    fn alpha_schedules() {
        assert_eq!(AlphaSchedule::Constant(2.0).alpha(10), 2.0);
        let s1 = AlphaSchedule::SqrtLog(1.0);
        assert!(s1.alpha(100) > s1.alpha(1));
        let s2 = AlphaSchedule::DecaySqrt(1.0);
        assert!(s2.alpha(100) < s2.alpha(1));
    }

    #[test]
    fn round_counter_advances_per_update_batch() {
        let mut bandit = C2Ucb::new(2, config(1.0));
        assert_eq!(bandit.round(), 0);
        bandit.update(&[(vec![1.0, 0.0], 1.0), (vec![0.0, 1.0], 1.0)]);
        assert_eq!(bandit.round(), 1, "one round per super-arm update");
    }

    #[test]
    fn cached_sparse_scores_match_uncached() {
        let mut bandit = C2Ucb::new(4, config(1.5));
        let plays: Vec<(crate::linalg::SparseVec, f64)> =
            vec![(vec![(0, 1.0), (2, 0.5)], 2.0), (vec![(1, 0.8)], -0.5)];
        bandit.update_sparse(&plays);
        let contexts: Vec<crate::linalg::SparseVec> = vec![
            vec![(0, 1.0), (3, 0.2)],
            vec![(1, 0.8)],
            vec![(0, 1.0), (3, 0.2)], // repeat → served from the memo
        ];
        let plain = bandit.ucb_scores_sparse(&contexts);
        let cached = bandit.ucb_scores_sparse(&contexts);
        assert_eq!(plain, cached);
        let memoed = bandit.ucb_scores_sparse_cached(&contexts);
        assert_eq!(plain, memoed, "memoised scores must be bit-identical");
        // The memo survives rounds where nothing was played but is
        // invalidated the moment the model moves.
        bandit.update_sparse(&[]);
        assert_eq!(bandit.ucb_scores_sparse_cached(&contexts), plain);
        bandit.update_sparse(&plays);
        let after = bandit.ucb_scores_sparse_cached(&contexts);
        assert_ne!(after, plain, "new observations must re-score");
        assert_eq!(after, bandit.ucb_scores_sparse(&contexts));
    }

    #[test]
    fn batched_update_tracks_sequential_model() {
        let plays: Vec<(crate::linalg::SparseVec, f64)> = vec![
            (vec![(0, 1.0), (2, 0.5)], 2.0),
            (vec![(1, 0.8), (3, -0.3)], -0.5),
            (vec![(0, 0.4)], 1.0),
        ];
        let mut seq = C2Ucb::new(4, config(1.0));
        let mut batched = C2Ucb::new(4, config(1.0));
        for _ in 0..5 {
            seq.update_sparse(&plays);
            batched.update_sparse_batched(&plays);
        }
        assert_eq!(seq.round(), batched.round());
        let contexts: Vec<crate::linalg::SparseVec> =
            vec![vec![(0, 1.0)], vec![(1, 1.0), (3, 0.5)], vec![(2, 1.0)]];
        let a = seq.ucb_scores_sparse(&contexts);
        let b = batched.ucb_scores_sparse(&contexts);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "batched diverged: {a:?} vs {b:?}");
        }
        let (refreshes, _) = batched.maintenance_counters();
        assert_eq!(refreshes, 5, "one exact re-inversion per batched window");
    }

    #[test]
    fn refresh_every_is_configurable_and_counted() {
        let mut cfg = config(1.0);
        cfg.refresh_every = 2;
        let mut bandit = C2Ucb::new(2, cfg);
        for _ in 0..4 {
            bandit.update(&[(vec![1.0, 0.2], 1.0)]);
        }
        let (refreshes, decays) = bandit.maintenance_counters();
        assert_eq!((refreshes, decays), (2, 0));
        bandit.forget(0.5);
        let (refreshes, decays) = bandit.maintenance_counters();
        assert_eq!((refreshes, decays), (3, 1), "forgetting re-inverts");
    }

    #[test]
    fn fingerprints_separate_distinct_contexts() {
        let a: crate::linalg::SparseVec = vec![(0, 1.0), (2, 0.5)];
        let b: crate::linalg::SparseVec = vec![(0, 1.0), (2, 0.5000001)];
        let c: crate::linalg::SparseVec = vec![(2, 0.5), (0, 1.0)];
        assert_eq!(context_fingerprint(&a), context_fingerprint(&a));
        assert_ne!(context_fingerprint(&a), context_fingerprint(&b));
        assert_ne!(
            context_fingerprint(&a),
            context_fingerprint(&c),
            "order-sensitive"
        );
    }

    #[test]
    fn deterministic_scoring() {
        let mk = || {
            let mut b = C2Ucb::new(3, config(1.0));
            b.update(&[(vec![1.0, 0.5, 0.2], 2.0)]);
            b.ucb_scores(&[vec![0.3, 0.3, 0.3], vec![1.0, 0.0, 0.0]])
        };
        assert_eq!(mk(), mk(), "C2UCB is deterministic (§V-C volatility)");
    }
}
