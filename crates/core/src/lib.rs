//! The paper's contribution: a multi-armed-bandit framework for online
//! index selection (Perera et al., "DBA bandits", ICDE 2021).
//!
//! The pipeline per round (paper Fig. 1 / Algorithm 2):
//!
//! 1. [`query_store`] summarises the observed workload into templates and
//!    selects the queries of interest (QoI);
//! 2. [`arms`] generates candidate indexes from QoI predicates —
//!    combinations and permutations of predicate columns, with and without
//!    payload inclusion;
//! 3. [`context`] builds each arm's feature vector: the indexed-column
//!    prefix encoding (Part 1) and derived statistics (Part 2);
//! 4. [`c2ucb`] scores arms with upper confidence bounds over a shared
//!    linear model (Algorithm 1, Eq. 1);
//! 5. [`oracle`] greedily selects a super arm (configuration) under the
//!    memory budget, with prefix/covering filtering;
//! 6. the configuration is materialised, the workload executes, and
//!    [`reward`] shapes observed execution statistics into per-arm rewards
//!    that update the bandit.
//!
//! [`tuner::MabTuner`] ties the steps together and implements the
//! [`Advisor`] interface that tuning sessions drive.

pub mod advisor;
pub mod arms;
pub mod c2ucb;
pub mod context;
pub mod linalg;
pub mod oracle;
pub mod query_store;
pub mod reward;
pub mod tuner;

pub use advisor::{
    reconcile_external_drops, Advisor, AdvisorCost, DataChange, DegradeLevel, RoundContext,
    TableChange, WindowMode,
};
pub use arms::{Arm, ArmGenConfig, ArmRegistry};
pub use c2ucb::{AlphaSchedule, C2Ucb, C2UcbConfig};
pub use context::{ContextBuilder, ContextLayout};
pub use oracle::{greedy_select, OracleInput};
pub use query_store::{QueryStore, TemplateStats};
pub use reward::RewardShaper;
pub use tuner::{MabConfig, MabTuner, RoundOutcome};
