//! Context engineering (§IV, Figure 1).
//!
//! Contexts have two parts:
//!
//! * **Part 1 — indexed column prefix.** One component per schema column.
//!   A component takes value `10^-j` where `j` is the column's (0-based)
//!   position in the index key, *provided* the column is a workload
//!   predicate column this round; payload-only columns contribute 0. This
//!   encodes the prefix-similarity structure of indexes that bags-of-words
//!   cannot ("similarity of arms depends on having similar column
//!   prefixes").
//! * **Part 2 — derived statistics.** A covering-index flag, the estimated
//!   index size as a fraction of database size (0 once materialised — the
//!   remaining creation cost is what matters), and the arm's historical
//!   usage rate (D1, D2, D3 in Figure 1).

use std::collections::HashSet;

use dba_common::ColumnId;
use dba_storage::Catalog;

use crate::arms::Arm;
use crate::linalg::SparseVec;

/// Maps schema columns to context dimensions. The layout is fixed per
/// catalog: every column of every table gets one slot, followed by the
/// derived-feature slots.
#[derive(Debug, Clone)]
pub struct ContextLayout {
    /// Prefix-sum of column counts per table: column (t, o) lives at
    /// `table_base[t] + o`.
    table_base: Vec<usize>,
    derived_base: usize,
}

/// Number of derived (Part 2) features.
pub const DERIVED_DIMS: usize = 3;

impl ContextLayout {
    pub fn new(catalog: &Catalog) -> Self {
        let mut table_base = Vec::with_capacity(catalog.tables().len());
        let mut acc = 0usize;
        for t in catalog.tables() {
            table_base.push(acc);
            acc += t.columns().len();
        }
        ContextLayout {
            table_base,
            derived_base: acc,
        }
    }

    /// Total context dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.derived_base + DERIVED_DIMS
    }

    /// Dimension of a column slot.
    pub fn column_dim(&self, col: ColumnId) -> usize {
        self.table_base[col.table.raw() as usize] + col.ordinal as usize
    }

    pub fn covering_dim(&self) -> usize {
        self.derived_base
    }

    pub fn size_dim(&self) -> usize {
        self.derived_base + 1
    }

    pub fn usage_dim(&self) -> usize {
        self.derived_base + 2
    }
}

/// Builds per-arm context vectors for one round.
pub struct ContextBuilder<'a> {
    layout: &'a ContextLayout,
    /// Predicate columns of this round's queries of interest.
    predicate_columns: HashSet<ColumnId>,
    /// Total database size (Part 2 normalisation).
    database_bytes: u64,
    /// Current round number (usage-rate normalisation).
    round: usize,
}

impl<'a> ContextBuilder<'a> {
    pub fn new(
        layout: &'a ContextLayout,
        predicate_columns: HashSet<ColumnId>,
        database_bytes: u64,
        round: usize,
    ) -> Self {
        ContextBuilder {
            layout,
            predicate_columns,
            database_bytes: database_bytes.max(1),
            round,
        }
    }

    /// Build the sparse context for `arm`. `materialised` indicates whether
    /// the arm's index currently exists in the catalog.
    pub fn build(&self, arm: &Arm, materialised: bool) -> SparseVec {
        let mut ctx: SparseVec = Vec::with_capacity(arm.key_columns.len() + DERIVED_DIMS);

        // Part 1: prefix encoding over predicate columns.
        for (j, col) in arm.key_columns.iter().enumerate() {
            if self.predicate_columns.contains(col) {
                ctx.push((self.layout.column_dim(*col), 10f64.powi(-(j as i32))));
            }
        }

        // Part 2: derived statistics.
        if !arm.covers_templates.is_empty() {
            ctx.push((self.layout.covering_dim(), 1.0));
        }
        if !materialised {
            ctx.push((
                self.layout.size_dim(),
                arm.size_bytes as f64 / self.database_bytes as f64,
            ));
        }
        if arm.times_used > 0 {
            let rate = arm.times_used as f64 / (self.round.max(1) as f64);
            ctx.push((self.layout.usage_dim(), rate.min(1.0)));
        }

        ctx.sort_unstable_by_key(|&(d, _)| d);
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{TableId, TemplateId};
    use dba_storage::{ColumnSpec, ColumnType, Distribution, IndexDef, TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let a = TableSchema::new(
            "a",
            vec![
                ColumnSpec::new("c0", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "c1",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 9 },
                ),
                ColumnSpec::new(
                    "c2",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 9 },
                ),
            ],
        );
        let b = TableSchema::new(
            "b",
            vec![ColumnSpec::new(
                "c0",
                ColumnType::Int,
                Distribution::Sequential,
            )],
        );
        Catalog::new(vec![
            TableBuilder::new(a, 100).build(TableId(0), 1),
            TableBuilder::new(b, 100).build(TableId(1), 1),
        ])
    }

    fn arm(keys: Vec<ColumnId>, include: Vec<u16>, size: u64) -> Arm {
        Arm {
            def: IndexDef::new(
                keys[0].table,
                keys.iter().map(|c| c.ordinal).collect(),
                include,
            ),
            key_columns: keys,
            size_bytes: size,
            covers_templates: vec![],
            generated_by: vec![TemplateId(0)],
            times_selected: 0,
            times_used: 0,
            last_used_round: None,
        }
    }

    fn col(t: u32, o: u16) -> ColumnId {
        ColumnId::new(TableId(t), o)
    }

    #[test]
    fn layout_assigns_unique_dims() {
        let cat = catalog();
        let layout = ContextLayout::new(&cat);
        assert_eq!(layout.dim(), 4 + DERIVED_DIMS);
        let dims: Vec<usize> = vec![
            layout.column_dim(col(0, 0)),
            layout.column_dim(col(0, 1)),
            layout.column_dim(col(0, 2)),
            layout.column_dim(col(1, 0)),
        ];
        let unique: HashSet<_> = dims.iter().collect();
        assert_eq!(unique.len(), 4);
        assert!(dims.iter().all(|&d| d < layout.covering_dim()));
    }

    #[test]
    fn prefix_encoding_decays_by_position() {
        let cat = catalog();
        let layout = ContextLayout::new(&cat);
        let preds: HashSet<ColumnId> = [col(0, 1), col(0, 2)].into_iter().collect();
        let builder = ContextBuilder::new(&layout, preds, 1000, 1);
        let a = arm(vec![col(0, 2), col(0, 1)], vec![], 100);
        let ctx = builder.build(&a, true);
        // c2 at position 0 → 1.0; c1 at position 1 → 0.1.
        let get = |d: usize| ctx.iter().find(|&&(i, _)| i == d).map(|&(_, v)| v);
        assert_eq!(get(layout.column_dim(col(0, 2))), Some(1.0));
        assert_eq!(get(layout.column_dim(col(0, 1))), Some(0.1));
    }

    #[test]
    fn payload_only_columns_are_zero() {
        // Figure 1, Example 3: "Index IX5 includes column C1, but the
        // context for C1 is valued as 0, as this column is considered only
        // due to the query payload."
        let cat = catalog();
        let layout = ContextLayout::new(&cat);
        // c0 is NOT a predicate column (payload only).
        let preds: HashSet<ColumnId> = [col(0, 1), col(0, 2)].into_iter().collect();
        let builder = ContextBuilder::new(&layout, preds, 1000, 1);
        let a = arm(vec![col(0, 1), col(0, 2), col(0, 0)], vec![], 100);
        let ctx = builder.build(&a, true);
        let get = |d: usize| ctx.iter().find(|&&(i, _)| i == d).map(|&(_, v)| v);
        assert_eq!(get(layout.column_dim(col(0, 0))), None, "payload col is 0");
        assert_eq!(get(layout.column_dim(col(0, 1))), Some(1.0));
        assert_eq!(get(layout.column_dim(col(0, 2))), Some(0.1));
    }

    #[test]
    fn size_feature_vanishes_once_materialised() {
        let cat = catalog();
        let layout = ContextLayout::new(&cat);
        let preds: HashSet<ColumnId> = [col(0, 1)].into_iter().collect();
        let builder = ContextBuilder::new(&layout, preds, 1000, 1);
        let a = arm(vec![col(0, 1)], vec![], 250);
        let get = |ctx: &SparseVec, d: usize| ctx.iter().find(|&&(i, _)| i == d).map(|&(_, v)| v);
        let fresh = builder.build(&a, false);
        assert_eq!(get(&fresh, layout.size_dim()), Some(0.25));
        let existing = builder.build(&a, true);
        assert_eq!(get(&existing, layout.size_dim()), None);
    }

    #[test]
    fn covering_and_usage_features() {
        let cat = catalog();
        let layout = ContextLayout::new(&cat);
        let preds: HashSet<ColumnId> = [col(0, 1)].into_iter().collect();
        let builder = ContextBuilder::new(&layout, preds, 1000, 4);
        let mut a = arm(vec![col(0, 1)], vec![0], 100);
        a.covers_templates.push(TemplateId(7));
        a.times_used = 2;
        let ctx = builder.build(&a, true);
        let get = |d: usize| ctx.iter().find(|&&(i, _)| i == d).map(|&(_, v)| v);
        assert_eq!(get(layout.covering_dim()), Some(1.0));
        assert_eq!(get(layout.usage_dim()), Some(0.5));
    }

    #[test]
    fn context_dims_are_sorted_and_unique() {
        let cat = catalog();
        let layout = ContextLayout::new(&cat);
        let preds: HashSet<ColumnId> = [col(0, 0), col(0, 1), col(0, 2)].into_iter().collect();
        let builder = ContextBuilder::new(&layout, preds, 1000, 1);
        let mut a = arm(vec![col(0, 0), col(0, 1), col(0, 2)], vec![], 10);
        a.times_used = 1;
        let ctx = builder.build(&a, false);
        for w in ctx.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
