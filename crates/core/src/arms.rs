//! Dynamic arm generation from workload predicates (§IV).
//!
//! "Instead of enumerating all column combinations, relevant arms (indices)
//! may be generated based on queries: combinations and permutations of
//! query predicates (including join predicates), with and without inclusion
//! of payload attributes from the selection clause."
//!
//! Arms are identified by their [`IndexDef`]; the registry deduplicates
//! across queries and rounds and tracks usage statistics that feed the
//! derived part of the context. To keep the candidate space practical we
//! bound key width and, for multi-column subsets, emit two orderings: the
//! query's declaration order and the most-selective-first order (a classic
//! advisor heuristic). Covering variants carry the query's remaining needed
//! columns as *included* leaf columns — the modern equivalent of the
//! paper's key-suffix payload columns (the context treats both identically:
//! payload columns contribute 0 to Part 1).

use std::collections::HashMap;

use dba_common::{ColumnId, TableId, TemplateId};
use dba_engine::Query;
use dba_optimizer::CardEstimator;
use dba_storage::{Catalog, IndexDef};
use serde::{Deserialize, Serialize};

/// Arm-generation knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArmGenConfig {
    /// Maximum number of key columns per candidate index.
    pub max_key_width: usize,
    /// Also generate covering variants (payload as included columns).
    pub include_covering: bool,
}

impl Default for ArmGenConfig {
    fn default() -> Self {
        ArmGenConfig {
            max_key_width: 3,
            include_covering: true,
        }
    }
}

/// One candidate index (bandit arm).
#[derive(Debug, Clone)]
pub struct Arm {
    pub def: IndexDef,
    /// Key columns as fully-qualified ids (same order as `def.key_cols`).
    pub key_columns: Vec<ColumnId>,
    /// Estimated materialised size (what-if agrees with reality).
    pub size_bytes: u64,
    /// Templates whose queries this arm fully covers on its table.
    pub covers_templates: Vec<TemplateId>,
    /// Templates that generated this arm.
    pub generated_by: Vec<TemplateId>,
    /// Rounds in which this arm was part of the selected configuration.
    pub times_selected: u32,
    /// Rounds in which the optimiser actually used the materialised index.
    pub times_used: u32,
    /// Round the arm was last used by the optimiser.
    pub last_used_round: Option<usize>,
}

/// Registry of all arms seen so far, keyed by index definition.
#[derive(Debug, Default)]
pub struct ArmRegistry {
    arms: Vec<Arm>,
    by_def: HashMap<IndexDef, usize>,
}

impl ArmRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    #[inline]
    pub fn arm(&self, idx: usize) -> &Arm {
        &self.arms[idx]
    }

    #[inline]
    pub fn arm_mut(&mut self, idx: usize) -> &mut Arm {
        &mut self.arms[idx]
    }

    pub fn find(&self, def: &IndexDef) -> Option<usize> {
        self.by_def.get(def).copied()
    }

    /// Generate (or refresh) arms for the queries of interest. Returns the
    /// indices of all arms relevant to this round, deduplicated.
    pub fn generate(
        &mut self,
        queries: &[&Query],
        catalog: &Catalog,
        est: &CardEstimator<'_>,
        config: &ArmGenConfig,
    ) -> Vec<usize> {
        let mut active = Vec::new();
        for q in queries {
            for &table in &q.tables {
                self.generate_for_table(q, table, catalog, est, config, &mut active);
            }
        }
        active.sort_unstable();
        active.dedup();
        active
    }

    fn generate_for_table(
        &mut self,
        query: &Query,
        table: TableId,
        catalog: &Catalog,
        est: &CardEstimator<'_>,
        config: &ArmGenConfig,
        active: &mut Vec<usize>,
    ) {
        // Indexable columns: local predicate columns plus join columns.
        let mut indexable: Vec<ColumnId> = query
            .predicates_on(table)
            .iter()
            .map(|p| p.column)
            .collect();
        for c in query.join_columns_on(table) {
            if !indexable.contains(&c) {
                indexable.push(c);
            }
        }
        indexable.dedup();
        if indexable.is_empty() {
            return;
        }

        // Selectivity per indexable column (equality columns first by
        // selectivity is the classic ordering heuristic).
        let selectivity: HashMap<ColumnId, f64> = indexable
            .iter()
            .map(|&c| {
                let sel = query
                    .predicates_on(table)
                    .iter()
                    .filter(|p| p.column == c)
                    .map(|p| est.predicate_selectivity(p))
                    .fold(1.0, f64::min);
                (c, sel)
            })
            .collect();

        let needed = query.columns_needed_on(table);
        let join_cols = query.join_columns_on(table);
        // Covering (payload-including) variants are generated for maximal
        // key subsets, matching the Figure 1 example (a two-predicate
        // query yields 4 key-only arms plus 2 covering arms), and for
        // singleton join columns — the FK covering indexes that make
        // star-join index-nested-loop plans reachable.
        let maximal = indexable.len().min(config.max_key_width);

        for subset in subsets_up_to(&indexable, config.max_key_width) {
            let covering_eligible =
                subset.len() == maximal || (subset.len() == 1 && join_cols.contains(&subset[0]));
            for ordering in orderings(&subset, &selectivity, &join_cols) {
                let key_cols: Vec<u16> = ordering.iter().map(|c| c.ordinal).collect();
                let def = IndexDef::new(table, key_cols.clone(), vec![]);
                let idx = self.intern(def, &ordering, catalog, query.template);
                active.push(idx);

                if config.include_covering && covering_eligible {
                    let mut include: Vec<u16> = needed
                        .iter()
                        .copied()
                        .filter(|c| !key_cols.contains(c))
                        .collect();
                    include.sort_unstable();
                    if !include.is_empty() {
                        let cov_def = IndexDef::new(table, key_cols.clone(), include);
                        let idx = self.intern(cov_def, &ordering, catalog, query.template);
                        active.push(idx);
                    }
                }
            }
        }

        // Record covering relations for the oracle's covering filter. A
        // single index can only cover a whole *query* when the query
        // touches one table (the Figure 1 setting); for join queries no
        // single arm substitutes for the others, so the filter must not
        // suppress sibling arms that enable different join strategies.
        if query.tables.len() == 1 {
            for &idx in active.iter() {
                let arm = &mut self.arms[idx];
                if arm.def.table == table
                    && arm.def.covers(&needed)
                    && !arm.covers_templates.contains(&query.template)
                {
                    arm.covers_templates.push(query.template);
                }
            }
        }
    }

    fn intern(
        &mut self,
        def: IndexDef,
        ordering: &[ColumnId],
        catalog: &Catalog,
        template: TemplateId,
    ) -> usize {
        if let Some(&idx) = self.by_def.get(&def) {
            let arm = &mut self.arms[idx];
            if !arm.generated_by.contains(&template) {
                arm.generated_by.push(template);
            }
            // Keep the size live: on drift-grown tables a fresh build of
            // this arm is bigger than its first-seen estimate, and the
            // memory-budget knapsack must see the current price.
            arm.size_bytes = catalog.estimated_live_bytes(&def);
            return idx;
        }
        let size_bytes = catalog.estimated_live_bytes(&def);
        let arm = Arm {
            key_columns: ordering.to_vec(),
            size_bytes,
            covers_templates: Vec::new(),
            generated_by: vec![template],
            times_selected: 0,
            times_used: 0,
            last_used_round: None,
            def: def.clone(),
        };
        let idx = self.arms.len();
        self.arms.push(arm);
        self.by_def.insert(def, idx);
        idx
    }
}

/// All non-empty subsets of `cols` up to `max_width` elements, in a
/// deterministic order.
fn subsets_up_to(cols: &[ColumnId], max_width: usize) -> Vec<Vec<ColumnId>> {
    let mut out = Vec::new();
    let n = cols.len();
    let width = max_width.min(n);
    // Enumerate by bitmask; keep those with ≤ width bits.
    for mask in 1u32..(1 << n.min(20)) {
        if (mask.count_ones() as usize) <= width {
            let subset: Vec<ColumnId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| cols[i])
                .collect();
            out.push(subset);
        }
    }
    out
}

/// Candidate key orderings for a subset.
///
/// Pairs get both permutations (the paper's Figure 1 generates all
/// permutations of a two-predicate query). Wider subsets would explode
/// factorially, so they get the query's declaration order, the
/// most-selective-first order (a classic advisor heuristic), and — when
/// the subset contains a join column — a join-column-first order (the
/// layout index-nested-loop joins need). Deduplicated.
fn orderings(
    subset: &[ColumnId],
    selectivity: &HashMap<ColumnId, f64>,
    join_cols: &[ColumnId],
) -> Vec<Vec<ColumnId>> {
    match subset.len() {
        0 => vec![],
        1 => vec![subset.to_vec()],
        2 => vec![subset.to_vec(), vec![subset[1], subset[0]]],
        _ => {
            let declaration = subset.to_vec();
            let by_sel = {
                let mut v = subset.to_vec();
                v.sort_by(|a, b| {
                    selectivity
                        .get(a)
                        .unwrap_or(&1.0)
                        .total_cmp(selectivity.get(b).unwrap_or(&1.0))
                        .then(a.cmp(b))
                });
                v
            };
            let mut out = vec![declaration];
            if !out.contains(&by_sel) {
                out.push(by_sel.clone());
            }
            if let Some(&jc) = subset.iter().find(|c| join_cols.contains(c)) {
                let mut join_first = vec![jc];
                join_first.extend(by_sel.iter().copied().filter(|&c| c != jc));
                if !out.contains(&join_first) {
                    out.push(join_first);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::QueryId;
    use dba_engine::{JoinPred, Predicate};
    use dba_optimizer::StatsCatalog;
    use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let a = TableSchema::new(
            "a",
            vec![
                ColumnSpec::new("a0", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "a1",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 999 },
                ),
                ColumnSpec::new(
                    "a2",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 9 },
                ),
                ColumnSpec::new(
                    "a3",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
            ],
        );
        let b = TableSchema::new(
            "b",
            vec![
                ColumnSpec::new(
                    "b0",
                    ColumnType::Int,
                    Distribution::FkUniform { parent_rows: 5000 },
                ),
                ColumnSpec::new(
                    "b1",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
            ],
        );
        Catalog::new(vec![
            TableBuilder::new(a, 5000).build(TableId(0), 41),
            TableBuilder::new(b, 20_000).build(TableId(1), 41),
        ])
    }

    fn col(t: u32, o: u16) -> ColumnId {
        ColumnId::new(TableId(t), o)
    }

    /// Figure-1-style query: two predicates and one payload column.
    fn fig1_query() -> Query {
        Query {
            id: QueryId(0),
            template: TemplateId(1),
            tables: vec![TableId(0)],
            predicates: vec![
                Predicate::eq(col(0, 1), 5), // selective (1/1000)
                Predicate::eq(col(0, 2), 6), // coarse (1/10)
            ],
            joins: vec![],
            payload: vec![col(0, 0)],
            aggregated: false,
        }
    }

    #[test]
    fn figure_1_example_generates_six_arms() {
        // "our system generates six arms: four using different combinations
        // and permutations of the predicates, two including the payload".
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let est = CardEstimator::new(&stats);
        let mut reg = ArmRegistry::new();
        let q = fig1_query();
        let active = reg.generate(&[&q], &cat, &est, &ArmGenConfig::default());
        // Expect exactly the paper's six arms:
        //   (a1), (a2), (a1,a2), (a2,a1)           = 4 key-only arms
        //   (a1,a2)+payload, (a2,a1)+payload       = 2 covering arms
        let key_only = active
            .iter()
            .filter(|&&i| reg.arm(i).def.include_cols.is_empty())
            .count();
        let covering = active.len() - key_only;
        assert_eq!(key_only, 4, "combinations and permutations of predicates");
        assert_eq!(covering, 2, "payload-including variants");
        assert_eq!(active.len(), 6);
        // All covering arms cover the template.
        for &i in &active {
            let arm = reg.arm(i);
            if !arm.def.include_cols.is_empty() {
                assert_eq!(arm.covers_templates, vec![TemplateId(1)]);
            }
        }
    }

    #[test]
    fn join_columns_become_indexable() {
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let est = CardEstimator::new(&stats);
        let mut reg = ArmRegistry::new();
        let q = Query {
            id: QueryId(0),
            template: TemplateId(2),
            tables: vec![TableId(0), TableId(1)],
            predicates: vec![Predicate::eq(col(0, 1), 5)],
            joins: vec![JoinPred::new(col(0, 0), col(1, 0))],
            payload: vec![col(1, 1)],
            aggregated: false,
        };
        let active = reg.generate(&[&q], &cat, &est, &ArmGenConfig::default());
        // Table b has no local predicates but its join column b0 must
        // generate arms (the FK-index family that enables INL joins).
        let b_arms: Vec<_> = active
            .iter()
            .filter(|&&i| reg.arm(i).def.table == TableId(1))
            .collect();
        assert!(!b_arms.is_empty());
        assert!(b_arms.iter().any(|&&i| reg.arm(i).def.key_cols == vec![0]));
    }

    #[test]
    fn arms_deduplicate_across_queries() {
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let est = CardEstimator::new(&stats);
        let mut reg = ArmRegistry::new();
        let q1 = fig1_query();
        let mut q2 = fig1_query();
        q2.template = TemplateId(9);
        q2.id = QueryId(1);
        let a1 = reg.generate(&[&q1], &cat, &est, &ArmGenConfig::default());
        let total_after_first = reg.len();
        let a2 = reg.generate(&[&q2], &cat, &est, &ArmGenConfig::default());
        assert_eq!(reg.len(), total_after_first, "same defs, no new arms");
        assert_eq!(a1, a2);
        // Both templates recorded as generators.
        let arm = reg.arm(a1[0]);
        assert!(arm.generated_by.contains(&TemplateId(1)));
        assert!(arm.generated_by.contains(&TemplateId(9)));
    }

    #[test]
    fn max_width_bounds_key_columns() {
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let est = CardEstimator::new(&stats);
        let mut reg = ArmRegistry::new();
        let q = Query {
            id: QueryId(0),
            template: TemplateId(3),
            tables: vec![TableId(0)],
            predicates: vec![
                Predicate::eq(col(0, 0), 1),
                Predicate::eq(col(0, 1), 2),
                Predicate::eq(col(0, 2), 3),
                Predicate::eq(col(0, 3), 4),
            ],
            joins: vec![],
            payload: vec![],
            aggregated: false,
        };
        let cfg = ArmGenConfig {
            max_key_width: 2,
            include_covering: false,
        };
        let active = reg.generate(&[&q], &cat, &est, &cfg);
        assert!(active.iter().all(|&i| reg.arm(i).def.key_cols.len() <= 2));
        // 4 singles + C(4,2)=6 pairs × ≤2 orderings.
        assert!(active.len() >= 10);
    }

    #[test]
    fn selectivity_ordering_is_generated() {
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let est = CardEstimator::new(&stats);
        let mut reg = ArmRegistry::new();
        let q = fig1_query(); // a1 (sel 1/1000) then a2 (sel 1/10)
        let active = reg.generate(&[&q], &cat, &est, &ArmGenConfig::default());
        // Declaration order (1,2) == selective-first (1,2): but the query
        // lists a1 first and a1 is more selective, so we still expect both
        // (1,2) and (2,1)? No: orderings() dedups identical; (2,1) only
        // appears via the subset enumeration producing [a1,a2] with both
        // orderings when they differ. Check at least one two-column arm in
        // most-selective-first order exists.
        assert!(active
            .iter()
            .any(|&i| reg.arm(i).def.key_cols == vec![1, 2]));
    }

    #[test]
    fn query_without_predicates_generates_nothing() {
        let cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let est = CardEstimator::new(&stats);
        let mut reg = ArmRegistry::new();
        let q = Query {
            id: QueryId(0),
            template: TemplateId(4),
            tables: vec![TableId(0)],
            predicates: vec![],
            joins: vec![],
            payload: vec![col(0, 0)],
            aggregated: true,
        };
        let active = reg.generate(&[&q], &cat, &est, &ArmGenConfig::default());
        assert!(active.is_empty());
        assert!(reg.is_empty());
    }
}
