//! The uniform tuner interface every index advisor implements.
//!
//! This trait is the seam between *tuners* (the MAB tuner in this crate,
//! the PDTool/DDQN/NoIndex baselines in `dba-baselines`, future backends)
//! and *drivers* (the `TuningSession` in `dba-session`, which owns the
//! recommend → execute → observe loop of Algorithm 2). A tuner only ever
//! sees two calls per round: `before_round` to adjust the physical design,
//! `after_round` to observe what actually happened.
//!
//! Both calls carry the session's shared [`WhatIfService`]: hypothetical
//! costing is a versioned, memoizing subsystem owned by the driver, so a
//! guardrail's shadow baselines, PDTool's candidate scoring and any
//! advisor-side oracle all share one plan memo instead of replanning the
//! same (template, configuration) pairs independently. `after_round`
//! additionally hands back a [`RoundContext`] whose catalog and statistics
//! are the **execution-time** (pre-drift) snapshot of the round — what the
//! observed executions actually ran against — so shadow prices and
//! benefit assessments are computed against the state of the round they
//! price, not one drift application later.

use dba_common::{IndexId, SimSeconds, TableId, TemplateId};
use dba_engine::{Query, QueryExecution};
use dba_optimizer::{StatsCatalog, WhatIfService};
use dba_storage::Catalog;

/// Time charged by an advisor in one round, split the way Table I reports
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvisorCost {
    pub recommendation: SimSeconds,
    pub creation: SimSeconds,
}

/// How much of the recommend step a streaming window can afford — the
/// graceful-degrade ladder a deadline-aware driver walks when the
/// per-window latency budget is blown. Ordering is part of the contract:
/// drivers must pass through `ReuseConfig` before ever escalating to
/// `Amortized`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// The full recommend step (also the only level the fixed-round model
    /// ever runs at).
    #[default]
    Full,
    /// Budget blown last window: keep the previous configuration, skip
    /// scoring and selection entirely.
    ReuseConfig,
    /// Recovering: score only arms for templates whose arrival share
    /// changed, never drop, and let shadow pricing amortise `marginals()`
    /// across windows from its per-template memo.
    Amortized,
}

/// Per-window degrade instruction delivered through
/// [`Advisor::begin_window`] before the window's `before_round`.
#[derive(Debug, Clone, Default)]
pub struct WindowMode {
    pub level: DegradeLevel,
    /// Templates whose arrival share moved beyond the driver's epsilon
    /// since the last window — the scope of an `Amortized` step. Empty at
    /// other levels.
    pub changed_templates: Vec<TemplateId>,
}

/// One table's row deltas in a round of data change.
#[derive(Debug, Clone, Copy)]
pub struct TableChange {
    pub table: TableId,
    pub inserted: u64,
    pub updated: u64,
    pub deleted: u64,
}

/// A round's data change as applied by the driver: the row deltas plus the
/// maintenance bill every materialised index paid for them. Delivered to
/// advisors *before* [`Advisor::after_round`], so maintenance can enter the
/// round's reward shaping (`r_t(i) = G_t − C_cre − C_maint`).
#[derive(Debug, Clone, Default)]
pub struct DataChange {
    /// `(materialised index, maintenance time charged this round)`.
    pub index_maintenance: Vec<(IndexId, SimSeconds)>,
    /// Per-table deltas that caused the maintenance.
    pub table_changes: Vec<TableChange>,
}

impl DataChange {
    pub fn total_maintenance(&self) -> SimSeconds {
        self.index_maintenance.iter().map(|&(_, s)| s).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.index_maintenance.is_empty() && self.table_changes.is_empty()
    }
}

/// Execution-time round state handed to [`Advisor::after_round`].
///
/// `catalog` and `stats` are the state the round's queries executed
/// against — when the round drifted, the driver snapshots them *before*
/// applying the deltas, so anything priced through here (shadow baselines,
/// rollback assessments) reflects the round it prices rather than the
/// post-drift world. `whatif` is the session's shared costing service;
/// costings against the snapshot validate under the snapshot's versions,
/// so a post-drift costing never reuses a pre-drift plan by accident.
pub struct RoundContext<'a> {
    pub catalog: &'a Catalog,
    pub stats: &'a StatsCatalog,
    pub whatif: &'a mut WhatIfService,
}

impl<'a> RoundContext<'a> {
    /// Reborrow for handing the context to an inner advisor while keeping
    /// use of it afterwards (the guardrail's wrap-then-price pattern).
    pub fn reborrow(&mut self) -> RoundContext<'_> {
        RoundContext {
            catalog: self.catalog,
            stats: self.stats,
            whatif: &mut *self.whatif,
        }
    }
}

/// Uniform tuner interface driven by a tuning session: a recommendation
/// step before each round's workload, an observation step after.
///
/// `Send` is a supertrait so sessions (and the boxed advisors inside them)
/// can be fanned out across suite worker threads; advisors own plain data
/// and never share mutable state, so this costs implementations nothing.
pub trait Advisor: Send {
    fn name(&self) -> &str;

    /// Adjust the physical design before round `round` (0-based) executes.
    /// `whatif` is the session's shared hypothetical-costing service;
    /// advisors that consult the optimiser (PDTool-style what-if scoring,
    /// guardrail budgeting) cost through it and share its plan memo.
    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
    ) -> AdvisorCost;

    /// Observe the round's data change (HTAP drift): which indexes paid how
    /// much maintenance. Called between the round's execution and
    /// [`after_round`](Self::after_round); only drifted rounds deliver it.
    /// Baselines that ignore churn keep the default no-op.
    fn on_data_change(&mut self, _change: &DataChange) {}

    /// Observe the executed workload. `ctx` carries the execution-time
    /// (pre-drift) catalog/statistics snapshot and the shared what-if
    /// service — see [`RoundContext`].
    fn after_round(
        &mut self,
        ctx: &mut RoundContext<'_>,
        queries: &[Query],
        executions: &[QueryExecution],
    );

    /// Streaming drivers announce the upcoming window's degrade level
    /// before calling [`before_round`](Self::before_round). Fixed-round
    /// drivers never call this, so the default (ignore; always run at
    /// [`DegradeLevel::Full`]) keeps every existing advisor correct.
    fn begin_window(&mut self, _mode: &WindowMode) {}

    /// `(scatter re-inversions, decay events)` of the advisor's bandit, if
    /// it has one — surfaced per round in session records next to the
    /// plan/what-if cache counters. Non-bandit advisors report zeros.
    fn bandit_counters(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Attach the session's observability handle (`dba-obs`). Called once
    /// at session build time, before the first round; advisors that emit
    /// spans/events store a clone, wrappers forward it to their inner
    /// advisor. Recording is advisory: implementations must never branch
    /// tuning decisions on it. Default: ignore (no instrumentation).
    fn attach_obs(&mut self, _obs: &dba_obs::Obs) {}
}

/// Drop bookkeeping for indexes that no longer exist in `catalog` — the
/// reconcile step every arm-tracking tuner runs at the top of its
/// recommendation step so external configuration changes (a guardrail
/// rollback, an operator intervention) return the affected arms to
/// candidate status instead of leaving phantom incumbents. `current` maps
/// materialised index ids to arm indices, `arm_to_index` is its inverse.
pub fn reconcile_external_drops(
    catalog: &Catalog,
    current: &mut std::collections::HashMap<IndexId, usize>,
    arm_to_index: &mut std::collections::HashMap<usize, IndexId>,
) {
    let dropped: Vec<(IndexId, usize)> = current
        .iter()
        .filter(|(&id, _)| catalog.index(id).is_err())
        .map(|(&id, &arm)| (id, arm))
        .collect();
    for (id, arm) in dropped {
        current.remove(&id);
        arm_to_index.remove(&arm);
    }
}

impl<A: Advisor + ?Sized> Advisor for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
    ) -> AdvisorCost {
        (**self).before_round(round, catalog, stats, whatif)
    }

    fn on_data_change(&mut self, change: &DataChange) {
        (**self).on_data_change(change)
    }

    fn after_round(
        &mut self,
        ctx: &mut RoundContext<'_>,
        queries: &[Query],
        executions: &[QueryExecution],
    ) {
        (**self).after_round(ctx, queries, executions)
    }

    fn begin_window(&mut self, mode: &WindowMode) {
        (**self).begin_window(mode)
    }

    fn bandit_counters(&self) -> (u64, u64) {
        (**self).bandit_counters()
    }

    fn attach_obs(&mut self, obs: &dba_obs::Obs) {
        (**self).attach_obs(obs)
    }
}
