//! The uniform tuner interface every index advisor implements.
//!
//! This trait is the seam between *tuners* (the MAB tuner in this crate,
//! the PDTool/DDQN/NoIndex baselines in `dba-baselines`, future backends)
//! and *drivers* (the `TuningSession` in `dba-session`, which owns the
//! recommend → execute → observe loop of Algorithm 2). A tuner only ever
//! sees two calls per round: `before_round` to adjust the physical design,
//! `after_round` to observe what actually happened.

use dba_common::SimSeconds;
use dba_engine::{Query, QueryExecution};
use dba_optimizer::StatsCatalog;
use dba_storage::Catalog;

/// Time charged by an advisor in one round, split the way Table I reports
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvisorCost {
    pub recommendation: SimSeconds,
    pub creation: SimSeconds,
}

/// Uniform tuner interface driven by a tuning session: a recommendation
/// step before each round's workload, an observation step after.
pub trait Advisor {
    fn name(&self) -> &str;

    /// Adjust the physical design before round `round` (0-based) executes.
    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
    ) -> AdvisorCost;

    /// Observe the executed workload.
    fn after_round(&mut self, queries: &[Query], executions: &[QueryExecution]);
}

impl<A: Advisor + ?Sized> Advisor for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
    ) -> AdvisorCost {
        (**self).before_round(round, catalog, stats)
    }

    fn after_round(&mut self, queries: &[Query], executions: &[QueryExecution]) {
        (**self).after_round(queries, executions)
    }
}
