//! Reward shaping (§IV).
//!
//! The gain of a materialised index `i` for a query `q` is the difference
//! between the full-table-scan reference time of `i`'s table and the
//! observed access time through `i`, counted only when the optimiser's
//! plan actually used `i`:
//!
//! `G_t(i, {q}, s_t) = [Ctab(τ(i), q, ∅) − Ctab(τ(i), q, {i})] · 1_{U(s,q)}(i)`
//!
//! Gains sum over the round's queries; the creation cost of an index enters
//! as a negative reward in the round it is materialised, and — under data
//! drift (the HTAP follow-up's extension) — so does the maintenance the
//! index paid for the round's inserts/updates/deletes:
//!
//! `r_t(i) = G_t(i, w_t, s_t) − C_cre(s_{t−1}, {i}) − C_maint(i, Δ_t)`
//!
//! Gains can be negative — that is how the bandit detects index-induced
//! regressions (the paper's IMDb Q18 case) and drops the offending index;
//! the maintenance term is how it learns to drop indexes on high-churn
//! tables even when they still speed queries up.

use std::collections::HashMap;

use dba_common::{IndexId, SimSeconds};
use dba_engine::{Query, QueryExecution};

use crate::query_store::QueryStore;

/// Computes per-arm rewards for one round.
#[derive(Debug, Default)]
pub struct RewardShaper;

impl RewardShaper {
    /// Shape rewards for the selected super arm.
    ///
    /// * `config` — materialised index id → arm index, for every index in
    ///   the current configuration;
    /// * `created` — (arm index, creation cost) for indexes materialised
    ///   this round;
    /// * `maintenance` — arm index → maintenance seconds the arm's index
    ///   paid for this round's data change (empty on read-only rounds);
    /// * `selected` — every arm in the super arm (played arms receive a
    ///   reward even when unused: gain 0, minus creation and maintenance).
    ///
    /// Returns `(arm index, reward seconds)` pairs, one per selected arm,
    /// and the set of arms whose index was used this round.
    pub fn shape(
        store: &QueryStore,
        queries: &[Query],
        executions: &[QueryExecution],
        config: &HashMap<IndexId, usize>,
        created: &[(usize, SimSeconds)],
        maintenance: &HashMap<usize, f64>,
        selected: &[usize],
    ) -> (Vec<(usize, f64)>, Vec<usize>) {
        debug_assert_eq!(queries.len(), executions.len());
        let mut gains: HashMap<usize, f64> = HashMap::new();
        let mut used: Vec<usize> = Vec::new();

        for (q, e) in queries.iter().zip(executions) {
            for access in &e.accesses {
                let Some(index_id) = access.index else {
                    continue;
                };
                let Some(&arm_idx) = config.get(&index_id) else {
                    continue;
                };
                let reference = store
                    .scan_reference(q.template, access.table)
                    .unwrap_or(access.time);
                let gain = (reference - access.time).secs();
                *gains.entry(arm_idx).or_insert(0.0) += gain;
                if !used.contains(&arm_idx) {
                    used.push(arm_idx);
                }
            }
        }

        let creation: HashMap<usize, f64> = created
            .iter()
            .map(|&(arm, cost)| (arm, cost.secs()))
            .collect();

        let rewards = selected
            .iter()
            .map(|&arm| {
                let g = gains.get(&arm).copied().unwrap_or(0.0);
                let c = creation.get(&arm).copied().unwrap_or(0.0);
                let m = maintenance.get(&arm).copied().unwrap_or(0.0);
                (arm, g - c - m)
            })
            .collect();
        (rewards, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{ColumnId, QueryId, TableId, TemplateId};
    use dba_engine::{AccessStats, Predicate};

    fn query(template: u32) -> Query {
        Query {
            id: QueryId(template as u64),
            template: TemplateId(template),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 0), 1)],
            joins: vec![],
            payload: vec![],
            aggregated: false,
        }
    }

    fn exec(accesses: Vec<AccessStats>) -> QueryExecution {
        QueryExecution {
            query: QueryId(0),
            total: accesses.iter().map(|a| a.time).sum(),
            accesses,
            join_time: SimSeconds::ZERO,
            agg_time: SimSeconds::ZERO,
            result_rows: 0,
        }
    }

    fn scan(table: u32, secs: f64) -> AccessStats {
        AccessStats {
            table: TableId(table),
            index: None,
            time: SimSeconds::new(secs),
            rows_out: 1,
            is_full_scan: true,
        }
    }

    fn via_index(table: u32, ix: u64, secs: f64) -> AccessStats {
        AccessStats {
            table: TableId(table),
            index: Some(IndexId(ix)),
            time: SimSeconds::new(secs),
            rows_out: 1,
            is_full_scan: false,
        }
    }

    /// Store primed with a 10s full-scan reference for template 1, table 0.
    fn primed_store() -> QueryStore {
        let mut store = QueryStore::new();
        store.ingest_round(&[query(1)], &[exec(vec![scan(0, 10.0)])]);
        store
    }

    #[test]
    fn gain_is_scan_reference_minus_access_time() {
        let mut store = primed_store();
        let queries = vec![query(1)];
        let executions = vec![exec(vec![via_index(0, 5, 2.0)])];
        store.ingest_round(&queries, &executions);
        let config: HashMap<IndexId, usize> = [(IndexId(5), 42usize)].into_iter().collect();
        let (rewards, used) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &[],
            &HashMap::new(),
            &[42],
        );
        assert_eq!(rewards, vec![(42, 8.0)]);
        assert_eq!(used, vec![42]);
    }

    #[test]
    fn creation_cost_is_negative_reward() {
        let mut store = primed_store();
        let queries = vec![query(1)];
        let executions = vec![exec(vec![via_index(0, 5, 2.0)])];
        store.ingest_round(&queries, &executions);
        let config: HashMap<IndexId, usize> = [(IndexId(5), 42usize)].into_iter().collect();
        let created = vec![(42usize, SimSeconds::new(3.0))];
        let (rewards, _) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &created,
            &HashMap::new(),
            &[42],
        );
        assert_eq!(rewards, vec![(42, 5.0)], "8s gain − 3s creation");
    }

    #[test]
    fn unused_selected_arm_gets_zero_gain() {
        let mut store = primed_store();
        let queries = vec![query(1)];
        let executions = vec![exec(vec![scan(0, 10.0)])];
        store.ingest_round(&queries, &executions);
        let config: HashMap<IndexId, usize> = [(IndexId(5), 42usize)].into_iter().collect();
        let created = vec![(42usize, SimSeconds::new(3.0))];
        let (rewards, used) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &created,
            &HashMap::new(),
            &[42],
        );
        assert_eq!(rewards, vec![(42, -3.0)], "no gain, only creation cost");
        assert!(used.is_empty());
    }

    #[test]
    fn regression_produces_negative_gain() {
        // Index access slower than the scan reference: the Q18 case.
        let mut store = primed_store();
        let queries = vec![query(1)];
        let executions = vec![exec(vec![via_index(0, 5, 25.0)])];
        store.ingest_round(&queries, &executions);
        let config: HashMap<IndexId, usize> = [(IndexId(5), 42usize)].into_iter().collect();
        let (rewards, _) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &[],
            &HashMap::new(),
            &[42],
        );
        assert_eq!(rewards, vec![(42, -15.0)]);
    }

    #[test]
    fn gains_accumulate_over_queries_in_round() {
        let mut store = primed_store();
        store.ingest_round(&[query(2)], &[exec(vec![scan(0, 6.0)])]);
        let queries = vec![query(1), query(2)];
        let executions = vec![
            exec(vec![via_index(0, 5, 2.0)]),
            exec(vec![via_index(0, 5, 1.0)]),
        ];
        store.ingest_round(&queries, &executions);
        let config: HashMap<IndexId, usize> = [(IndexId(5), 42usize)].into_iter().collect();
        let (rewards, _) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &[],
            &HashMap::new(),
            &[42],
        );
        // (10−2) + (6−1) = 13.
        assert_eq!(rewards, vec![(42, 13.0)]);
    }

    #[test]
    fn unknown_reference_defaults_to_zero_gain() {
        // Template never seen with a scan nor an index before this round's
        // ingest; the shaper falls back to the access time itself → 0 gain.
        let store = QueryStore::new();
        let queries = vec![query(9)];
        let executions = vec![exec(vec![via_index(0, 5, 4.0)])];
        let config: HashMap<IndexId, usize> = [(IndexId(5), 7usize)].into_iter().collect();
        let (rewards, _) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &[],
            &HashMap::new(),
            &[7],
        );
        assert_eq!(rewards, vec![(7, 0.0)]);
    }

    #[test]
    fn indexes_outside_config_are_ignored() {
        let mut store = primed_store();
        let queries = vec![query(1)];
        let executions = vec![exec(vec![via_index(0, 99, 2.0)])];
        store.ingest_round(&queries, &executions);
        let config: HashMap<IndexId, usize> = [(IndexId(5), 42usize)].into_iter().collect();
        let (rewards, used) = RewardShaper::shape(
            &store,
            &queries,
            &executions,
            &config,
            &[],
            &HashMap::new(),
            &[42],
        );
        assert_eq!(rewards, vec![(42, 0.0)]);
        assert!(used.is_empty());
    }
}
