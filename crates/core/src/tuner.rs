//! The MAB tuning driver (Algorithm 2).
//!
//! Each round the tuner: pulls the queries of interest from the query
//! store, generates/refreshes arms, builds contexts, scores them with
//! C2UCB, lets the greedy oracle pick a configuration under the memory
//! budget, and diffs it against the materialised state (creating and
//! dropping indexes). After the round's workload executes, observed
//! statistics are shaped into rewards and fed back; workload shifts
//! trigger forgetting proportional to shift intensity.
//!
//! The tuner charges *simulated* recommendation time per round, calibrated
//! to the paper's Table I (MAB recommendation cost is dominated by a
//! first-round setup, with a small per-arm scoring overhead thereafter).

use std::collections::{HashMap, HashSet};

use dba_common::{ColumnId, IndexId, SimSeconds};
use dba_engine::{CostModel, Query, QueryExecution};
use dba_obs::Obs;
use dba_optimizer::{CardEstimator, StatsCatalog};
use dba_storage::Catalog;
use serde::{Deserialize, Serialize};

use crate::advisor::{Advisor, AdvisorCost, DataChange, DegradeLevel, WindowMode};
use crate::arms::{ArmGenConfig, ArmRegistry};
use crate::c2ucb::{C2Ucb, C2UcbConfig};
use crate::context::{ContextBuilder, ContextLayout};
use crate::linalg::SparseVec;
use crate::oracle::{greedy_select, OracleInput};
use crate::query_store::QueryStore;
use crate::reward::RewardShaper;

/// MAB tuner configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MabConfig {
    /// Memory budget for secondary indexes, in bytes (the paper uses 1×
    /// the data size).
    pub memory_budget_bytes: u64,
    pub bandit: C2UcbConfig,
    pub arm_gen: ArmGenConfig,
    /// Templates seen within this many rounds are queries of interest.
    pub qoi_window: usize,
    /// Score bonus for currently-materialised arms (small hysteresis so
    /// exact ties don't churn).
    pub incumbent_bonus: f64,
    /// Rounds over which a candidate's creation cost is amortised when
    /// scoring it against incumbents (whose creation is sunk). Gives the
    /// size-proportional reluctance to swap large indexes that the paper's
    /// convergence plots show ("relatively smaller spikes in subsequent
    /// rounds", §V-B1) while leaving cheap swaps free.
    pub creation_amortization_rounds: f64,
    /// Clip per-arm scaled rewards to `[-reward_clip, +reward_clip]`.
    /// A single catastrophic regression (an index-nested-loop blow-up)
    /// still registers as strongly negative — the arm is dropped — without
    /// poisoning every arm that shares context dimensions with it.
    pub reward_clip: f64,
    /// Forget when a round's shift intensity reaches this threshold.
    pub shift_threshold: f64,
    /// Enable shift-triggered forgetting.
    pub forget_on_shift: bool,
    /// Simulated one-off setup time charged in the first round (seconds).
    pub first_round_setup_s: f64,
    /// Simulated per-arm scoring time (seconds/arm/round).
    pub per_arm_scored_s: f64,
    /// Streaming hot-path switches: batch each window's observations into
    /// one scatter update and serve unchanged-context arm scores from the
    /// fingerprint memo. Off by default — the fast path is equivalent only
    /// up to floating-point accumulation order, and fixed-round baselines
    /// must stay bit-identical.
    #[serde(default)]
    pub streaming_fast_path: bool,
}

impl Default for MabConfig {
    fn default() -> Self {
        MabConfig {
            memory_budget_bytes: u64::MAX,
            bandit: C2UcbConfig::default(),
            arm_gen: ArmGenConfig::default(),
            qoi_window: 2,
            incumbent_bonus: 0.1,
            creation_amortization_rounds: 2.0,
            reward_clip: 10.0,
            shift_threshold: 0.5,
            forget_on_shift: true,
            first_round_setup_s: 8.0,
            per_arm_scored_s: 0.001,
            streaming_fast_path: false,
        }
    }
}

/// Result of one recommendation step.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    pub recommendation_time: SimSeconds,
    pub creation_time: SimSeconds,
    pub created: usize,
    pub dropped: usize,
    /// Total size of the materialised configuration after this step.
    pub config_bytes: u64,
}

/// The self-driving index tuner.
pub struct MabTuner {
    config: MabConfig,
    cost: CostModel,
    bandit: C2Ucb,
    registry: ArmRegistry,
    store: QueryStore,
    layout: ContextLayout,
    /// Materialised index id → arm registry index.
    current: HashMap<IndexId, usize>,
    /// Arm registry index → materialised index id.
    arm_to_index: HashMap<usize, IndexId>,
    /// Contexts of the super arm chosen this round (for the update step).
    played: Vec<(usize, SparseVec)>,
    /// (arm, creation cost) for indexes materialised this round.
    created_this_round: Vec<(usize, SimSeconds)>,
    /// Arm → maintenance seconds its index paid for this round's data
    /// change (delivered via [`Advisor::on_data_change`], consumed by the
    /// next `observe`).
    maintenance_this_round: HashMap<usize, f64>,
    /// Reward normalisation: rewards are divided by this scale (set from
    /// the first observed round's per-query execution time) so that the
    /// learned weights and the exploration boost share a common magnitude
    /// regardless of database size.
    reward_scale: Option<f64>,
    rounds: usize,
    /// The degrade level a streaming driver announced for the upcoming
    /// window; fixed-round drivers never touch it, so it stays `Full`.
    window_mode: WindowMode,
    /// Observability handle (`dba-obs`), attached by the session at build
    /// time. Defaults to recording-off; the per-arm score/reward events
    /// (the old `DBA_MAB_DEBUG` eprintln path, now structured) are gated
    /// on `obs.enabled()` so the hot path never formats them for nothing.
    obs: Obs,
}

impl MabTuner {
    pub fn new(catalog: &Catalog, cost: CostModel, config: MabConfig) -> Self {
        let layout = ContextLayout::new(catalog);
        let bandit = C2Ucb::new(layout.dim(), config.bandit);
        MabTuner {
            config,
            cost,
            bandit,
            registry: ArmRegistry::new(),
            store: QueryStore::new(),
            layout,
            current: HashMap::new(),
            arm_to_index: HashMap::new(),
            played: Vec::new(),
            created_this_round: Vec::new(),
            maintenance_this_round: HashMap::new(),
            reward_scale: None,
            rounds: 0,
            window_mode: WindowMode::default(),
            obs: Obs::noop(),
        }
    }

    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    #[inline]
    pub fn arm_count(&self) -> usize {
        self.registry.len()
    }

    #[inline]
    pub fn query_store(&self) -> &QueryStore {
        &self.store
    }

    /// Current configuration size in bytes (materialised indexes, live
    /// drift-grown sizes; externally-dropped ids contribute zero).
    pub fn config_bytes(&self, catalog: &Catalog) -> u64 {
        self.current
            .keys()
            .map(|&id| catalog.index_live_bytes(id))
            .sum()
    }

    /// Recommendation step (Algorithm 2 lines 11-15): choose and
    /// materialise a configuration for the upcoming round.
    pub fn recommend_and_apply(
        &mut self,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
    ) -> RoundOutcome {
        self.rounds += 1;
        // A guardrail layer (or an operator) may have force-dropped indexes
        // this tuner materialised; forget them so their arms become
        // candidates again.
        crate::advisor::reconcile_external_drops(
            catalog,
            &mut self.current,
            &mut self.arm_to_index,
        );
        if self.window_mode.level == DegradeLevel::ReuseConfig {
            // Budget blown: the degrade ladder's first rung keeps the
            // previous configuration untouched at (near) zero recommend
            // cost. No scoring, no selection, no learning this window.
            self.played.clear();
            self.created_this_round.clear();
            return RoundOutcome {
                recommendation_time: SimSeconds::ZERO,
                creation_time: SimSeconds::ZERO,
                created: 0,
                dropped: 0,
                config_bytes: self.config_bytes(catalog),
            };
        }
        let amortized = self.window_mode.level == DegradeLevel::Amortized;
        let mut rec_time = SimSeconds::ZERO;
        if self.rounds == 1 {
            rec_time += SimSeconds::new(self.config.first_round_setup_s);
        }

        let mut qoi: Vec<Query> = self
            .store
            .queries_of_interest(self.config.qoi_window)
            .into_iter()
            .cloned()
            .collect();
        if amortized {
            // The ladder's second rung: attend only to templates whose
            // arrival share actually moved; everything else keeps last
            // window's decision.
            let changed = &self.window_mode.changed_templates;
            qoi.retain(|q| changed.contains(&q.template));
        }
        if qoi.is_empty() {
            // Nothing observed yet (cold start): keep the empty config.
            self.played.clear();
            self.created_this_round.clear();
            return RoundOutcome {
                recommendation_time: rec_time,
                creation_time: SimSeconds::ZERO,
                created: 0,
                dropped: 0,
                config_bytes: self.config_bytes(catalog),
            };
        }

        let est = CardEstimator::new(stats);
        let qoi_refs: Vec<&Query> = qoi.iter().collect();
        let active = self
            .registry
            .generate(&qoi_refs, catalog, &est, &self.config.arm_gen);

        rec_time += SimSeconds::new(self.config.per_arm_scored_s * active.len() as f64);

        // Workload predicate columns (including join predicates, §IV)
        // define Part-1 context support.
        let predicate_columns: HashSet<ColumnId> = qoi
            .iter()
            .flat_map(|q| {
                q.predicate_columns()
                    .into_iter()
                    .chain(q.joins.iter().flat_map(|j| [j.left, j.right]))
            })
            .collect();
        let builder = ContextBuilder::new(
            &self.layout,
            predicate_columns,
            catalog.database_bytes(),
            self.store.round(),
        );

        let contexts: Vec<SparseVec> = active
            .iter()
            .map(|&i| {
                let materialised = self.arm_to_index.contains_key(&i);
                builder.build(self.registry.arm(i), materialised)
            })
            .collect();
        let mut scores = if self.config.streaming_fast_path {
            self.bandit.ucb_scores_sparse_cached(&contexts)
        } else {
            self.bandit.ucb_scores_sparse(&contexts)
        };
        let scale = self.reward_scale.unwrap_or(1.0);
        for (pos, &arm) in active.iter().enumerate() {
            if self.arm_to_index.contains_key(&arm) {
                scores[pos] += self.config.incumbent_bonus;
            } else {
                // Amortised creation cost of materialising this candidate
                // (arm sizes are live — refreshed against drift-grown
                // tables at generation time).
                let def = &self.registry.arm(arm).def;
                let build = self
                    .cost
                    .index_build(
                        catalog.live_heap_pages(def.table),
                        catalog.live_rows(def.table),
                        self.registry.arm(arm).size_bytes,
                    )
                    .secs();
                scores[pos] -= build / scale / self.config.creation_amortization_rounds.max(1.0);
            }
        }

        // Oracle selection under the memory budget. An amortized window is
        // merge-only: incumbents are locked in (excluded from the oracle,
        // never dropped) and new arms compete for the leftover budget, so
        // a partially-scored window can only refine the configuration, not
        // tear down decisions it didn't re-examine.
        let oracle_budget = if amortized {
            self.config
                .memory_budget_bytes
                .saturating_sub(self.config_bytes(catalog))
        } else {
            self.config.memory_budget_bytes
        };
        let inputs: Vec<OracleInput> = active
            .iter()
            .zip(&scores)
            .filter(|&(&i, _)| !(amortized && self.arm_to_index.contains_key(&i)))
            .map(|(&i, &score)| {
                let arm = self.registry.arm(i);
                OracleInput {
                    arm_idx: i,
                    score,
                    size_bytes: arm.size_bytes,
                    def: arm.def.clone(),
                    generated_by: arm.generated_by.clone(),
                    covers: arm.covers_templates.clone(),
                }
            })
            .collect();
        let mut selected = greedy_select(inputs, oracle_budget);
        if amortized {
            let mut incumbents: Vec<usize> = self.arm_to_index.keys().copied().collect();
            incumbents.sort_unstable();
            selected.extend(incumbents);
        }
        let selected_set: HashSet<usize> = selected.iter().copied().collect();

        // Per-arm score telemetry (formerly the `DBA_MAB_DEBUG` eprintln
        // path, now structured and machine-readable). Gated on `enabled()`
        // so the ranking sort and field formatting never run with
        // recording off.
        if self.obs.enabled() {
            let mut ranked: Vec<(usize, f64)> =
                active.iter().copied().zip(scores.iter().copied()).collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (arm, score) in ranked.iter().take(12) {
                let a = self.registry.arm(*arm);
                self.obs.event(
                    "mab.score",
                    vec![
                        ("score", (*score).into()),
                        ("selected", selected_set.contains(arm).into()),
                        ("arm", (*arm).into()),
                        ("table", a.def.table.raw().into()),
                        ("key_cols", format!("{:?}", a.def.key_cols).into()),
                        ("include_cols", format!("{:?}", a.def.include_cols).into()),
                        ("times_used", a.times_used.into()),
                        ("times_selected", a.times_selected.into()),
                    ],
                );
            }
        }

        // Diff against materialised state: drop then create. `current` is
        // a HashMap, so sort the snapshot — catalog mutations must happen
        // in a run-independent order.
        let mut dropped = 0usize;
        let to_drop: Vec<(IndexId, usize)> = if amortized {
            Vec::new() // merge-only: never drop on a partial view
        } else {
            let mut snapshot: Vec<(IndexId, usize)> = self
                .current
                .iter()
                .filter(|(_, arm)| !selected_set.contains(arm))
                .map(|(&id, &arm)| (id, arm))
                .collect();
            snapshot.sort_unstable_by_key(|&(id, _)| id);
            snapshot
        };
        for (id, arm) in to_drop {
            catalog.drop_index(id).expect("tracked index must exist");
            self.current.remove(&id);
            self.arm_to_index.remove(&arm);
            dropped += 1;
        }

        let mut creation_time = SimSeconds::ZERO;
        let mut created = 0usize;
        self.created_this_round.clear();
        for &arm_idx in &selected {
            // Every selected arm counts as selected this round — retained
            // incumbents included, not just newly created indexes (the
            // statistic is "rounds in the selected configuration").
            self.registry.arm_mut(arm_idx).times_selected += 1;
            if self.arm_to_index.contains_key(&arm_idx) {
                continue;
            }
            let def = self.registry.arm(arm_idx).def.clone();
            let build_cost = self.cost.index_build(
                catalog.live_heap_pages(def.table),
                catalog.live_rows(def.table),
                catalog.estimated_live_bytes(&def),
            );
            let meta = catalog
                .create_index(def)
                .expect("arm definitions are valid by construction");
            creation_time += build_cost;
            created += 1;
            self.current.insert(meta.id, arm_idx);
            self.arm_to_index.insert(arm_idx, meta.id);
            self.created_this_round.push((arm_idx, build_cost));
        }

        // Remember the played super arm's contexts for the reward update,
        // moving the already-built vectors out of the scoring batch rather
        // than re-cloning one per selected arm. In an amortized window,
        // locked-in incumbents outside the scored (changed-template) arm
        // set have no context this window and drop out of the update.
        let mut context_slots: Vec<Option<SparseVec>> = contexts.into_iter().map(Some).collect();
        self.played = selected
            .iter()
            .filter_map(|&i| {
                let pos = match active.iter().position(|&a| a == i) {
                    Some(pos) => pos,
                    None if amortized => return None,
                    None => panic!("selected ⊆ active"),
                };
                let ctx = context_slots[pos]
                    .take()
                    .expect("each arm is selected at most once");
                Some((i, ctx))
            })
            .collect();

        RoundOutcome {
            recommendation_time: rec_time,
            creation_time,
            created,
            dropped,
            config_bytes: self.config_bytes(catalog),
        }
    }

    /// Observation step (Algorithm 2 lines 3-10 and 17): ingest the round's
    /// workload and observed executions, shape rewards, update the bandit,
    /// and forget on workload shifts.
    pub fn observe(&mut self, queries: &[Query], executions: &[QueryExecution]) {
        let intensity = self.store.ingest_round(queries, executions);

        // Fix the reward scale from the first observed round: the average
        // per-query execution time. Gains of a useful index are then O(1),
        // commensurate with the UCB exploration width.
        if self.reward_scale.is_none() && !executions.is_empty() {
            let total: f64 = executions.iter().map(|e| e.total.secs()).sum();
            self.reward_scale = Some((total / executions.len() as f64).max(1e-9));
        }
        let scale = self.reward_scale.unwrap_or(1.0);

        // Consume the played snapshot: the contexts move straight into the
        // bandit update below instead of being cloned again.
        let played = std::mem::take(&mut self.played);
        let selected: Vec<usize> = played.iter().map(|(i, _)| *i).collect();
        let maintenance = std::mem::take(&mut self.maintenance_this_round);
        let (rewards, used) = RewardShaper::shape(
            &self.store,
            queries,
            executions,
            &self.current,
            &self.created_this_round,
            &maintenance,
            &selected,
        );

        let round = self.store.round();
        for &arm in &used {
            let a = self.registry.arm_mut(arm);
            a.times_used += 1;
            a.last_used_round = Some(round);
        }

        // Per-arm reward telemetry (formerly `DBA_MAB_DEBUG`): the raw
        // shaped reward and its scaled value as the bandit will see it.
        if self.obs.enabled() {
            for (arm, r) in &rewards {
                let a = self.registry.arm(*arm);
                self.obs.event(
                    "mab.reward",
                    vec![
                        ("reward_s", (*r).into()),
                        ("scaled", (*r / scale).into()),
                        ("arm", (*arm).into()),
                        ("table", a.def.table.raw().into()),
                        ("key_cols", format!("{:?}", a.def.key_cols).into()),
                        ("include_cols", format!("{:?}", a.def.include_cols).into()),
                    ],
                );
            }
        }

        let (refreshes_before, decays_before) = self.bandit.maintenance_counters();
        if !played.is_empty() {
            let reward_by_arm: HashMap<usize, f64> = rewards.into_iter().collect();
            let clip = self.config.reward_clip;
            let plays: Vec<(SparseVec, f64)> = played
                .into_iter()
                .map(|(arm, ctx)| {
                    let reward = (reward_by_arm[&arm] / scale).clamp(-clip, clip);
                    (ctx, reward)
                })
                .collect();
            self.obs.span_enter("mab.scatter");
            if self.config.streaming_fast_path {
                self.bandit.update_sparse_batched(&plays);
            } else {
                self.bandit.update_sparse(&plays);
            }
            self.obs.span_exit("mab.scatter");
        }

        if self.config.forget_on_shift && round > 1 && intensity >= self.config.shift_threshold {
            // Forget proportionally to the shift: a full shift resets the
            // model, a partial shift decays it.
            self.bandit.forget(1.0 - intensity);
        }
        let (refreshes, decays) = self.bandit.maintenance_counters();
        if refreshes > refreshes_before {
            self.obs
                .counter("mab.refresh", refreshes - refreshes_before);
        }
        if decays > decays_before {
            self.obs.counter("mab.decay", decays - decays_before);
        }
    }

    /// Record the maintenance bill of a drifted round against the arms of
    /// the materialised configuration; the next [`observe`](Self::observe)
    /// folds it into the rewards (`r_t(i) = G_t − C_cre − C_maint`).
    pub fn note_data_change(&mut self, change: &DataChange) {
        for &(index_id, secs) in &change.index_maintenance {
            if let Some(&arm) = self.current.get(&index_id) {
                *self.maintenance_this_round.entry(arm).or_insert(0.0) += secs.secs();
            }
        }
    }
}

impl Advisor for MabTuner {
    fn name(&self) -> &str {
        "MAB"
    }

    fn before_round(
        &mut self,
        _round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
        _whatif: &mut dba_optimizer::WhatIfService,
    ) -> AdvisorCost {
        // The MAB deliberately does not consult the what-if service for
        // its scores — learning from *observed* executions instead of
        // optimiser estimates is the paper's thesis. The service still
        // arrives through the contract so a guardrail wrapped around this
        // tuner (and any estimate-assisted extension) shares the session's
        // plan memo.
        self.obs.span_enter("mab.recommend");
        let outcome = self.recommend_and_apply(catalog, stats);
        self.obs.span_exit("mab.recommend");
        AdvisorCost {
            recommendation: outcome.recommendation_time,
            creation: outcome.creation_time,
        }
    }

    fn on_data_change(&mut self, change: &DataChange) {
        self.note_data_change(change);
    }

    fn after_round(
        &mut self,
        _ctx: &mut crate::advisor::RoundContext<'_>,
        queries: &[Query],
        executions: &[QueryExecution],
    ) {
        self.obs.span_enter("mab.observe");
        self.observe(queries, executions);
        self.obs.span_exit("mab.observe");
    }

    fn begin_window(&mut self, mode: &WindowMode) {
        self.window_mode = mode.clone();
    }

    fn bandit_counters(&self) -> (u64, u64) {
        self.bandit.maintenance_counters()
    }

    fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{QueryId, TableId, TemplateId};
    use dba_engine::{Executor, Plan, Predicate};
    use dba_optimizer::{Planner, PlannerContext};
    use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("k", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "v",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 49_999 },
                ),
                ColumnSpec::new(
                    "w",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
                ColumnSpec::new(
                    "pad",
                    ColumnType::Dict { cardinality: 64 },
                    Distribution::Uniform { lo: 0, hi: 63 },
                ),
            ],
        );
        Catalog::new(vec![TableBuilder::new(t, 50_000).build(TableId(0), 77)])
    }

    fn query(round: u64, value: i64) -> Query {
        Query {
            id: QueryId(round),
            template: TemplateId(1),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 1), value)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        }
    }

    fn plan_and_run(
        catalog: &Catalog,
        stats: &StatsCatalog,
        cost: &CostModel,
        q: &Query,
    ) -> (Plan, QueryExecution) {
        let ctx = PlannerContext::from_catalog(catalog, stats, cost);
        let plan = Planner::new(&ctx).plan(q);
        let exec = Executor::new(cost.clone()).execute(catalog, q, &plan);
        (plan, exec)
    }

    /// Drive the full loop for a repeating single-template workload: the
    /// tuner must converge to a configuration that speeds the query up.
    #[test]
    fn converges_on_repeating_workload() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                ..MabConfig::default()
            },
        );

        let mut first_exec_time = None;
        let mut last_exec_time = None;
        for round in 0..8 {
            let outcome = tuner.recommend_and_apply(&mut cat, &stats);
            assert!(outcome.config_bytes <= cat.database_bytes());
            let q = query(round, (round as i64) * 17 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            if round == 0 {
                first_exec_time = Some(exec.total);
            }
            last_exec_time = Some(exec.total);
            tuner.observe(&[q], &[exec]);
        }
        let first = first_exec_time.unwrap().secs();
        let last = last_exec_time.unwrap().secs();
        assert!(
            last < first / 2.0,
            "tuner should find a useful index: first {first}, last {last}"
        );
        assert!(tuner.arm_count() > 0);
    }

    #[test]
    fn round_one_is_a_cold_start() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let mut tuner = MabTuner::new(&cat, CostModel::unit_scale(), MabConfig::default());
        let outcome = tuner.recommend_and_apply(&mut cat, &stats);
        assert_eq!(outcome.created, 0, "no history, no indexes");
        assert!(outcome.recommendation_time.secs() > 0.0, "setup charged");
        assert_eq!(cat.all_indexes().count(), 0);
    }

    #[test]
    fn memory_budget_is_respected_every_round() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let budget = cat.database_bytes() / 4;
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: budget,
                ..MabConfig::default()
            },
        );
        for round in 0..6 {
            tuner.recommend_and_apply(&mut cat, &stats);
            assert!(
                cat.index_bytes() <= budget,
                "round {round}: {} > budget {budget}",
                cat.index_bytes()
            );
            let q = query(round, round as i64 * 31 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
    }

    #[test]
    fn drops_indexes_when_workload_shifts() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                qoi_window: 1,
                ..MabConfig::default()
            },
        );
        // Warm up with template 1 until indexes exist.
        for round in 0..4 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = query(round, round as i64 * 13 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
        let before = cat.all_indexes().count();
        assert!(before > 0, "warm-up must materialise something");

        // Shift to a disjoint template on column w.
        for round in 4..8 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = Query {
                id: QueryId(round),
                template: TemplateId(2),
                tables: vec![TableId(0)],
                predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 2), 5)],
                joins: vec![],
                payload: vec![ColumnId::new(TableId(0), 2)],
                aggregated: true,
            };
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
        // Old template-1 indexes must have been dropped (QoI window 1).
        for ix in cat.all_indexes() {
            assert_ne!(
                ix.def().key_cols,
                vec![1],
                "stale v-index should be dropped after the shift"
            );
        }
    }

    /// Regression: `times_selected` used to count only the round an arm's
    /// index was *created*; incumbents retained across rounds were missed.
    #[test]
    fn times_selected_counts_retained_incumbents() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                ..MabConfig::default()
            },
        );
        for round in 0..8 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = query(round, (round as i64) * 17 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
        // Some arm must have been kept in the configuration over several
        // rounds; its selection count must exceed its creation count (1).
        let retained = tuner
            .current
            .values()
            .map(|&arm| tuner.registry.arm(arm).times_selected)
            .max()
            .expect("a stable workload materialises something");
        assert!(
            retained > 1,
            "a retained incumbent must count every selected round, got {retained}"
        );
    }

    /// Heavy churn makes the bandit drop an index it would otherwise keep:
    /// the maintenance term of `r_t(i) = G_t − C_cre − C_maint` at work.
    #[test]
    fn sustained_maintenance_drives_index_drop() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                ..MabConfig::default()
            },
        );
        // Warm up until an index is materialised.
        for round in 0..4 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = query(round, (round as i64) * 17 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
        assert!(cat.all_indexes().count() > 0, "warm-up materialises");

        // Now every round charges each materialised index a maintenance
        // bill far beyond any gain it can produce.
        let mut dropped_all = false;
        for round in 4..14 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let change = DataChange {
                index_maintenance: cat
                    .all_indexes()
                    .map(|ix| (ix.id(), SimSeconds::new(10_000.0)))
                    .collect(),
                table_changes: vec![],
            };
            tuner.note_data_change(&change);
            let q = query(round, (round as i64) * 17 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
            if cat.all_indexes().count() == 0 {
                dropped_all = true;
                break;
            }
        }
        // One more recommendation applies the learned penalty.
        tuner.recommend_and_apply(&mut cat, &stats);
        assert!(
            dropped_all || cat.all_indexes().count() == 0,
            "punishing maintenance must drive the configuration to empty, \
             still holding {} indexes",
            cat.all_indexes().count()
        );
    }

    #[test]
    fn reuse_config_window_is_free_and_touches_nothing() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                ..MabConfig::default()
            },
        );
        for round in 0..4 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = query(round, round as i64 * 13 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
        let before: Vec<_> = {
            let mut ids: Vec<_> = cat.all_indexes().map(|ix| ix.id()).collect();
            ids.sort_unstable();
            ids
        };
        assert!(!before.is_empty());
        tuner.begin_window(&WindowMode {
            level: DegradeLevel::ReuseConfig,
            changed_templates: vec![],
        });
        let outcome = tuner.recommend_and_apply(&mut cat, &stats);
        assert_eq!(outcome.recommendation_time, SimSeconds::ZERO);
        assert_eq!((outcome.created, outcome.dropped), (0, 0));
        let after: Vec<_> = {
            let mut ids: Vec<_> = cat.all_indexes().map(|ix| ix.id()).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(before, after, "configuration must be reused untouched");
        assert!(tuner.played.is_empty(), "no plays to learn from");
    }

    /// An amortized window never drops incumbents and only prices the
    /// changed templates' arms.
    #[test]
    fn amortized_window_is_merge_only() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                qoi_window: 1,
                ..MabConfig::default()
            },
        );
        for round in 0..4 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = query(round, round as i64 * 13 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            tuner.observe(&[q], &[exec]);
        }
        let before: Vec<_> = cat.all_indexes().map(|ix| ix.id()).collect();
        assert!(!before.is_empty());
        // Shift the workload entirely to an unrelated template, then run
        // an amortized window scoped to a template nobody has seen: with
        // nothing to price, the old configuration must survive (a full
        // window with qoi_window=1 would drop it — see
        // `drops_indexes_when_workload_shifts`).
        let shifted = Query {
            id: QueryId(99),
            template: TemplateId(2),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 2), 5)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 2)],
            aggregated: true,
        };
        let (_, exec) = plan_and_run(&cat, &stats, &cost, &shifted);
        tuner.observe(&[shifted], &[exec]);
        tuner.begin_window(&WindowMode {
            level: DegradeLevel::Amortized,
            changed_templates: vec![TemplateId(77)],
        });
        let outcome = tuner.recommend_and_apply(&mut cat, &stats);
        assert_eq!(outcome.dropped, 0, "amortized windows never drop");
        for id in &before {
            assert!(cat.index(*id).is_ok(), "incumbent {id:?} must survive");
        }
        // Back at full level with the workload still shifted, the stale
        // configuration is torn down again.
        let shifted2 = Query {
            id: QueryId(100),
            template: TemplateId(2),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 2), 9)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 2)],
            aggregated: true,
        };
        let (_, exec2) = plan_and_run(&cat, &stats, &cost, &shifted2);
        tuner.observe(&[shifted2], &[exec2]);
        tuner.begin_window(&WindowMode::default());
        let outcome = tuner.recommend_and_apply(&mut cat, &stats);
        assert!(outcome.dropped > 0, "full window regains drop authority");
    }

    /// The streaming fast path (batched scatter update + fingerprint score
    /// memo) must still converge on the repeating workload.
    #[test]
    fn fast_path_converges_on_repeating_workload() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(
            &cat,
            cost.clone(),
            MabConfig {
                memory_budget_bytes: cat.database_bytes(),
                streaming_fast_path: true,
                ..MabConfig::default()
            },
        );
        let mut first = None;
        let mut last = None;
        for round in 0..8 {
            tuner.recommend_and_apply(&mut cat, &stats);
            let q = query(round, (round as i64) * 17 % 50_000);
            let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
            if round == 0 {
                first = Some(exec.total.secs());
            }
            last = Some(exec.total.secs());
            tuner.observe(&[q], &[exec]);
        }
        let (first, last) = (first.unwrap(), last.unwrap());
        assert!(
            last < first / 2.0,
            "fast path must converge: {first} → {last}"
        );
        let (refreshes, _) = tuner.bandit_counters();
        assert!(refreshes > 0, "batched updates re-invert once per window");
    }

    #[test]
    fn recommendation_time_scales_with_arms() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut tuner = MabTuner::new(&cat, cost.clone(), MabConfig::default());
        // Round 1: cold start (setup only).
        let o1 = tuner.recommend_and_apply(&mut cat, &stats);
        let q = query(0, 5);
        let (_, exec) = plan_and_run(&cat, &stats, &cost, &q);
        tuner.observe(&[q], &[exec]);
        // Round 2: arms exist now.
        let o2 = tuner.recommend_and_apply(&mut cat, &stats);
        assert!(o1.recommendation_time.secs() >= 8.0, "setup in round 1");
        assert!(o2.recommendation_time.secs() > 0.0);
        assert!(
            o2.recommendation_time.secs() < o1.recommendation_time.secs(),
            "steady-state recommendation is cheap (Table I)"
        );
    }
}
