//! The query store (Algorithm 2): summarises the observed workload into
//! templates, tracks per-template statistics, selects the queries of
//! interest (QoI), and measures workload-shift intensity for forgetting.
//!
//! It also maintains the observed full-table-scan reference times the
//! reward shaping needs: `Ctab(τ(i), q, ∅)` per (template, table), with the
//! footnote-3 fallback ("when we do not observe this, we estimate it with
//! the maximum secondary index scan/seek time").

use std::collections::HashMap;

use dba_common::{SimSeconds, TableId, TemplateId};
use dba_engine::{Query, QueryExecution};

/// Per-template bookkeeping.
#[derive(Debug, Clone)]
pub struct TemplateStats {
    pub template: TemplateId,
    pub first_seen_round: usize,
    pub last_seen_round: usize,
    pub occurrences: u32,
    /// Most recent instance of the template (used for arm generation).
    pub last_instance: Query,
    /// Observed full-scan time per table (reference for gains).
    pub full_scan_refs: HashMap<TableId, SimSeconds>,
    /// Maximum observed secondary-index access time per table (fallback).
    pub max_index_time: HashMap<TableId, SimSeconds>,
}

/// Workload summary across rounds.
#[derive(Debug, Default)]
pub struct QueryStore {
    templates: HashMap<TemplateId, TemplateStats>,
    round: usize,
    /// Shift intensity of the most recent round: fraction of this round's
    /// templates that were previously unseen.
    last_shift_intensity: f64,
}

impl QueryStore {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    #[inline]
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    pub fn template(&self, id: TemplateId) -> Option<&TemplateStats> {
        self.templates.get(&id)
    }

    /// Ingest one round's workload together with its observed executions
    /// (paired by position). Returns the shift intensity of the round.
    pub fn ingest_round(&mut self, queries: &[Query], executions: &[QueryExecution]) -> f64 {
        debug_assert_eq!(queries.len(), executions.len());
        self.round += 1;
        let mut seen_templates: Vec<TemplateId> = Vec::new();
        let mut new_templates = 0usize;

        for (q, e) in queries.iter().zip(executions) {
            if !seen_templates.contains(&q.template) {
                seen_templates.push(q.template);
                if !self.templates.contains_key(&q.template) {
                    new_templates += 1;
                }
            }
            let round = self.round;
            let entry = self
                .templates
                .entry(q.template)
                .or_insert_with(|| TemplateStats {
                    template: q.template,
                    first_seen_round: round,
                    last_seen_round: round,
                    occurrences: 0,
                    last_instance: q.clone(),
                    full_scan_refs: HashMap::new(),
                    max_index_time: HashMap::new(),
                });
            entry.last_seen_round = round;
            entry.occurrences += 1;
            entry.last_instance = q.clone();

            for access in &e.accesses {
                if access.is_full_scan {
                    entry.full_scan_refs.insert(access.table, access.time);
                } else if access.index.is_some() {
                    let cur = entry
                        .max_index_time
                        .entry(access.table)
                        .or_insert(SimSeconds::ZERO);
                    *cur = cur.max(access.time);
                }
            }
        }

        self.last_shift_intensity = if seen_templates.is_empty() {
            0.0
        } else {
            new_templates as f64 / seen_templates.len() as f64
        };
        self.last_shift_intensity
    }

    /// Shift intensity of the most recent ingested round.
    pub fn shift_intensity(&self) -> f64 {
        self.last_shift_intensity
    }

    /// Queries of interest: the latest instance of every template seen
    /// within the last `window` rounds.
    pub fn queries_of_interest(&self, window: usize) -> Vec<&Query> {
        let horizon = self.round.saturating_sub(window);
        let mut qois: Vec<&TemplateStats> = self
            .templates
            .values()
            .filter(|t| t.last_seen_round > horizon)
            .collect();
        qois.sort_by_key(|t| t.template);
        qois.iter().map(|t| &t.last_instance).collect()
    }

    /// The full-scan reference time for (template, table): the observed
    /// full scan if any, else the footnote-3 fallback (max index time),
    /// else `None`.
    pub fn scan_reference(&self, template: TemplateId, table: TableId) -> Option<SimSeconds> {
        let t = self.templates.get(&template)?;
        t.full_scan_refs
            .get(&table)
            .or_else(|| t.max_index_time.get(&table))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{ColumnId, QueryId};
    use dba_engine::{AccessStats, Predicate};

    fn query(template: u32) -> Query {
        Query {
            id: QueryId(template as u64),
            template: TemplateId(template),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 0), 1)],
            joins: vec![],
            payload: vec![],
            aggregated: false,
        }
    }

    fn exec_with(accesses: Vec<AccessStats>) -> QueryExecution {
        QueryExecution {
            query: QueryId(0),
            total: accesses.iter().map(|a| a.time).sum(),
            accesses,
            join_time: SimSeconds::ZERO,
            agg_time: SimSeconds::ZERO,
            result_rows: 0,
        }
    }

    fn scan_access(table: u32, secs: f64) -> AccessStats {
        AccessStats {
            table: TableId(table),
            index: None,
            time: SimSeconds::new(secs),
            rows_out: 1,
            is_full_scan: true,
        }
    }

    fn index_access(table: u32, secs: f64) -> AccessStats {
        AccessStats {
            table: TableId(table),
            index: Some(dba_common::IndexId(0)),
            time: SimSeconds::new(secs),
            rows_out: 1,
            is_full_scan: false,
        }
    }

    #[test]
    fn templates_are_tracked_across_rounds() {
        let mut qs = QueryStore::new();
        qs.ingest_round(
            &[query(1), query(2)],
            &[exec_with(vec![]), exec_with(vec![])],
        );
        qs.ingest_round(&[query(2)], &[exec_with(vec![])]);
        assert_eq!(qs.template_count(), 2);
        let t1 = qs.template(TemplateId(1)).unwrap();
        let t2 = qs.template(TemplateId(2)).unwrap();
        assert_eq!(t1.last_seen_round, 1);
        assert_eq!(t2.last_seen_round, 2);
        assert_eq!(t2.occurrences, 2);
    }

    #[test]
    fn shift_intensity_measures_new_templates() {
        let mut qs = QueryStore::new();
        let i1 = qs.ingest_round(
            &[query(1), query(2)],
            &[exec_with(vec![]), exec_with(vec![])],
        );
        assert_eq!(i1, 1.0, "everything is new in round 1");
        let i2 = qs.ingest_round(
            &[query(1), query(2)],
            &[exec_with(vec![]), exec_with(vec![])],
        );
        assert_eq!(i2, 0.0, "repeat round");
        let i3 = qs.ingest_round(
            &[query(1), query(3)],
            &[exec_with(vec![]), exec_with(vec![])],
        );
        assert_eq!(i3, 0.5, "half the templates are new");
    }

    #[test]
    fn qoi_window_filters_stale_templates() {
        let mut qs = QueryStore::new();
        qs.ingest_round(&[query(1)], &[exec_with(vec![])]);
        qs.ingest_round(&[query(2)], &[exec_with(vec![])]);
        qs.ingest_round(&[query(3)], &[exec_with(vec![])]);
        let qoi1 = qs.queries_of_interest(1);
        assert_eq!(qoi1.len(), 1);
        assert_eq!(qoi1[0].template, TemplateId(3));
        let qoi2 = qs.queries_of_interest(2);
        assert_eq!(qoi2.len(), 2);
        let qoi_all = qs.queries_of_interest(10);
        assert_eq!(qoi_all.len(), 3);
    }

    #[test]
    fn scan_reference_prefers_observed_full_scan() {
        let mut qs = QueryStore::new();
        qs.ingest_round(
            &[query(1)],
            &[exec_with(vec![scan_access(0, 5.0), index_access(0, 2.0)])],
        );
        assert_eq!(
            qs.scan_reference(TemplateId(1), TableId(0)),
            Some(SimSeconds::new(5.0))
        );
    }

    #[test]
    fn scan_reference_falls_back_to_max_index_time() {
        let mut qs = QueryStore::new();
        qs.ingest_round(
            &[query(1)],
            &[exec_with(vec![index_access(0, 2.0), index_access(0, 3.5)])],
        );
        // Footnote 3: no full scan observed → max index time.
        assert_eq!(
            qs.scan_reference(TemplateId(1), TableId(0)),
            Some(SimSeconds::new(3.5))
        );
        assert_eq!(qs.scan_reference(TemplateId(1), TableId(9)), None);
        assert_eq!(qs.scan_reference(TemplateId(8), TableId(0)), None);
    }

    #[test]
    fn full_scan_reference_updates_to_latest() {
        let mut qs = QueryStore::new();
        qs.ingest_round(&[query(1)], &[exec_with(vec![scan_access(0, 5.0)])]);
        qs.ingest_round(&[query(1)], &[exec_with(vec![scan_access(0, 4.0)])]);
        assert_eq!(
            qs.scan_reference(TemplateId(1), TableId(0)),
            Some(SimSeconds::new(4.0))
        );
    }
}
