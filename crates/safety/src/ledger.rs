//! The safety ledger: shadow prices, regret accounting, and the record of
//! every guardrail decision (veto, rollback, throttle).
//!
//! The ledger is shared state between the [`SafeguardedAdvisor`] driving
//! the guardrail inside the tuning loop and the session that owns the loop
//! (which reads per-round snapshots for its events and attaches the final
//! [`SafetyReport`] to its run result). It is behind an `Arc<Mutex<…>>`
//! because the advisor is handed to the session by value (type-erased) and
//! the session still needs to observe it; sessions are single-threaded, so
//! the lock is never contended.
//!
//! [`SafeguardedAdvisor`]: crate::SafeguardedAdvisor

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

use dba_common::{IndexId, SimSeconds, TemplateId};
use dba_core::{DataChange, DegradeLevel, WindowMode};
use dba_engine::{CostModel, Query, QueryExecution};
use dba_optimizer::{StatsCatalog, WhatIfService};
use dba_storage::{Catalog, IndexDef};

use crate::config::SafetyConfig;

/// One completed round's safety accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSafety {
    /// 1-based round number (matches the session's `RoundRecord::round`).
    pub round: usize,
    /// Shadow price of the round's workload under the **empty** config
    /// (the do-nothing baseline), via the what-if path.
    pub shadow_noindex_s: f64,
    /// Shadow price of the round's workload under the config as it stood
    /// **before** this round's recommendation (the freeze-this-round
    /// counterfactual).
    pub shadow_prev_s: f64,
    /// What the round actually billed: recommendation + creation +
    /// execution + maintenance, vetoed creations refunded.
    pub actual_s: f64,
    /// Observed regret vs the do-nothing baseline:
    /// `actual_s − shadow_noindex_s`.
    pub regret_s: f64,
    /// Running total of `regret_s` through this round.
    pub cum_regret_s: f64,
    /// Creations vetoed at the start of this round.
    pub vetoes: usize,
    /// Indexes rolled back at the start of this round.
    pub rollbacks: usize,
    /// Whether the guardrail froze the configuration this round.
    pub throttled: bool,
}

/// Aggregated guardrail outcome of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SafetyReport {
    /// Per-round trajectory, in round order.
    pub rounds: Vec<RoundSafety>,
    /// Total creations vetoed.
    pub vetoes: usize,
    /// Total indexes rolled back.
    pub rollbacks: usize,
    /// Rounds spent with the configuration frozen.
    pub throttled_rounds: usize,
    /// Final cumulative observed regret vs the do-nothing baseline.
    pub cum_regret_s: f64,
    /// Final cumulative shadow NoIndex price (the regret denominator).
    pub cum_shadow_noindex_s: f64,
}

impl SafetyReport {
    /// Cumulative regret as a fraction of the shadow NoIndex price — the
    /// quantity the configured `regret_bound_factor` bounds (up to slack).
    pub fn regret_factor(&self) -> f64 {
        if self.cum_shadow_noindex_s <= 0.0 {
            return 0.0;
        }
        self.cum_regret_s / self.cum_shadow_noindex_s
    }
}

/// Cheap copyable snapshot of the guardrail's running totals, for
/// per-round session events.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SafetySnapshot {
    pub cum_regret_s: f64,
    pub throttled: bool,
    pub vetoes: usize,
    pub rollbacks: usize,
}

/// The in-flight round's accounting, closed out (shadow-priced) in the
/// round's own observation step, against the execution-time snapshot.
#[derive(Debug, Default)]
struct PendingRound {
    round: usize,
    rec_s: f64,
    cre_s: f64,
    exec_s: f64,
    maint_s: f64,
    vetoes: usize,
    rollbacks: usize,
    throttled: bool,
}

/// Mutable guardrail state. Private to the crate; drive it through
/// [`SafeguardedAdvisor`](crate::SafeguardedAdvisor) and read it through
/// [`SafetyLedger`].
pub(crate) struct SafetyState {
    pub(crate) config: SafetyConfig,
    pub(crate) cost: CostModel,
    report: SafetyReport,
    throttled: bool,
    pending: Option<PendingRound>,
    /// Config before the pending round's recommendation, as what-if defs.
    prev_config: Vec<IndexDef>,
    /// The pending round's executed workload (recorded in `after_round`).
    queries: Vec<Query>,
    /// Maintenance billed to each index during the pending round.
    maintenance_by_index: HashMap<IndexId, f64>,
    /// Sliding windows of per-index realized net benefit.
    benefit_windows: HashMap<IndexId, VecDeque<f64>>,
    /// Rolled-back definitions → round (1-based, exclusive) their
    /// quarantine expires; re-creations before then are vetoed on sight.
    quarantine: HashMap<IndexDef, usize>,
    /// Shadow NoIndex price of the most recently closed round (the round
    /// creation budget's reference).
    last_shadow_noindex_s: Option<f64>,
    /// Rollback verdicts produced when the previous round closed, waiting
    /// for the next round boundary (the guard applies catalog mutations
    /// only in `before_round`).
    pending_rollbacks: Vec<IndexId>,
    /// Degrade level of the window being accounted (streaming drivers set
    /// it through [`note_window_mode`](Self::note_window_mode); fixed-round
    /// sessions never do, leaving every round at `Full`).
    window_level: DegradeLevel,
    /// Templates whose arrival share moved — the re-pricing scope of an
    /// `Amortized` close.
    changed_templates: HashSet<TemplateId>,
    /// Per-query arrival counts for the pending window, parallel to
    /// `queries`. Streaming sessions execute one instance per distinct
    /// template and bill `weight ×` its price; `None` is the fixed-round
    /// path, whose accounting stays byte-identical to the unweighted code.
    window_weights: Option<Vec<f64>>,
    /// Amortisation memo: each template's most recent unit shadow prices
    /// `(noindex_s, prev_s)`. Refreshed whenever a template is re-priced
    /// live; degraded closes read stale entries by design — that staleness
    /// is exactly the latency/accuracy trade the degrade ladder buys.
    template_prices: HashMap<TemplateId, (f64, f64)>,
}

impl SafetyState {
    fn new(config: SafetyConfig, cost: CostModel) -> Self {
        SafetyState {
            config,
            cost,
            report: SafetyReport::default(),
            throttled: false,
            pending: None,
            prev_config: Vec::new(),
            queries: Vec::new(),
            maintenance_by_index: HashMap::new(),
            benefit_windows: HashMap::new(),
            quarantine: HashMap::new(),
            last_shadow_noindex_s: None,
            pending_rollbacks: Vec::new(),
            window_level: DegradeLevel::Full,
            changed_templates: HashSet::new(),
            window_weights: None,
            template_prices: HashMap::new(),
        }
    }

    /// Record the upcoming window's degrade level (forwarded by the guard's
    /// `begin_window`); scopes the next `close_round`'s shadow pricing.
    pub(crate) fn note_window_mode(&mut self, mode: &WindowMode) {
        self.window_level = mode.level;
        // `mode.changed_templates` is a Vec; collecting into the set is
        // order-insensitive.
        self.changed_templates = mode
            .changed_templates
            .iter()
            .copied()
            .collect::<HashSet<_>>();
    }

    /// Record the pending window's per-query arrival counts (parallel to
    /// the `note_execution` workload). Streaming sessions call this right
    /// before the observation step; the weights are consumed when the
    /// window closes.
    pub(crate) fn note_window_weights(&mut self, weights: Vec<f64>) {
        self.window_weights = Some(weights);
    }

    /// Rollback verdicts awaiting the next round boundary.
    pub(crate) fn take_pending_rollbacks(&mut self) -> Vec<IndexId> {
        std::mem::take(&mut self.pending_rollbacks)
    }

    pub(crate) fn set_pending_rollbacks(&mut self, victims: Vec<IndexId>) {
        self.pending_rollbacks = victims;
    }

    pub(crate) fn is_throttled(&self) -> bool {
        self.throttled
    }

    pub(crate) fn last_shadow_noindex_s(&self) -> Option<f64> {
        self.last_shadow_noindex_s
    }

    /// Close the in-flight round (if any): shadow-price its workload,
    /// update regret and the throttle latch, assess every materialised
    /// index's realized net benefit, and return the indexes whose windowed
    /// benefit went negative — the rollback victims the guard applies at
    /// the next round boundary.
    ///
    /// Called from the guard's `after_round` with the **execution-time
    /// snapshot** of the catalog and statistics — the pre-drift state the
    /// round's queries actually ran against — so the do-nothing baseline
    /// is priced on the round it prices. (Pricing at the next round's
    /// open, as this used to, overpriced the baseline by up to one round
    /// of insert growth, biasing observed regret low.) All costings flow
    /// through the session's shared [`WhatIfService`], whose memo makes
    /// the leave-one-out rollback assessment cost one plan per (query,
    /// touched-table subset) instead of O(used-indexes × queries) fresh
    /// plans per round.
    pub(crate) fn close_round(
        &mut self,
        catalog: &Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
    ) -> Vec<IndexId> {
        let Some(pending) = self.pending.take() else {
            return Vec::new();
        };
        self.quarantine.retain(|_, expiry| *expiry > pending.round);
        let weights = self.window_weights.take();
        let level = self.window_level;
        self.window_level = DegradeLevel::Full;
        let (shadow_noindex_s, shadow_prev_s) = if self.queries.is_empty() {
            (0.0, 0.0)
        } else if let Some(weights) = weights.as_deref() {
            self.shadow_price_weighted(catalog, stats, whatif, weights, level)
        } else {
            let (ni, _) = whatif.cost_workload(catalog, stats, &self.queries, &[], false);
            let (pv, _) =
                whatif.cost_workload(catalog, stats, &self.queries, &self.prev_config, false);
            (ni.secs(), pv.secs())
        };
        let actual_s = pending.rec_s + pending.cre_s + pending.exec_s + pending.maint_s;
        let regret_s = actual_s - shadow_noindex_s;
        self.report.cum_regret_s += regret_s;
        self.report.cum_shadow_noindex_s += shadow_noindex_s;

        // Rollback assessment: each index's marginal what-if gain on the
        // round's workload, minus the maintenance it billed. Consistently
        // negative over the window ⇒ the index is harming the workload.
        // Degraded streaming windows skip it — the leave-one-out pass is
        // the most optimiser-hungry part of the close, and a benefit
        // window that fills only on `Full` windows still converges, just
        // more slowly.
        let mut victims = Vec::new();
        if !self.queries.is_empty() && level == DegradeLevel::Full {
            let defs: Vec<(IndexId, IndexDef)> = catalog
                .all_indexes()
                .map(|ix| (ix.id(), ix.def().clone()))
                .collect();
            if !defs.is_empty() {
                let all: Vec<IndexDef> = defs.iter().map(|(_, d)| d.clone()).collect();
                // The full-config pass also reports which candidates any
                // plan used: an index no plan touches has marginal benefit
                // exactly 0, so only the used ones need a leave-one-out
                // pass — and those passes share every untouched query's
                // plan with the full pass through the service's memo.
                let (full, usage) =
                    whatif.cost_workload(catalog, stats, &self.queries, &all, false);
                // Streaming windows bill weighted executions, so benefit
                // must be weighted the same way or every index looks
                // maintenance-dominated; the re-costings land entirely on
                // the memo the unweighted pass just filled.
                let full = match weights.as_deref() {
                    Some(w) => {
                        whatif
                            .cost_workload_weighted(catalog, stats, &self.queries, w, &all, false)
                            .0
                    }
                    None => full,
                };
                let loo_configs: Vec<Vec<IndexDef>> = defs
                    .iter()
                    .enumerate()
                    .filter(|&(skip, _)| usage[skip] > 0)
                    .map(|(skip, _)| {
                        defs.iter()
                            .enumerate()
                            .filter(|&(j, _)| j != skip)
                            .map(|(_, (_, d))| d.clone())
                            .collect()
                    })
                    .collect();
                let loo_totals: Vec<SimSeconds> = match weights.as_deref() {
                    Some(w) => loo_configs
                        .iter()
                        .map(|cfg| {
                            whatif
                                .cost_workload_weighted(
                                    catalog,
                                    stats,
                                    &self.queries,
                                    w,
                                    cfg,
                                    false,
                                )
                                .0
                        })
                        .collect(),
                    None => whatif
                        .marginals(catalog, stats, &self.queries, &loo_configs, false)
                        .into_iter()
                        .map(|c| c.total)
                        .collect(),
                };
                let mut loo = loo_totals.into_iter();
                for (skip, (id, _)) in defs.iter().enumerate() {
                    let marginal = if usage[skip] == 0 {
                        0.0
                    } else {
                        let without = loo.next().expect("one leave-one-out pass per used index");
                        (without - full).secs().max(0.0)
                    };
                    let maint = self.maintenance_by_index.get(id).copied().unwrap_or(0.0);
                    let window = self.benefit_windows.entry(*id).or_default();
                    window.push_back(marginal - maint);
                    while window.len() > self.config.rollback_window {
                        window.pop_front();
                    }
                    if window.len() == self.config.rollback_window
                        && window.iter().sum::<f64>() < 0.0
                    {
                        victims.push(*id);
                        self.benefit_windows.remove(id);
                    }
                }
            }
            // Windows of indexes that no longer exist are dead weight.
            self.benefit_windows
                .retain(|id, _| catalog.index(*id).is_ok());
        }

        // Throttle latch with hysteresis: enter above the bound (after the
        // warm-up — early creation is an investment, not yet regret),
        // leave below `recovery_fraction ×` the bound (which keeps growing
        // with the shadow denominator, so a frozen-but-healthy session
        // recovers).
        let bound = self.config.regret_bound_s(self.report.cum_shadow_noindex_s);
        let warmed_up = pending.round >= self.config.warmup_rounds;
        if !self.throttled && warmed_up && self.report.cum_regret_s > bound {
            self.throttled = true;
        } else if self.throttled
            && self.report.cum_regret_s <= self.config.recovery_fraction * bound
        {
            self.throttled = false;
        }

        self.report.rounds.push(RoundSafety {
            round: pending.round,
            shadow_noindex_s,
            shadow_prev_s,
            actual_s,
            regret_s,
            cum_regret_s: self.report.cum_regret_s,
            vetoes: pending.vetoes,
            rollbacks: pending.rollbacks,
            throttled: pending.throttled,
        });
        self.last_shadow_noindex_s = Some(shadow_noindex_s);
        self.queries.clear();
        self.maintenance_by_index.clear();
        victims
    }

    /// Weighted shadow pricing for streaming windows: each distinct
    /// template executed once, billed `weight ×` its unit price. `Full`
    /// re-prices every query live and refreshes the per-template memo;
    /// `Amortized` re-prices only the templates whose arrival share
    /// changed; `ReuseConfig` answers entirely from the memo. Templates
    /// the memo has never seen (a burst introducing fresh templates under
    /// a blown budget) are priced live at any level — a stale price is an
    /// acceptable degrade, a missing one is not.
    fn shadow_price_weighted(
        &mut self,
        catalog: &Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
        weights: &[f64],
        level: DegradeLevel,
    ) -> (f64, f64) {
        debug_assert_eq!(self.queries.len(), weights.len());
        let mut noindex_s = 0.0;
        let mut prev_s = 0.0;
        let mut live: Vec<usize> = Vec::new();
        for (i, q) in self.queries.iter().enumerate() {
            let reprice = match level {
                DegradeLevel::Full => true,
                DegradeLevel::ReuseConfig => false,
                DegradeLevel::Amortized => self.changed_templates.contains(&q.template),
            };
            let cached = (!reprice)
                .then(|| self.template_prices.get(&q.template))
                .flatten();
            match cached {
                Some(&(ni, pv)) => {
                    noindex_s += weights[i] * ni;
                    prev_s += weights[i] * pv;
                }
                None => live.push(i),
            }
        }
        if !live.is_empty() {
            let queries: Vec<Query> = live.iter().map(|&i| self.queries[i].clone()).collect();
            let live_weights: Vec<f64> = live.iter().map(|&i| weights[i]).collect();
            let (ni_total, ni_each) =
                whatif.cost_workload_weighted(catalog, stats, &queries, &live_weights, &[], false);
            let (pv_total, pv_each) = whatif.cost_workload_weighted(
                catalog,
                stats,
                &queries,
                &live_weights,
                &self.prev_config,
                false,
            );
            noindex_s += ni_total.secs();
            prev_s += pv_total.secs();
            for ((q, &ni), &pv) in queries.iter().zip(&ni_each).zip(&pv_each) {
                self.template_prices.insert(q.template, (ni, pv));
            }
        }
        (noindex_s, prev_s)
    }

    /// Open accounting for round `round` (1-based).
    pub(crate) fn open_round(&mut self, round: usize) {
        self.pending = Some(PendingRound {
            round,
            ..PendingRound::default()
        });
    }

    /// Snapshot the configuration the round starts from — the round's
    /// do-nothing counterfactual for shadow pricing.
    pub(crate) fn set_prev_config(&mut self, prev_config: Vec<IndexDef>) {
        self.prev_config = prev_config;
    }

    /// Record a rollback and quarantine the definition so the inner tuner
    /// — which cannot know why its index vanished — does not re-build it
    /// next round (create/drop thrash would pay creation forever).
    pub(crate) fn note_rollback(&mut self, def: IndexDef) {
        self.report.rollbacks += 1;
        if let Some(p) = &mut self.pending {
            p.rollbacks += 1;
            if self.config.quarantine_rounds > 0 {
                self.quarantine
                    .insert(def, p.round + self.config.quarantine_rounds);
            }
        }
    }

    /// Whether `def` is still quarantined at (1-based) `round`.
    pub(crate) fn is_quarantined(&self, def: &IndexDef, round: usize) -> bool {
        self.quarantine
            .get(def)
            .is_some_and(|&expiry| round < expiry)
    }

    pub(crate) fn note_veto(&mut self) {
        self.report.vetoes += 1;
        if let Some(p) = &mut self.pending {
            p.vetoes += 1;
        }
    }

    pub(crate) fn note_throttled(&mut self) {
        self.report.throttled_rounds += 1;
        if let Some(p) = &mut self.pending {
            p.throttled = true;
        }
    }

    pub(crate) fn note_advisor_cost(&mut self, rec_s: f64, cre_s: f64) {
        if let Some(p) = &mut self.pending {
            p.rec_s = rec_s;
            p.cre_s = cre_s;
        }
    }

    pub(crate) fn note_data_change(&mut self, change: &DataChange) {
        for &(id, secs) in &change.index_maintenance {
            *self.maintenance_by_index.entry(id).or_insert(0.0) += secs.secs();
        }
        if let Some(p) = &mut self.pending {
            p.maint_s += change.total_maintenance().secs();
        }
    }

    pub(crate) fn note_execution(&mut self, queries: &[Query], executions: &[QueryExecution]) {
        self.queries = queries.to_vec();
        if let Some(p) = &mut self.pending {
            p.exec_s += executions.iter().map(|e| e.total.secs()).sum::<f64>();
        }
    }

    /// The most recently closed round's accounting, if any (the guard
    /// reads it right after `close_round` to emit its round-close event).
    pub(crate) fn last_round(&self) -> Option<RoundSafety> {
        self.report.rounds.last().copied()
    }

    fn snapshot(&self) -> SafetySnapshot {
        SafetySnapshot {
            cum_regret_s: self.report.cum_regret_s,
            throttled: self.throttled,
            vetoes: self.report.vetoes,
            rollbacks: self.report.rollbacks,
        }
    }
}

/// Shared handle to the guardrail state: the [`SafeguardedAdvisor`] writes
/// through it from inside the tuning loop, the session reads snapshots and
/// the final report through its own clone.
///
/// [`SafeguardedAdvisor`]: crate::SafeguardedAdvisor
#[derive(Clone)]
pub struct SafetyLedger {
    state: Arc<Mutex<SafetyState>>,
}

impl SafetyLedger {
    pub fn new(config: SafetyConfig, cost: CostModel) -> Self {
        SafetyLedger {
            state: Arc::new(Mutex::new(SafetyState::new(config, cost))),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, SafetyState> {
        // lint: allow(C01) — the SafetyLedger wrapper itself: the blessed lock point
        self.state.lock().expect("safety ledger lock poisoned")
    }

    /// The aggregated report. Every round closes in its own observation
    /// step (shadow prices are computed at execution time), so after the
    /// last `after_round` the report is complete — no finalize step.
    pub fn report(&self) -> SafetyReport {
        self.lock().report.clone()
    }

    /// Running totals for per-round telemetry.
    pub fn snapshot(&self) -> SafetySnapshot {
        self.lock().snapshot()
    }

    /// Whether the guardrail currently has the configuration frozen.
    pub fn is_throttled(&self) -> bool {
        self.lock().is_throttled()
    }

    /// Streaming sessions: record the pending window's per-query arrival
    /// counts (parallel to the workload handed to the guard's observation
    /// step) so the window closes against weighted shadow prices. Call
    /// immediately before the advisor's `after_round`; fixed-round
    /// sessions never call this and keep the unweighted accounting
    /// byte-for-byte.
    pub fn note_window_weights(&self, weights: Vec<f64>) {
        self.lock().note_window_weights(weights);
    }
}
