//! Guardrail configuration: the knobs that define "safe".

use dba_common::{DbError, DbResult};

/// Configuration of the guardrail layer wrapped around an advisor.
///
/// The guardrail enforces three mechanisms, all priced through the shadow
/// baseline (see the crate docs):
///
/// * **Veto** — a round's new index creations are undone (and their build
///   time refunded) when they would push the live index footprint past
///   `memory_headroom × memory_budget_bytes`, or when the round's total
///   creation bill exceeds `creation_budget_factor ×` the previous round's
///   shadow NoIndex price.
/// * **Rollback** — a materialised index whose realized net benefit
///   (what-if marginal gain minus its maintenance bill) stays negative
///   over `rollback_window` consecutive rounds is force-dropped.
/// * **Throttle** — while cumulative observed regret exceeds
///   [`SafetyConfig::regret_bound_s`], the configuration is frozen (the
///   inner advisor is not consulted); tuning resumes automatically once
///   regret falls back under `recovery_fraction ×` the bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyConfig {
    /// Memory budget the guardrail defends, in bytes. `0` means "inherit
    /// the session's budget" (filled in by the session builder).
    pub memory_budget_bytes: u64,
    /// Fraction of the memory budget the *live* (drift-grown) index
    /// footprint may occupy before creations are vetoed.
    pub memory_headroom: f64,
    /// A round may spend at most this multiple of the previous round's
    /// shadow NoIndex price on index creation; the overflow is vetoed.
    /// (The first observed round has no shadow yet and is not capped.)
    pub creation_budget_factor: f64,
    /// Consecutive rounds an index's realized net benefit must stay
    /// negative before it is rolled back. Must be ≥ 1.
    pub rollback_window: usize,
    /// Rounds a rolled-back index definition stays quarantined: while
    /// quarantined, re-creations of the same definition are vetoed on
    /// sight (and refunded). Without this, a tuner that cannot know why
    /// its index vanished re-builds it every round and the rollback
    /// degenerates into a create/drop thrash loop that pays creation
    /// costs forever. `0` disables quarantining.
    pub quarantine_rounds: usize,
    /// Cumulative regret bound, as a fraction of the cumulative shadow
    /// NoIndex price: the guarded run promises
    /// `total ≤ (1 + factor) × shadow-NoIndex total` (plus the slack).
    pub regret_bound_factor: f64,
    /// Fraction of the regret bound below which a throttled session
    /// resumes tuning. Must be in `[0, 1)`.
    pub recovery_fraction: f64,
    /// Absolute slack added to the regret bound (simulated seconds), so
    /// unavoidable cold-start spending (first-round setup, first builds)
    /// does not throttle a healthy session.
    pub regret_slack_s: f64,
    /// Rounds before the throttle latch may engage. Index creation is an
    /// investment: it reads as pure regret until its execution gains
    /// arrive, so throttling during the first exploration burst freezes
    /// healthy tuners mid-investment. Vetoes and rollbacks stay active
    /// from round one — the warm-up only delays *freezing*.
    pub warmup_rounds: usize,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            memory_budget_bytes: 0,
            memory_headroom: 1.0,
            creation_budget_factor: 2.0,
            rollback_window: 4,
            quarantine_rounds: 8,
            regret_bound_factor: 0.25,
            recovery_fraction: 0.5,
            regret_slack_s: 30.0,
            warmup_rounds: 8,
        }
    }
}

impl SafetyConfig {
    /// The cumulative regret bound given the cumulative shadow NoIndex
    /// price observed so far.
    pub fn regret_bound_s(&self, cum_shadow_noindex_s: f64) -> f64 {
        self.regret_bound_factor * cum_shadow_noindex_s + self.regret_slack_s
    }

    /// Reject non-finite or degenerate knob values.
    pub fn validate(&self) -> DbResult<()> {
        let checks = [
            (
                "memory_headroom",
                self.memory_headroom,
                self.memory_headroom.is_finite() && self.memory_headroom > 0.0,
            ),
            (
                "creation_budget_factor",
                self.creation_budget_factor,
                self.creation_budget_factor.is_finite() && self.creation_budget_factor > 0.0,
            ),
            (
                "regret_bound_factor",
                self.regret_bound_factor,
                self.regret_bound_factor.is_finite() && self.regret_bound_factor > 0.0,
            ),
            (
                "recovery_fraction",
                self.recovery_fraction,
                self.recovery_fraction.is_finite() && (0.0..1.0).contains(&self.recovery_fraction),
            ),
            (
                "regret_slack_s",
                self.regret_slack_s,
                self.regret_slack_s.is_finite() && self.regret_slack_s >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(DbError::Invalid(format!(
                    "safety config: {name} = {value} is out of range"
                )));
            }
        }
        if self.rollback_window == 0 {
            return Err(DbError::Invalid(
                "safety config: rollback_window must be at least 1 round".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SafetyConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let bad = [
            SafetyConfig {
                memory_headroom: 0.0,
                ..SafetyConfig::default()
            },
            SafetyConfig {
                creation_budget_factor: f64::NAN,
                ..SafetyConfig::default()
            },
            SafetyConfig {
                regret_bound_factor: -1.0,
                ..SafetyConfig::default()
            },
            SafetyConfig {
                recovery_fraction: 1.0,
                ..SafetyConfig::default()
            },
            SafetyConfig {
                regret_slack_s: f64::INFINITY,
                ..SafetyConfig::default()
            },
            SafetyConfig {
                rollback_window: 0,
                ..SafetyConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
    }

    #[test]
    fn regret_bound_combines_factor_and_slack() {
        let cfg = SafetyConfig {
            regret_bound_factor: 0.2,
            regret_slack_s: 10.0,
            ..SafetyConfig::default()
        };
        assert!((cfg.regret_bound_s(100.0) - 30.0).abs() < 1e-12);
        assert!((cfg.regret_bound_s(0.0) - 10.0).abs() < 1e-12);
    }
}
