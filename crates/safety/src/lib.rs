//! `dba-safety`: the guardrail subsystem that makes the paper's *safety
//! guarantees* an enforced, measured property instead of an implicit one.
//!
//! The MAB tuner's C2UCB machinery bounds regret analytically; nothing in
//! the rest of the system bounds what a tuner — MAB, DDQN, PDTool, or a
//! user-supplied advisor — can actually do to a live workload. This crate
//! provides the production shape of that guarantee (cf. *No DBA? No
//! regret!* framing regret against the do-nothing baseline, and OnlineTune
//! -style guardrails that detect harmful configurations and roll them
//! back):
//!
//! * a **shadow baseline** — every round's workload is priced through the
//!   existing what-if path under the *empty* configuration and under the
//!   *previous round's* configuration, yielding per-round observed regret
//!   and a cumulative regret-vs-NoIndex trajectory;
//! * a [`SafeguardedAdvisor`] wrapper implementing
//!   [`Advisor`](dba_core::Advisor) around any inner advisor, which
//!   **vetoes** creations that violate memory headroom or the round's
//!   creation budget, **rolls back** indexes whose realized net benefit
//!   stays negative over a sliding window, and **throttles** (freezes the
//!   configuration) while cumulative regret exceeds a configurable bound —
//!   recovering automatically once it falls back under;
//! * a [`SafetyReport`] — vetoes, rollbacks, throttled rounds and the
//!   regret trajectory — that tuning sessions thread into their round
//!   records, run results and results JSON.
//!
//! Guarded advisors need no cooperation from the inner tuner: every
//! built-in tuner reconciles against externally-dropped indexes at the
//! start of its recommendation step, so a rollback simply returns the arm
//! to candidate status.

pub mod config;
pub mod guard;
pub mod ledger;

pub use config::SafetyConfig;
pub use guard::SafeguardedAdvisor;
pub use ledger::{RoundSafety, SafetyLedger, SafetyReport, SafetySnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{ColumnId, QueryId, SimSeconds, TableId, TemplateId};
    use dba_core::{Advisor, AdvisorCost, DataChange, DegradeLevel, RoundContext, WindowMode};
    use dba_engine::{CostModel, Executor, Predicate, Query, QueryExecution};
    use dba_optimizer::{Planner, PlannerContext, StatsCatalog, WhatIfService};
    use dba_storage::{
        Catalog, ColumnSpec, ColumnType, Distribution, IndexDef, TableBuilder, TableSchema,
    };

    fn svc() -> WhatIfService {
        WhatIfService::new(CostModel::unit_scale())
    }

    /// Run the guard's observation step with a [`RoundContext`] over the
    /// current catalog state (these tests apply drift between rounds, so
    /// "current" is the execution-time snapshot).
    fn observe<A: Advisor>(
        guard: &mut SafeguardedAdvisor<A>,
        cat: &Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
        qs: &[Query],
        ex: &[QueryExecution],
    ) {
        let mut ctx = RoundContext {
            catalog: cat,
            stats,
            whatif,
        };
        guard.after_round(&mut ctx, qs, ex);
    }

    fn catalog() -> Catalog {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("k", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "v",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 49_999 },
                ),
                ColumnSpec::new(
                    "w",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
            ],
        );
        Catalog::new(vec![TableBuilder::new(t, 50_000).build(TableId(0), 7)])
    }

    fn query(id: u64, value: i64) -> Query {
        Query {
            id: QueryId(id),
            template: TemplateId(1),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(ColumnId::new(TableId(0), 1), value)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        }
    }

    fn run_round(
        catalog: &Catalog,
        stats: &StatsCatalog,
        cost: &CostModel,
        queries: &[Query],
    ) -> Vec<QueryExecution> {
        let ctx = PlannerContext::from_catalog(catalog, stats, cost);
        // lint: allow(G03) — execution path: plans feed Executor::execute, what-if memoization must not intercept them
        let planner = Planner::new(&ctx);
        let exec = Executor::new(cost.clone());
        queries
            .iter()
            .map(|q| exec.execute(catalog, q, &planner.plan(q)))
            .collect()
    }

    /// A scripted inner advisor: creates the given defs in round 0 and
    /// charges the given recommendation time every non-frozen round.
    struct Scripted {
        create_in_round_0: Vec<IndexDef>,
        rec_s_per_round: f64,
        calls: usize,
    }

    impl Scripted {
        fn new(create: Vec<IndexDef>, rec_s: f64) -> Self {
            Scripted {
                create_in_round_0: create,
                rec_s_per_round: rec_s,
                calls: 0,
            }
        }
    }

    impl Advisor for Scripted {
        fn name(&self) -> &str {
            "Scripted"
        }

        fn before_round(
            &mut self,
            round: usize,
            catalog: &mut Catalog,
            _stats: &StatsCatalog,
            _whatif: &mut WhatIfService,
        ) -> AdvisorCost {
            self.calls += 1;
            let cost_model = CostModel::unit_scale();
            let mut creation = SimSeconds::ZERO;
            if round == 0 {
                for def in self.create_in_round_0.drain(..) {
                    let build = cost_model.index_build(
                        catalog.live_heap_pages(def.table),
                        catalog.live_rows(def.table),
                        catalog.estimated_live_bytes(&def),
                    );
                    if catalog.create_index(def).is_ok() {
                        creation += build;
                    }
                }
            }
            AdvisorCost {
                recommendation: SimSeconds::new(self.rec_s_per_round),
                creation,
            }
        }

        fn after_round(
            &mut self,
            _ctx: &mut RoundContext<'_>,
            _queries: &[Query],
            _executions: &[QueryExecution],
        ) {
        }
    }

    /// Drive a guarded scripted advisor for `rounds` rounds over the
    /// single-template workload, returning the final report. Every round
    /// closes in its own observation step, so the report is complete when
    /// the loop ends — no finalize.
    fn drive(
        guard: &mut SafeguardedAdvisor<Scripted>,
        cat: &mut Catalog,
        rounds: usize,
        maintenance_per_round_s: f64,
    ) -> SafetyReport {
        let stats = StatsCatalog::build(cat);
        let cost = CostModel::unit_scale();
        let mut whatif = svc();
        for round in 0..rounds {
            guard.before_round(round, cat, &stats, &mut whatif);
            let qs: Vec<Query> = (0..2)
                .map(|i| {
                    query(
                        round as u64 * 10 + i,
                        ((round * 31 + i as usize) % 50_000) as i64,
                    )
                })
                .collect();
            let ex = run_round(cat, &stats, &cost, &qs);
            if maintenance_per_round_s > 0.0 && cat.all_indexes().count() > 0 {
                let change = DataChange {
                    index_maintenance: cat
                        .all_indexes()
                        .map(|ix| (ix.id(), SimSeconds::new(maintenance_per_round_s)))
                        .collect(),
                    table_changes: vec![],
                };
                guard.on_data_change(&change);
            }
            observe(guard, cat, &stats, &mut whatif, &qs, &ex);
        }
        guard.ledger().report()
    }

    #[test]
    fn guard_name_tags_the_inner_advisor() {
        let guard = SafeguardedAdvisor::new(
            Scripted::new(vec![], 0.0),
            SafetyConfig::default(),
            CostModel::unit_scale(),
        );
        assert_eq!(guard.name(), "Scripted+guard");
    }

    /// Memory-headroom veto: an index pushing the live footprint past the
    /// headroom is dropped in the same round and its build time refunded.
    #[test]
    fn creations_over_memory_headroom_are_vetoed_and_refunded() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let big = IndexDef::new(TableId(0), vec![1], vec![0, 2]); // wide covering
        let small = IndexDef::new(TableId(0), vec![1], vec![]);
        let small_bytes = cat.estimated_live_bytes(&small);
        let big_bytes = cat.estimated_live_bytes(&big);
        assert!(big_bytes > small_bytes);

        // Budget fits only the small index.
        let config = SafetyConfig {
            memory_budget_bytes: small_bytes + (big_bytes - small_bytes) / 2,
            regret_slack_s: 1e9, // never throttle in this test
            ..SafetyConfig::default()
        };
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![small.clone(), big.clone()], 0.0),
            config,
            CostModel::unit_scale(),
        );
        let cost = guard.before_round(0, &mut cat, &stats, &mut svc());
        // The big index was vetoed, the small one survived.
        assert_eq!(cat.all_indexes().count(), 1);
        assert!(cat.find_index(&small).is_some());
        assert!(cat.find_index(&big).is_none());
        assert!(cat.live_index_bytes() <= config.memory_budget_bytes);
        assert_eq!(guard.ledger().snapshot().vetoes, 1);
        // The refund equals the vetoed build: what remains billed is
        // exactly the small index's build cost.
        let expected = CostModel::unit_scale()
            .index_build(
                cat.live_heap_pages(TableId(0)),
                cat.live_rows(TableId(0)),
                small_bytes,
            )
            .secs();
        assert!((cost.creation.secs() - expected).abs() < 1e-9);
    }

    /// Round creation budget: once a shadow price exists, a round may not
    /// spend more than `creation_budget_factor ×` that price on builds.
    #[test]
    fn creations_over_round_budget_are_vetoed() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost_model = CostModel::unit_scale();
        // Tiny factor: any build dwarfs the shadow price of two point
        // queries, so every creation after round 0 is vetoed.
        let config = SafetyConfig {
            memory_budget_bytes: u64::MAX,
            creation_budget_factor: 1e-6,
            regret_slack_s: 1e9,
            ..SafetyConfig::default()
        };
        // Script the creation into round *1* via a custom drive: round 0
        // observes the workload (establishing the shadow), round 1 creates.
        struct LateCreator {
            def: Option<IndexDef>,
        }
        impl Advisor for LateCreator {
            fn name(&self) -> &str {
                "Late"
            }
            fn before_round(
                &mut self,
                round: usize,
                catalog: &mut Catalog,
                _stats: &StatsCatalog,
                _whatif: &mut WhatIfService,
            ) -> AdvisorCost {
                let mut creation = SimSeconds::ZERO;
                if round == 1 {
                    if let Some(def) = self.def.take() {
                        let build = CostModel::unit_scale().index_build(
                            catalog.live_heap_pages(def.table),
                            catalog.live_rows(def.table),
                            catalog.estimated_live_bytes(&def),
                        );
                        catalog.create_index(def).unwrap();
                        creation = build;
                    }
                }
                AdvisorCost {
                    recommendation: SimSeconds::ZERO,
                    creation,
                }
            }
            fn after_round(
                &mut self,
                _ctx: &mut RoundContext<'_>,
                _q: &[Query],
                _e: &[QueryExecution],
            ) {
            }
        }
        let mut guard = SafeguardedAdvisor::new(
            LateCreator {
                def: Some(IndexDef::new(TableId(0), vec![1], vec![0])),
            },
            config,
            cost_model.clone(),
        );
        let mut whatif = svc();
        for round in 0..2 {
            let cost = guard.before_round(round, &mut cat, &stats, &mut whatif);
            let qs = vec![query(round as u64, 5)];
            let ex = run_round(&cat, &stats, &cost_model, &qs);
            observe(&mut guard, &cat, &stats, &mut whatif, &qs, &ex);
            if round == 1 {
                assert_eq!(cost.creation.secs(), 0.0, "build refunded");
            }
        }
        assert_eq!(cat.all_indexes().count(), 0, "over-budget build vetoed");
        assert_eq!(guard.ledger().report().vetoes, 1);
    }

    /// Drift growth alone can breach the memory headroom — with no new
    /// creation to veto, the guard must evict the grown configuration at
    /// the next round boundary.
    #[test]
    fn drift_growth_past_headroom_evicts_existing_indexes() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let def = IndexDef::new(TableId(0), vec![1], vec![0]);
        let size = cat.estimated_live_bytes(&def);
        let config = SafetyConfig {
            // Fits at creation with 25% headroom to spare.
            memory_budget_bytes: size + size / 4,
            rollback_window: 50, // benefit-based rollback never fires here
            regret_slack_s: 1e9,
            ..SafetyConfig::default()
        };
        let mut guard =
            SafeguardedAdvisor::new(Scripted::new(vec![def.clone()], 0.0), config, cost.clone());
        let mut whatif = svc();
        guard.before_round(0, &mut cat, &stats, &mut whatif);
        assert_eq!(cat.all_indexes().count(), 1, "fits at creation");
        let qs = vec![query(0, 5)];
        let ex = run_round(&cat, &stats, &cost, &qs);
        observe(&mut guard, &cat, &stats, &mut whatif, &qs, &ex);

        // The table grows 50%: the index absorbs it and outgrows the budget.
        cat.apply_drift(TableId(0), 25_000, 0, 0);
        assert!(cat.live_index_bytes() > config.memory_budget_bytes);
        guard.before_round(1, &mut cat, &stats, &mut whatif);
        assert_eq!(cat.all_indexes().count(), 0, "grown index evicted");
        assert!(cat.live_index_bytes() <= config.memory_budget_bytes);
        assert!(guard.ledger().report().rollbacks >= 1, "eviction recorded");
    }

    /// Rollback: an index that never helps the workload but keeps billing
    /// maintenance goes net-negative over the window and is force-dropped.
    #[test]
    fn harmful_index_is_rolled_back() {
        let mut cat = catalog();
        // Index on `w` while the workload only ever filters `v`: zero
        // marginal benefit, positive maintenance ⇒ negative net benefit.
        let harmful = IndexDef::new(TableId(0), vec![2], vec![]);
        let config = SafetyConfig {
            memory_budget_bytes: u64::MAX,
            rollback_window: 3,
            regret_slack_s: 1e9,
            ..SafetyConfig::default()
        };
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![harmful.clone()], 0.0),
            config,
            CostModel::unit_scale(),
        );
        let report = drive(&mut guard, &mut cat, 8, 5.0);
        assert_eq!(cat.all_indexes().count(), 0, "harmful index dropped");
        assert!(report.rollbacks >= 1, "rollback recorded");
        assert!(
            report.rounds.iter().any(|r| r.rollbacks > 0),
            "rollback visible in the per-round trajectory"
        );
    }

    /// A genuinely useful index is never rolled back: its marginal what-if
    /// benefit exceeds the maintenance it pays.
    #[test]
    fn useful_index_survives_rollback_assessment() {
        let mut cat = catalog();
        let useful = IndexDef::new(TableId(0), vec![1], vec![0]);
        let config = SafetyConfig {
            memory_budget_bytes: u64::MAX,
            rollback_window: 2,
            regret_slack_s: 1e9,
            ..SafetyConfig::default()
        };
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![useful.clone()], 0.0),
            config,
            CostModel::unit_scale(),
        );
        let report = drive(&mut guard, &mut cat, 8, 0.001);
        assert!(cat.find_index(&useful).is_some(), "useful index retained");
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.vetoes, 0);
    }

    /// Throttle-then-recover: a regret spike freezes the configuration;
    /// once the (good) frozen config's negative per-round regret pays the
    /// spike back, tuning resumes.
    #[test]
    fn regret_spike_throttles_then_recovers() {
        let mut cat = catalog();
        let config = SafetyConfig {
            memory_budget_bytes: u64::MAX,
            regret_bound_factor: 0.25,
            recovery_fraction: 0.5,
            regret_slack_s: 0.0,
            ..SafetyConfig::default()
        };
        // Creates a good index in round 0 but burns absurd recommendation
        // time every round it is allowed to act — the guardrail must cut
        // it off, coast on the good index, and re-admit it once the
        // index's gains have paid the spike back.
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![IndexDef::new(TableId(0), vec![1], vec![0])], 0.15),
            config,
            CostModel::unit_scale(),
        );
        let report = drive(&mut guard, &mut cat, 60, 0.0);
        assert!(report.throttled_rounds >= 1, "spike must throttle");
        assert!(
            report.throttled_rounds < report.rounds.len(),
            "recovery must unfreeze some rounds"
        );
        let throttled: Vec<bool> = report.rounds.iter().map(|r| r.throttled).collect();
        let first_throttle = throttled.iter().position(|&t| t).unwrap();
        assert!(
            throttled[first_throttle..].iter().any(|&t| !t),
            "a round after the throttle must run unfrozen (recovery)"
        );
        // While throttled, the inner advisor was not consulted.
        assert!(guard.inner().calls < report.rounds.len());
        // Regret came back under the final bound.
        let bound = config.regret_bound_s(report.cum_shadow_noindex_s);
        assert!(
            report.cum_regret_s <= bound,
            "cum regret {} must end within the bound {}",
            report.cum_regret_s,
            bound
        );
    }

    /// The regret-bias fix: shadow prices are computed against the
    /// pre-drift (execution-time) snapshot of the round they price. Under
    /// insert-heavy drift the old close-at-next-round-open pricing charged
    /// the do-nothing baseline for a round of growth it never scanned,
    /// biasing observed regret low.
    #[test]
    fn shadow_prices_use_the_pre_drift_snapshot() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut whatif = svc();
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![], 0.0),
            SafetyConfig {
                memory_budget_bytes: u64::MAX,
                ..SafetyConfig::default()
            },
            cost.clone(),
        );

        let qs = vec![query(0, 5), query(1, 77)];
        // Independent reference: the do-nothing price of this workload on
        // the pre-drift catalog.
        let (reference, _) = svc().cost_workload(&cat, &stats, &qs, &[], false);

        guard.before_round(0, &mut cat, &stats, &mut whatif);
        let ex = run_round(&cat, &stats, &cost, &qs);
        // The round closes at execution time (pre-drift)...
        observe(&mut guard, &cat, &stats, &mut whatif, &qs, &ex);
        // ...and only afterwards does insert-heavy drift triple the table.
        cat.apply_drift(TableId(0), 100_000, 0, 0);

        let report = guard.ledger().report();
        assert_eq!(report.rounds.len(), 1);
        let shadow = report.rounds[0].shadow_noindex_s;
        assert!(
            (shadow - reference.secs()).abs() < 1e-9,
            "shadow {shadow} must equal the pre-drift price {}",
            reference.secs()
        );
        // The quantity the old pricing would have charged — the same
        // workload on the post-drift catalog — is strictly larger, which
        // is exactly the overpricing the snapshot eliminates.
        let (post_drift, _) = svc().cost_workload(&cat, &stats, &qs, &[], false);
        assert!(
            post_drift.secs() > reference.secs(),
            "insert-heavy drift must make the post-drift price larger \
             ({} vs {})",
            post_drift.secs(),
            reference.secs()
        );
    }

    /// Streaming windows: a `Full` close scales shadow prices by arrival
    /// weight and fills the per-template price memo; a `ReuseConfig` close
    /// answers entirely from that memo (zero optimiser costings); an
    /// `Amortized` close re-prices exactly the templates whose arrival
    /// share changed.
    #[test]
    fn degraded_window_closes_price_from_the_template_memo() {
        let mut cat = catalog();
        let stats = StatsCatalog::build(&cat);
        let cost = CostModel::unit_scale();
        let mut whatif = svc();
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![], 0.0),
            SafetyConfig {
                memory_budget_bytes: u64::MAX,
                regret_slack_s: 1e9,
                ..SafetyConfig::default()
            },
            cost.clone(),
        );
        let qs = vec![query(0, 5)];
        let (unit, _) = svc().cost_workload(&cat, &stats, &qs, &[], false);

        // Window 0 (Full, weight 250): live pricing, weighted total.
        guard.begin_window(&WindowMode::default());
        guard.before_round(0, &mut cat, &stats, &mut whatif);
        let ex = run_round(&cat, &stats, &cost, &qs);
        guard.ledger().note_window_weights(vec![250.0]);
        observe(&mut guard, &cat, &stats, &mut whatif, &qs, &ex);
        let r0 = guard.ledger().report().rounds[0];
        assert!(
            (r0.shadow_noindex_s - 250.0 * unit.secs()).abs() <= 1e-9 * r0.shadow_noindex_s,
            "Full close must bill weight × unit price ({} vs {})",
            r0.shadow_noindex_s,
            250.0 * unit.secs()
        );

        // Window 1 (ReuseConfig, weight 40): same template, new binding —
        // priced from the memo at window 0's unit price, with zero
        // optimiser costings.
        guard.begin_window(&WindowMode {
            level: DegradeLevel::ReuseConfig,
            changed_templates: vec![],
        });
        guard.before_round(1, &mut cat, &stats, &mut whatif);
        let qs1 = vec![query(10, 7)];
        let ex1 = run_round(&cat, &stats, &cost, &qs1);
        let before = whatif.stats();
        guard.ledger().note_window_weights(vec![40.0]);
        observe(&mut guard, &cat, &stats, &mut whatif, &qs1, &ex1);
        let after = whatif.stats();
        assert_eq!(
            before.hits + before.misses,
            after.hits + after.misses,
            "ReuseConfig close must not touch the optimiser"
        );
        let r1 = guard.ledger().report().rounds[1];
        assert!(
            (r1.shadow_noindex_s - 40.0 * unit.secs()).abs() <= 1e-9,
            "ReuseConfig close must bill from the cached unit price"
        );

        // Window 2 (Amortized scoped to the template): re-priced live.
        guard.begin_window(&WindowMode {
            level: DegradeLevel::Amortized,
            changed_templates: vec![TemplateId(1)],
        });
        guard.before_round(2, &mut cat, &stats, &mut whatif);
        let qs2 = vec![query(20, 9)];
        let ex2 = run_round(&cat, &stats, &cost, &qs2);
        let before2 = whatif.stats();
        guard.ledger().note_window_weights(vec![10.0]);
        observe(&mut guard, &cat, &stats, &mut whatif, &qs2, &ex2);
        let after2 = whatif.stats();
        assert!(
            after2.hits + after2.misses > before2.hits + before2.misses,
            "Amortized close must re-price the changed template"
        );
        // Every close still lands in the report in order.
        assert_eq!(guard.ledger().report().rounds.len(), 3);
    }

    /// The ledger's trajectory is self-consistent: cumulative regret is
    /// the running sum of per-round regrets, and every value is finite.
    #[test]
    fn report_trajectory_is_consistent_and_finite() {
        let mut cat = catalog();
        let mut guard = SafeguardedAdvisor::new(
            Scripted::new(vec![IndexDef::new(TableId(0), vec![1], vec![0])], 0.01),
            SafetyConfig {
                memory_budget_bytes: u64::MAX,
                ..SafetyConfig::default()
            },
            CostModel::unit_scale(),
        );
        let report = drive(&mut guard, &mut cat, 6, 0.0);
        assert_eq!(report.rounds.len(), 6, "finalize closes the last round");
        let mut cum = 0.0;
        for (i, r) in report.rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            cum += r.regret_s;
            assert!((r.cum_regret_s - cum).abs() < 1e-9);
            for v in [r.shadow_noindex_s, r.shadow_prev_s, r.actual_s, r.regret_s] {
                assert!(v.is_finite());
            }
            assert!(r.shadow_noindex_s >= 0.0);
        }
        assert!((report.cum_regret_s - cum).abs() < 1e-9);
        assert!(report.cum_shadow_noindex_s > 0.0);
    }
}
