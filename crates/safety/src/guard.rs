//! [`SafeguardedAdvisor`]: the guardrail wrapped around any tuner.

use std::collections::HashSet;

use dba_common::{IndexId, SimSeconds};
use dba_core::{Advisor, AdvisorCost, DataChange, RoundContext, WindowMode};
use dba_engine::{CostModel, Query, QueryExecution};
use dba_optimizer::{StatsCatalog, WhatIfService};
use dba_storage::Catalog;

use crate::config::SafetyConfig;
use crate::ledger::SafetyLedger;

/// A tuner-agnostic guardrail implementing [`Advisor`] around any inner
/// [`Advisor`]. Each round it:
///
/// 1. applies the previous round's **rollback** verdicts (indexes whose
///    windowed net benefit went negative — assessed when that round
///    closed in its own observation step, against the execution-time
///    snapshot);
/// 2. if the regret bound is breached, **throttles**: the inner advisor
///    is not consulted and the configuration is frozen (rollbacks keep
///    running, which is what drives recovery);
/// 3. otherwise lets the inner advisor act, then **vetoes** creations
///    that violate the memory headroom or the round's creation budget —
///    the vetoed indexes are dropped and their build time refunded, as a
///    guardrail consulting the what-if API before building would do;
/// 4. in `after_round`, closes the round's ledger entry: shadow prices
///    (empty config and freeze-counterfactual), regret, the throttle
///    latch and the next round's rollback verdicts — all priced through
///    the session's shared [`WhatIfService`] against the pre-drift
///    snapshot the executed queries actually ran on.
///
/// Inner tuners need no safety awareness: MAB, DDQN and PDTool all
/// reconcile against externally-dropped indexes at the start of their own
/// recommendation step, so a rollback simply returns the arm to candidate
/// status.
pub struct SafeguardedAdvisor<A: Advisor> {
    inner: A,
    name: String,
    ledger: SafetyLedger,
    /// Observability handle (`dba-obs`): every guardrail decision — veto,
    /// rollback, throttle, round close — is mirrored as a structured
    /// event. Advisory only; no safety decision ever branches on it.
    obs: dba_obs::Obs,
}

impl<A: Advisor> SafeguardedAdvisor<A> {
    /// Wrap `inner`. `config.memory_budget_bytes` must be the actual
    /// budget (the session builder substitutes the session budget for 0
    /// before constructing the guard).
    pub fn new(inner: A, config: SafetyConfig, cost: CostModel) -> Self {
        let name = format!("{}+guard", inner.name());
        SafeguardedAdvisor {
            ledger: SafetyLedger::new(config, cost),
            name,
            inner,
            obs: dba_obs::Obs::noop(),
        }
    }

    /// A handle to the guardrail's ledger (snapshots, final report).
    pub fn ledger(&self) -> SafetyLedger {
        self.ledger.clone()
    }

    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Enforce the memory headroom against the *existing* configuration:
    /// drift growth can push live index bytes past the budget with no new
    /// creation to veto, so evict the largest indexes (counted as
    /// rollbacks, quarantined — re-creating them would immediately
    /// re-violate) until the footprint fits. No refund: those builds were
    /// legitimate when they happened. Runs every round, throttled ones
    /// included, so the invariant "live footprint ≤ headroom at the start
    /// of every round" holds regardless of tuner behaviour (within a
    /// round, drift applied after execution may transiently exceed it).
    fn enforce_headroom(&mut self, catalog: &mut Catalog, round: usize) {
        let headroom = {
            let state = self.ledger.lock();
            (state.config.memory_headroom * state.config.memory_budget_bytes as f64) as u64
        };
        if catalog.live_index_bytes() <= headroom {
            return;
        }
        let mut existing: Vec<(IndexId, u64)> = catalog
            .all_indexes()
            .map(|ix| (ix.id(), catalog.index_live_bytes(ix.id())))
            .collect();
        existing.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
        for (id, _) in existing {
            if catalog.live_index_bytes() <= headroom {
                break;
            }
            let Ok(def) = catalog.index(id).map(|ix| ix.def().clone()) else {
                continue;
            };
            if catalog.drop_index(id).is_ok() {
                self.obs.event(
                    "safety.rollback",
                    vec![
                        ("round", round.into()),
                        ("index", id.raw().into()),
                        ("table", def.table.raw().into()),
                        ("reason", "headroom".into()),
                    ],
                );
                self.ledger.lock().note_rollback(def);
            }
        }
    }

    /// Veto pass: undo this round's creations that re-materialise a
    /// quarantined (recently rolled-back) definition, then those that
    /// violate the memory headroom or the round creation budget, largest
    /// first. Returns the refunded build time (simulated seconds).
    fn apply_vetoes(
        &mut self,
        catalog: &mut Catalog,
        before_ids: &HashSet<IndexId>,
        round: usize,
        creation_s: f64,
    ) -> f64 {
        let (headroom, creation_budget_s, cost) = {
            let state = self.ledger.lock();
            let headroom =
                (state.config.memory_headroom * state.config.memory_budget_bytes as f64) as u64;
            let budget = state
                .last_shadow_noindex_s()
                .map(|shadow| state.config.creation_budget_factor * shadow);
            (headroom, budget, state.cost.clone())
        };
        // New creations, largest live footprint first: vetoing big indexes
        // first restores headroom (and refunds the most) soonest.
        let mut fresh: Vec<(IndexId, u64)> = catalog
            .all_indexes()
            .map(|ix| ix.id())
            .filter(|id| !before_ids.contains(id))
            .map(|id| (id, catalog.index_live_bytes(id)))
            .collect();
        fresh.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));

        let mut refund_s = 0.0;
        for (id, _) in fresh {
            let def = catalog
                .index(id)
                .expect("fresh index exists until vetoed")
                .def()
                .clone();
            let quarantined = self.ledger.lock().is_quarantined(&def, round);
            let over_memory = catalog.live_index_bytes() > headroom;
            let over_creation = creation_budget_s
                .map(|budget| creation_s - refund_s > budget)
                .unwrap_or(false);
            if !quarantined && !over_memory && !over_creation {
                continue;
            }
            // The refund is exactly what the inner advisor billed: the
            // same cost model over the same live sizes (nothing changed
            // the catalog between its build and this veto).
            let build = cost.index_build(
                catalog.live_heap_pages(def.table),
                catalog.live_rows(def.table),
                catalog.index_creation_bytes(id),
            );
            catalog.drop_index(id).expect("fresh index exists");
            refund_s += build.secs();
            self.obs.event(
                "safety.veto",
                vec![
                    ("round", round.into()),
                    ("index", id.raw().into()),
                    ("table", def.table.raw().into()),
                    ("quarantined", quarantined.into()),
                    ("over_memory", over_memory.into()),
                    ("over_creation", over_creation.into()),
                    ("refund_s", build.secs().into()),
                ],
            );
            self.ledger.lock().note_veto();
        }
        refund_s
    }
}

impl<A: Advisor> Advisor for SafeguardedAdvisor<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn before_round(
        &mut self,
        round: usize,
        catalog: &mut Catalog,
        stats: &StatsCatalog,
        whatif: &mut WhatIfService,
    ) -> AdvisorCost {
        // 1. Apply the rollback verdicts the previous round's close
        //    produced (catalog mutations belong to round boundaries), and
        //    open this round's accounting.
        let victims = {
            let mut state = self.ledger.lock();
            let victims = state.take_pending_rollbacks();
            state.open_round(round + 1); // records count rounds 1-based
            victims
        };
        for id in victims {
            let Ok(def) = catalog.index(id).map(|ix| ix.def().clone()) else {
                continue;
            };
            if catalog.drop_index(id).is_ok() {
                self.obs.event(
                    "safety.rollback",
                    vec![
                        ("round", (round + 1).into()),
                        ("index", id.raw().into()),
                        ("table", def.table.raw().into()),
                        ("reason", "negative_benefit".into()),
                    ],
                );
                self.ledger.lock().note_rollback(def);
            }
        }
        // Drift growth alone can breach the memory headroom — enforce it
        // against the surviving configuration before anything else runs.
        self.enforce_headroom(catalog, round + 1);
        // Snapshot the do-nothing config *after* rollbacks: this round's
        // freeze counterfactual is "keep what survived the guardrail".
        let prev_config: Vec<_> = catalog.all_indexes().map(|ix| ix.def().clone()).collect();
        let throttled = {
            let mut state = self.ledger.lock();
            state.set_prev_config(prev_config);
            if state.is_throttled() {
                state.note_throttled();
                true
            } else {
                false
            }
        };
        // 2. Throttle: freeze the configuration; the inner advisor is not
        //    consulted (its own round bookkeeping pauses with it).
        if throttled {
            let snapshot = self.ledger.snapshot();
            self.obs.event(
                "safety.throttle",
                vec![
                    ("round", (round + 1).into()),
                    ("cum_regret_s", snapshot.cum_regret_s.into()),
                ],
            );
            return AdvisorCost::default();
        }
        // 3. Let the inner advisor act, then veto what it overspent.
        let before_ids: HashSet<IndexId> = catalog.all_indexes().map(|ix| ix.id()).collect();
        let cost = self.inner.before_round(round, catalog, stats, whatif);
        let refund_s = self.apply_vetoes(catalog, &before_ids, round + 1, cost.creation.secs());
        let guarded = AdvisorCost {
            recommendation: cost.recommendation,
            creation: SimSeconds::new((cost.creation.secs() - refund_s).max(0.0)),
        };
        self.ledger
            .lock()
            .note_advisor_cost(guarded.recommendation.secs(), guarded.creation.secs());
        guarded
    }

    fn on_data_change(&mut self, change: &DataChange) {
        self.inner.on_data_change(change);
        self.ledger.lock().note_data_change(change);
    }

    fn begin_window(&mut self, mode: &WindowMode) {
        // The inner tuner degrades its recommend step; the ledger degrades
        // its shadow pricing to match. Safety enforcement itself (vetoes,
        // headroom, throttle latch) never degrades.
        self.inner.begin_window(mode);
        self.ledger.lock().note_window_mode(mode);
    }

    fn bandit_counters(&self) -> (u64, u64) {
        self.inner.bandit_counters()
    }

    fn attach_obs(&mut self, obs: &dba_obs::Obs) {
        self.obs = obs.clone();
        self.inner.attach_obs(obs);
    }

    fn after_round(
        &mut self,
        ctx: &mut RoundContext<'_>,
        queries: &[Query],
        executions: &[QueryExecution],
    ) {
        self.inner
            .after_round(&mut ctx.reborrow(), queries, executions);
        // 4. Close the round at execution time: `ctx` carries the
        //    pre-drift snapshot the queries ran against, so the shadow
        //    baseline prices the round it observes — not the post-drift
        //    world one round later. Rollback verdicts wait for the next
        //    round boundary.
        // The round-close event is emitted after the ledger guard drops:
        // telemetry must never extend a critical section.
        let (pending, last) = {
            let mut state = self.ledger.lock();
            state.note_execution(queries, executions);
            // lint: allow(G02) — close_round prices via the what-if service, whose counter emission takes the obs telemetry mutex: a leaf lock held per-record, never across a call
            let victims = state.close_round(ctx.catalog, ctx.stats, ctx.whatif);
            let last = state.last_round();
            let pending = victims.len();
            state.set_pending_rollbacks(victims);
            (pending, last)
        };
        if let Some(last) = last {
            self.obs.event(
                "safety.round_close",
                vec![
                    ("round", last.round.into()),
                    ("shadow_noindex_s", last.shadow_noindex_s.into()),
                    ("shadow_prev_s", last.shadow_prev_s.into()),
                    ("actual_s", last.actual_s.into()),
                    ("regret_s", last.regret_s.into()),
                    ("cum_regret_s", last.cum_regret_s.into()),
                    ("vetoes", last.vetoes.into()),
                    ("rollbacks", last.rollbacks.into()),
                    ("throttled", last.throttled.into()),
                    ("pending_rollbacks", pending.into()),
                ],
            );
        }
    }
}
