//! The embedded per-crate policy table: which rules apply where.
//!
//! The repo's determinism guarantees are not uniform — wall-clock reads are
//! fine in the bench harness but poison a tuning trajectory, and HashMap
//! iteration only threatens reproducibility where its order can reach
//! records/JSON. Scoping lives here, in one place, instead of in scattered
//! allow comments.

use std::path::Path;

/// V01 configuration for one version-discipline file.
#[derive(Debug, Clone)]
pub struct V01Policy {
    /// Token sequences whose presence in a `&mut self` method body marks it
    /// as a tracked-state mutator (e.g. `self.indexes`).
    pub mutation_seqs: &'static [&'static [&'static str]],
    /// Idents that satisfy the bump obligation (the bump helper itself, or
    /// a delegate that is marked in turn).
    pub bump_tokens: &'static [&'static str],
}

/// Which rules run on one file.
#[derive(Debug, Clone)]
pub struct FilePolicy {
    pub crate_name: String,
    /// Test-context files (under `tests/` or `benches/`): only allowlist
    /// hygiene (A00) runs there; `#[cfg(test)]` bodies in production files
    /// are stripped by the lexer either way.
    pub is_test: bool,
    pub d01: bool,
    pub d02: bool,
    pub d03: bool,
    pub c01: bool,
    /// G03 runs on the *unstripped* token stream of production files, so
    /// `#[cfg(test)]` helpers that price around the WhatIfService are
    /// still findings (they validate the wrong path).
    pub g03: bool,
    /// O01 (instrumentation purity) applies everywhere telemetry can be
    /// emitted: obs recording calls must stay in statement position.
    pub o01: bool,
    pub v01: Option<V01Policy>,
}

/// Crates whose outputs feed records/JSON/baselines: HashMap iteration
/// order there is a reproducibility hazard (D01).
const RESULT_AFFECTING: &[&str] = &[
    "dba-core",
    "dba-optimizer",
    "dba-safety",
    "dba-session",
    "dba-baselines",
];

/// Crates allowed to read wall-clock time and OS entropy (D02 exempt):
/// the bench harness times real work by design.
///
/// `dba-backend` is deliberately NOT here, even though its measured
/// backend times physical operators: all of its timing flows through the
/// injectable `ClockSource` seam, and the single place the real
/// wall-clock enters (`clock.rs::wall_clock`) carries a reasoned
/// `// lint: allow(D02)`. Keeping the crate under D02 means any *other*
/// `Instant::now` in backend business logic — a raw read that would
/// bypass clock injection and break scripted-clock determinism — still
/// fires (fixture: `d02_backend.rs`).
const WALL_CLOCK_OK: &[&str] = &["dba-bench"];

const CATALOG_MUTATIONS: &[&[&str]] = &[&["self", ".", "indexes"], &["self", ".", "drift"]];
const STATS_MUTATIONS: &[&[&str]] = &[&["self", ".", "rows"], &["self", ".", "base"]];
/// `bump_version` is the canonical bump; `refresh_table` bumps internally,
/// so delegating mutators (`refresh`, `refresh_stale`) satisfy V01 through
/// it.
const BUMP_TOKENS: &[&str] = &["bump_version", "refresh_table"];

/// Crates under G03 pricing discipline: regret accounting lives here, so
/// plan *pricing* must route through the memoized, version-validated
/// WhatIfService rather than a raw `Planner`.
const PRICING_DISCIPLINE: &[&str] = &["dba-safety", "dba-baselines"];

/// G01 entry points — traits whose impl methods are result-affecting.
pub const ENTRY_TRAITS: &[&str] = &["Advisor"];
/// G01 entry points — inherent methods that drive or summarize a tuning
/// trajectory.
pub const ENTRY_METHODS: &[(&str, &[&str])] = &[(
    "TuningSession",
    &[
        "run",
        "run_with",
        "step",
        "step_with",
        "into_result",
        "result",
    ],
)];
/// G01 entry points — free fns that emit records/JSON for baselines.
pub const ENTRY_FREE_FNS: &[&str] = &["results_json", "series_rows", "totals_rows"];

/// Should this path be skipped entirely (no lexing, no findings)?
pub fn skip_path(rel: &Path) -> bool {
    rel.components().any(|c| {
        let s = c.as_os_str().to_string_lossy();
        s == "vendor" || s == "target" || s == "fixtures" || s.starts_with('.')
    })
}

/// Policy for one workspace-relative path. `None` when the file is skipped.
pub fn policy_for(rel: &Path) -> Option<FilePolicy> {
    if skip_path(rel) {
        return None;
    }
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = if comps.first().map(String::as_str) == Some("crates") && comps.len() > 1 {
        format!("dba-{}", comps[1])
    } else {
        // Root package files: src/, tests/, examples/.
        "dba-bandits".to_string()
    };
    // `crates/core` is the package `dba-core`, etc.; the one mismatch is
    // the root package itself.
    let is_test = comps.iter().any(|c| c == "tests" || c == "benches");

    let file_name = rel.file_name().map(|f| f.to_string_lossy().into_owned());
    let v01 = match (crate_name.as_str(), file_name.as_deref()) {
        ("dba-storage", Some("catalog.rs")) => Some(V01Policy {
            mutation_seqs: CATALOG_MUTATIONS,
            bump_tokens: BUMP_TOKENS,
        }),
        ("dba-optimizer", Some("stats.rs")) => Some(V01Policy {
            mutation_seqs: STATS_MUTATIONS,
            bump_tokens: BUMP_TOKENS,
        }),
        _ => None,
    };

    Some(FilePolicy {
        d01: RESULT_AFFECTING.contains(&crate_name.as_str()),
        d02: !WALL_CLOCK_OK.contains(&crate_name.as_str()) && crate_name != "dba-analysis",
        d03: true,
        c01: true,
        g03: PRICING_DISCIPLINE.contains(&crate_name.as_str()),
        o01: true,
        v01,
        crate_name,
        is_test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_and_fixtures_are_skipped() {
        assert!(policy_for(Path::new("vendor/rand/src/lib.rs")).is_none());
        assert!(policy_for(Path::new("crates/analysis/tests/fixtures/d01.rs")).is_none());
        assert!(policy_for(Path::new("target/debug/build/x.rs")).is_none());
    }

    #[test]
    fn result_affecting_scoping() {
        let p = policy_for(Path::new("crates/core/src/tuner.rs")).unwrap();
        assert!(p.d01 && p.d02 && p.d03 && p.c01);
        let p = policy_for(Path::new("crates/engine/src/exec.rs")).unwrap();
        assert!(!p.d01 && p.d03);
        let p = policy_for(Path::new("crates/bench/src/bin/fig9_htap.rs")).unwrap();
        assert!(
            !p.d02 && p.d03,
            "bench may read wall-clock but not NaN-sort"
        );
    }

    #[test]
    fn test_dirs_are_test_context() {
        assert!(
            policy_for(Path::new("tests/integration.rs"))
                .unwrap()
                .is_test
        );
        assert!(
            policy_for(Path::new("crates/bench/benches/micro.rs"))
                .unwrap()
                .is_test
        );
        assert!(
            !policy_for(Path::new("crates/bench/src/bin/fig9_htap.rs"))
                .unwrap()
                .is_test
        );
    }

    #[test]
    fn backend_stays_under_d02() {
        // The measured backend must keep D02: only the reasoned allow on
        // the clock seam may read the wall-clock, never operator code.
        let p = policy_for(Path::new("crates/backend/src/measured.rs")).unwrap();
        assert!(p.d02, "dba-backend must not be wall-clock exempt");
        let p = policy_for(Path::new("crates/backend/src/clock.rs")).unwrap();
        assert!(p.d02, "the seam is sanctioned by allow comment, not policy");
    }

    #[test]
    fn v01_targets_catalog_and_stats() {
        assert!(policy_for(Path::new("crates/storage/src/catalog.rs"))
            .unwrap()
            .v01
            .is_some());
        assert!(policy_for(Path::new("crates/optimizer/src/stats.rs"))
            .unwrap()
            .v01
            .is_some());
        assert!(policy_for(Path::new("crates/optimizer/src/planner.rs"))
            .unwrap()
            .v01
            .is_none());
    }
}
