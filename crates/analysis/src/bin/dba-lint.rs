//! `dba-lint` — walk every workspace `.rs` file and enforce the invariant
//! rules (D01/D02/D03/C01/V01 + allowlist hygiene).
//!
//! Usage: `cargo run -p dba-analysis --bin dba-lint [-- --json] [--root DIR]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("dba-lint [--json] [--root DIR]");
                eprintln!("rules: {}", dba_analysis::rules::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace the binary was built from, so `cargo run
    // -p dba-analysis --bin dba-lint` works from any cwd inside the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/analysis has a workspace root two levels up")
            .to_path_buf()
    });

    let diags = match dba_analysis::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dba-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", dba_analysis::to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        if !diags.is_empty() {
            eprintln!("dba-lint: {} finding(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
