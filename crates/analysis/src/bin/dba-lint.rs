//! `dba-lint` — walk every workspace `.rs` file and enforce the invariant
//! rules: the token-local set (D01/D02/D03/C01/V01), the call-graph set
//! (G01/G02/G03/G04), and allowlist hygiene (A00).
//!
//! Usage: `cargo run -p dba-analysis --bin dba-lint [-- FLAGS]`
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "dba-lint [--json] [--root DIR] [--rule RULE]... [--list-rules] [--graph]

  --json        emit findings as a JSON array instead of file:line lines
  --root DIR    lint the workspace rooted at DIR (default: this repo)
  --rule RULE   report only findings of RULE (repeatable, e.g. --rule G02)
  --list-rules  print the rule table and exit
  --graph       print the workspace call graph as GraphViz DOT and exit";

fn main() -> ExitCode {
    let mut json = false;
    let mut graph = false;
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--graph" => graph = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match args.next() {
                Some(r) => {
                    let r = r.to_uppercase();
                    if !dba_analysis::rules::RULES.contains(&r.as_str()) {
                        eprintln!(
                            "unknown rule `{r}` (known: {})",
                            dba_analysis::rules::RULES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    only.push(r);
                }
                None => {
                    eprintln!("--rule requires a rule name (try --list-rules)");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (rule, doc) in dba_analysis::rules::RULE_DOCS {
                    println!("{rule}  {doc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace the binary was built from, so `cargo run
    // -p dba-analysis --bin dba-lint` works from any cwd inside the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/analysis has a workspace root two levels up")
            .to_path_buf()
    });

    if graph {
        match dba_analysis::workspace_model(&root) {
            Ok((_, model)) => {
                println!("{}", model.to_dot());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("dba-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut diags = match dba_analysis::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dba-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !only.is_empty() {
        diags.retain(|d| only.iter().any(|r| r == d.rule));
    }
    if json {
        println!("{}", dba_analysis::to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        if !diags.is_empty() {
            eprintln!("dba-lint: {} finding(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
