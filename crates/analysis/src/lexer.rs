//! A small, dependency-free Rust lexer.
//!
//! Produces a token stream that is *string-, char-, and comment-aware*:
//! rule patterns never match inside literals or comments, which is the
//! failure mode of grep-based lint scripts. This is deliberately not a
//! parser — the build environment is offline (no `syn`), and every rule in
//! [`crate::rules`] is expressible over tokens plus brace depth.
//!
//! Two comment shapes are surfaced as side-channel directives instead of
//! being discarded:
//!
//! - `// lint: allow(RULE, ...) — reason` suppresses findings on the same
//!   or the next source line; the reason is mandatory (see
//!   [`crate::rules::check_allow_directives`]).
//! - `// bumps: catalog_version` (or `stats_version`) marks a method as a
//!   version-bumping mutator for rule V01.

/// Token classes. Rules mostly care about `Ident` text and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    /// String / raw-string / byte-string literal (content dropped).
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    /// Brace depth *before* this token is applied (`{` at depth 0 opens
    /// depth 1). Parens and brackets are tracked separately by rules that
    /// need them.
    pub depth: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// `// lint: allow(D01, D03) — reason` parsed from a line comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    pub line: u32,
    pub rules: Vec<String>,
    /// Text after the rule list (separator stripped). Empty = malformed.
    pub reason: String,
}

/// `// bumps: catalog_version` parsed from a line comment.
#[derive(Debug, Clone)]
pub struct BumpMarker {
    pub line: u32,
    pub kind: String,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub allows: Vec<AllowDirective>,
    pub bumps: Vec<BumpMarker>,
}

/// Lex `src` into tokens plus comment directives. Never fails: unknown
/// bytes are skipped (the linter must not abort the workspace walk on one
/// odd file).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut depth: u32 = 0;

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                let comment: String = b[start..j].iter().collect();
                parse_directive(comment.trim(), line, &mut out);
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Nested block comments, as in real Rust.
                let mut nest = 1u32;
                let mut j = i + 2;
                while j < b.len() && nest > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        nest += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        nest -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, nl) = skip_string(&b, i);
                out.tokens.push(tok(TokKind::Str, "\"\"", line, depth));
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (j, nl, kind) = skip_prefixed_string(&b, i);
                out.tokens.push(tok(kind, "\"\"", line, depth));
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime vs char literal: `'ident` with no closing quote
                // is a lifetime/label.
                if i + 1 < b.len() && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    let mut j = i + 2;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < b.len() && b[j] == '\'' {
                        // 'a' — a char literal after all.
                        out.tokens.push(tok(TokKind::Char, "''", line, depth));
                        i = j + 1;
                    } else {
                        let text: String = b[i..j].iter().collect();
                        out.tokens.push(tok(TokKind::Lifetime, &text, line, depth));
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    if j < b.len() && b[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    out.tokens.push(tok(TokKind::Char, "''", line, depth));
                    i = (j + 1).min(b.len());
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let text: String = b[i..j].iter().collect();
                out.tokens.push(tok(TokKind::Ident, &text, line, depth));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                let mut seen_dot = false;
                while j < b.len() {
                    let d = b[j];
                    if d.is_alphanumeric() || d == '_' {
                        // Exponent sign: 1e-3.
                        if (d == 'e' || d == 'E')
                            && j + 1 < b.len()
                            && (b[j + 1] == '+' || b[j + 1] == '-')
                        {
                            j += 2;
                            continue;
                        }
                        j += 1;
                    } else if d == '.' && !seen_dot && j + 1 < b.len() && b[j + 1].is_ascii_digit()
                    {
                        // 1.5 — but not the range 1..5 or the call 1.max(2).
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(tok(TokKind::Num, "0", line, depth));
                i = j;
            }
            _ => {
                if c == '{' {
                    out.tokens.push(tok(TokKind::Punct, "{", line, depth));
                    depth += 1;
                } else if c == '}' {
                    depth = depth.saturating_sub(1);
                    out.tokens.push(tok(TokKind::Punct, "}", line, depth));
                } else {
                    out.tokens
                        .push(tok(TokKind::Punct, &c.to_string(), line, depth));
                }
                i += 1;
            }
        }
    }
    out
}

fn tok(kind: TokKind, text: &str, line: u32, depth: u32) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
        depth,
    }
}

/// Skip a plain `"..."` string starting at `i`; returns (next index,
/// newlines crossed).
fn skip_string(b: &[char], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                nl += 1;
                j += 1;
            }
            '"' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (j, nl)
}

fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // r"...", r#"..."#, b"...", br"...", b'...' handled elsewhere.
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
        return j < b.len() && b[j] == '"';
    }
    j < b.len() && b[j] == '"' && b[i] == 'b'
}

/// Skip `r"..."` / `r#"..."#` / `b"..."` / `br#"..."#` starting at `i`.
fn skip_prefixed_string(b: &[char], i: usize) -> (usize, u32, TokKind) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == '"', "caller checked the prefix");
    j += 1;
    let mut nl = 0u32;
    while j < b.len() {
        if b[j] == '\n' {
            nl += 1;
            j += 1;
        } else if !raw && b[j] == '\\' {
            j += 2;
        } else if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while raw && k < b.len() && b[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if !raw || seen == hashes {
                return (k, nl, TokKind::Str);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, nl, TokKind::Str)
}

/// Recognise the two directive comments; everything else is discarded.
fn parse_directive(comment: &str, line: u32, out: &mut Lexed) {
    if let Some(rest) = comment.strip_prefix("lint:") {
        let rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix("allow(") {
            let Some(close) = after.find(')') else {
                out.allows.push(AllowDirective {
                    line,
                    rules: vec![],
                    reason: String::new(),
                });
                return;
            };
            let rules: Vec<String> = after[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            // The reason follows the close paren; strip one leading
            // separator (`—`, `-`, `:`) then require substance.
            let mut reason = after[close + 1..].trim();
            for sep in ["—", "–", "-", ":"] {
                if let Some(r) = reason.strip_prefix(sep) {
                    reason = r.trim();
                    break;
                }
            }
            out.allows.push(AllowDirective {
                line,
                rules,
                reason: reason.to_string(),
            });
        }
    } else if let Some(rest) = comment.strip_prefix("bumps:") {
        let kind = rest.trim().to_string();
        if !kind.is_empty() {
            out.bumps.push(BumpMarker { line, kind });
        }
    }
}

/// Remove token ranges covered by `#[cfg(test)]` items (almost always
/// `mod tests { ... }`). Rules run on production code only; fixture files
/// exercise them directly.
pub fn strip_cfg_test(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut keep = vec![true; tokens.len()];
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip the attributed item: everything up to and including either
        // a `;` before any `{`, or the matching `}` of the first `{`.
        let mut j = i + 7;
        let mut end = tokens.len();
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                end = j + 1;
                break;
            }
            if tokens[j].is_punct('{') {
                let open_depth = tokens[j].depth;
                let mut k = j + 1;
                while k < tokens.len() {
                    if tokens[k].is_punct('}') && tokens[k].depth == open_depth {
                        break;
                    }
                    k += 1;
                }
                end = (k + 1).min(tokens.len());
                break;
            }
            j += 1;
        }
        for flag in keep.iter_mut().take(end).skip(i) {
            *flag = false;
        }
        i = end;
    }
    tokens
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_hide_tokens() {
        let l = lex(r#"let a = "partial_cmp"; /* unwrap */ b.c()"#);
        assert!(!l.tokens.iter().any(|t| t.is_ident("partial_cmp")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("c")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { r#\"has \"quote\" inside\"#; }");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(!l.tokens.iter().any(|t| t.is_ident("quote")));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("let c = 'x'; let d: Vec<'static>;");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            1
        );
    }

    #[test]
    fn allow_directive_parses_rules_and_reason() {
        let l = lex("x(); // lint: allow(D01, D03) — iteration feeds a set union\n");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rules, vec!["D01", "D03"]);
        assert!(l.allows[0].reason.contains("set union"));
    }

    #[test]
    fn reasonless_allow_has_empty_reason() {
        let l = lex("// lint: allow(D02)\n// lint: allow(D02) —\n");
        assert_eq!(l.allows.len(), 2);
        assert!(l.allows.iter().all(|a| a.reason.is_empty()));
    }

    #[test]
    fn bump_marker_parses() {
        let l = lex("// bumps: catalog_version\nfn create(&mut self) {}\n");
        assert_eq!(l.bumps.len(), 1);
        assert_eq!(l.bumps[0].kind, "catalog_version");
        assert_eq!(l.bumps[0].line, 1);
    }

    #[test]
    fn cfg_test_mods_are_stripped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { x.lock().unwrap(); } }\nfn also_live() {}";
        let l = lex(src);
        let toks = strip_cfg_test(l.tokens);
        assert!(toks.iter().any(|t| t.is_ident("live")));
        assert!(toks.iter().any(|t| t.is_ident("also_live")));
        assert!(!toks.iter().any(|t| t.is_ident("dead")));
        assert!(!toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let l = lex("let s = \"a\nb\nc\";\nfn f() {}");
        let f = l.tokens.iter().find(|t| t.is_ident("f")).unwrap();
        assert_eq!(f.line, 4);
    }
}
