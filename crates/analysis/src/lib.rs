//! `dba-analysis` — a dependency-free static-analysis pass for the
//! workspace's determinism, NaN-safety, lock-hygiene, and version-bump
//! invariants.
//!
//! The headline guarantees of this reproduction — bit-identical parallel
//! suite runs, version-validated plan/what-if caches, safety-ledger regret
//! accounting — were previously enforced by convention only. This crate
//! makes them machine-checked. See README "Correctness tooling" for the
//! rule catalogue; `cargo run -p dba-analysis --bin dba-lint` runs it.
//!
//! | rule | invariant |
//! |------|-----------|
//! | D01  | no unnormalized `HashMap`/`HashSet` iteration in result-affecting crates |
//! | D02  | no wall-clock/OS-entropy reads outside `dba-bench` |
//! | D03  | no `partial_cmp(..).unwrap()` float ordering (use `total_cmp`) |
//! | C01  | mutex access via the `SafetyLedger` wrapper; no guard held across `Advisor` calls |
//! | V01  | `Catalog`/`StatsCatalog` mutators bump their version counter (`// bumps:` markers) |
//! | G01  | no D01/D02-class source reachable from a result-affecting entry point, any crate |
//! | G02  | no lock-order cycles; no guard held across a (transitively) lock-acquiring call |
//! | G03  | pricing in `dba-safety`/`dba-baselines` routes through `WhatIfService` |
//! | G04  | mutations reached through wrappers still hit a `// bumps:`-marked mutator |
//! | O01  | obs instrumentation calls stay in statement position — results never feed program state |
//! | A00  | every `// lint: allow(RULE)` carries a written reason |
//! | E00  | unreadable workspace file (reported, not suppressible) |
//!
//! D01–V01 are token-local; G01–G04 ride the workspace call graph built by
//! [`parser`] + [`graph`] (`dba-lint --graph` dumps it as DOT).
//!
//! Suppression: `// lint: allow(RULE) — reason` on the finding's line or
//! the line above. The reason is mandatory; a reason-less allow is itself
//! a finding and does not suppress.

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod policy;
pub mod rules;

use graph::{FileModel, Model};
use policy::FilePolicy;
use rules::Finding;
use std::path::{Path, PathBuf};

/// One diagnostic, located in a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// The readable `(relative path, source)` pairs plus E00 read-error
/// diagnostics from one workspace walk.
pub type WorkspaceSources = (Vec<(String, String)>, Vec<Diagnostic>);

impl Diagnostic {
    /// The `file:line [RULE] message` form the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "{}:{} [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The token-local rules for one file. G03 runs on the *unstripped*
/// stream (a `#[cfg(test)]` helper pricing around the service validates
/// the wrong path); everything else sees `#[cfg(test)]` bodies stripped.
fn local_findings(
    toks: &[lexer::Tok],
    allows: &[lexer::AllowDirective],
    bumps: &[lexer::BumpMarker],
    policy: &FilePolicy,
) -> Vec<Finding> {
    let mut findings = rules::check_allow_directives(allows);
    if !policy.is_test {
        findings.extend(rules::g03_pricing_discipline(toks, policy));
        let stripped = lexer::strip_cfg_test(toks.to_vec());
        findings.extend(rules::d01_nondeterministic_iteration(&stripped, policy));
        findings.extend(rules::d02_wall_clock_entropy(&stripped, policy));
        findings.extend(rules::d03_nan_unsafe_ordering(&stripped, policy));
        findings.extend(rules::c01_lock_hygiene(&stripped, policy));
        findings.extend(rules::o01_instrumentation_purity(&stripped, policy));
        findings.extend(rules::v01_version_bump(&stripped, policy, bumps));
    }
    findings
}

/// Lint one source text under an explicit policy — the token-local rules
/// only. This is the entry point the single-file fixture tests drive; the
/// graph rules need a workspace and live in [`analyze_sources`].
pub fn lint_source(src: &str, policy: &FilePolicy) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mut findings = rules::apply_allows(
        local_findings(&lexed.tokens, &lexed.allows, &lexed.bumps, policy),
        &lexed.allows,
    );
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Build per-file models for `(workspace-relative path, source)` pairs;
/// files the policy skips are dropped.
pub fn file_models(sources: &[(String, String)]) -> Vec<FileModel> {
    sources
        .iter()
        .filter_map(|(rel, src)| {
            let policy = policy::policy_for(Path::new(rel))?;
            let lexed = lexer::lex(src);
            let parsed = parser::parse_file(&lexed.tokens);
            Some(FileModel {
                rel: rel.clone(),
                policy,
                toks: lexed.tokens,
                allows: lexed.allows,
                bumps: lexed.bumps,
                parsed,
            })
        })
        .collect()
}

/// The full two-layer analysis over in-memory sources: token-local rules
/// per file, then the call-graph rules (G01/G02/G04) across all of them.
/// This is what `lint_workspace` runs and what the graph-rule fixtures
/// drive directly (the cross-file taint fixture needs two files at once).
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Diagnostic> {
    let files = file_models(sources);
    let model = Model::build(&files);

    let mut per_file: Vec<Vec<Finding>> = files
        .iter()
        .map(|fm| local_findings(&fm.toks, &fm.allows, &fm.bumps, &fm.policy))
        .collect();
    for (fi, finding) in rules::g01_transitive_taint(&model, &files)
        .into_iter()
        .chain(rules::g02_lock_order(&model, &files))
        .chain(rules::g04_transitive_bump(&model, &files))
    {
        per_file[fi].push(finding);
    }

    let mut out = Vec::new();
    for (fm, findings) in files.iter().zip(per_file) {
        let mut findings = rules::apply_allows(findings, &fm.allows);
        findings.sort_by_key(|f| (f.line, f.rule));
        findings.dedup();
        for f in findings {
            out.push(Diagnostic {
                file: fm.rel.clone(),
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        }
    }
    out
}

/// Recursively collect workspace `.rs` files under `root`, skipping paths
/// the policy excludes (vendor/, target/, fixtures/, dotdirs).
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        // Deterministic walk order — the linter obeys its own D01.
        entries.sort();
        for path in entries {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if policy::skip_path(rel) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Read the workspace sources under `root`. Returns the readable
/// `(relative path, source)` pairs plus an `E00` diagnostic for every
/// file the walk found but could not read — a vanished or permission-
/// broken file must not silently shrink the analysis surface, and it
/// must not abort the walk either. E00 is deliberately not a known rule:
/// it cannot be `allow`ed away.
pub fn read_workspace(root: &Path) -> std::io::Result<WorkspaceSources> {
    let mut sources = Vec::new();
    let mut errors = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if policy::policy_for(&rel).is_none() {
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(src) => sources.push((rel.display().to_string(), src)),
            Err(e) => errors.push(Diagnostic {
                file: rel.display().to_string(),
                line: 0,
                rule: "E00",
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    Ok((sources, errors))
}

/// Lint the whole workspace rooted at `root`. IO errors on individual
/// files are reported as diagnostics rather than aborting the walk.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let (sources, mut out) = read_workspace(root)?;
    out.extend(analyze_sources(&sources));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Build the workspace symbol table + call graph (for `dba-lint --graph`).
pub fn workspace_model(root: &Path) -> std::io::Result<(Vec<FileModel>, Model)> {
    let (sources, _) = read_workspace(root)?;
    let files = file_models(&sources);
    let model = Model::build(&files);
    Ok((files, model))
}

/// Minimal JSON encoding of the diagnostics (the build env has no serde
/// for this crate by design: the linter must stay dependency-free).
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&d.file),
            d.line,
            d.rule,
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_policy() -> FilePolicy {
        policy::policy_for(Path::new("crates/core/src/x.rs")).unwrap()
    }

    #[test]
    fn clean_source_yields_nothing() {
        let f = lint_source(
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }",
            &core_policy(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn json_escapes_quotes() {
        let d = vec![Diagnostic {
            file: "a.rs".into(),
            line: 1,
            rule: "D03",
            message: "uses `partial_cmp(\"x\")`".into(),
        }];
        let j = to_json(&d);
        assert!(j.contains("\\\"x\\\""));
        assert!(j.trim_start().starts_with('['));
    }

    #[test]
    fn render_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: "D01",
            message: "m".into(),
        };
        assert_eq!(d.render(), "crates/core/src/x.rs:7 [D01] m");
    }
}
