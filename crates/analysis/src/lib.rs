//! `dba-analysis` — a dependency-free static-analysis pass for the
//! workspace's determinism, NaN-safety, lock-hygiene, and version-bump
//! invariants.
//!
//! The headline guarantees of this reproduction — bit-identical parallel
//! suite runs, version-validated plan/what-if caches, safety-ledger regret
//! accounting — were previously enforced by convention only. This crate
//! makes them machine-checked. See README "Correctness tooling" for the
//! rule catalogue; `cargo run -p dba-analysis --bin dba-lint` runs it.
//!
//! | rule | invariant |
//! |------|-----------|
//! | D01  | no unnormalized `HashMap`/`HashSet` iteration in result-affecting crates |
//! | D02  | no wall-clock/OS-entropy reads outside `dba-bench` |
//! | D03  | no `partial_cmp(..).unwrap()` float ordering (use `total_cmp`) |
//! | C01  | mutex access via the `SafetyLedger` wrapper; no guard held across `Advisor` calls |
//! | V01  | `Catalog`/`StatsCatalog` mutators bump their version counter (`// bumps:` markers) |
//! | A00  | every `// lint: allow(RULE)` carries a written reason |
//!
//! Suppression: `// lint: allow(RULE) — reason` on the finding's line or
//! the line above. The reason is mandatory; a reason-less allow is itself
//! a finding and does not suppress.

pub mod lexer;
pub mod policy;
pub mod rules;

use policy::FilePolicy;
use rules::Finding;
use std::path::{Path, PathBuf};

/// One diagnostic, located in a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    /// The `file:line [RULE] message` form the CLI prints.
    pub fn render(&self) -> String {
        format!(
            "{}:{} [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lint one source text under an explicit policy. This is the entry point
/// the fixture tests drive; the workspace walk resolves policy from paths.
pub fn lint_source(src: &str, policy: &FilePolicy) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let toks = lexer::strip_cfg_test(lexed.tokens);

    let mut findings = rules::check_allow_directives(&lexed.allows);
    if !policy.is_test {
        findings.extend(rules::d01_nondeterministic_iteration(&toks, policy));
        findings.extend(rules::d02_wall_clock_entropy(&toks, policy));
        findings.extend(rules::d03_nan_unsafe_ordering(&toks, policy));
        findings.extend(rules::c01_lock_hygiene(&toks, policy));
        findings.extend(rules::v01_version_bump(&toks, policy, &lexed.bumps));
    }
    let mut findings = rules::apply_allows(findings, &lexed.allows);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Recursively collect workspace `.rs` files under `root`, skipping paths
/// the policy excludes (vendor/, target/, fixtures/, dotdirs).
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        // Deterministic walk order — the linter obeys its own D01.
        entries.sort();
        for path in entries {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if policy::skip_path(rel) {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the whole workspace rooted at `root`. IO errors on individual
/// files are reported as diagnostics rather than aborting the walk.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(policy) = policy::policy_for(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        for f in lint_source(&src, &policy) {
            out.push(Diagnostic {
                file: rel.display().to_string(),
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        }
    }
    Ok(out)
}

/// Minimal JSON encoding of the diagnostics (the build env has no serde
/// for this crate by design: the linter must stay dependency-free).
pub fn to_json(diags: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&d.file),
            d.line,
            d.rule,
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_policy() -> FilePolicy {
        policy::policy_for(Path::new("crates/core/src/x.rs")).unwrap()
    }

    #[test]
    fn clean_source_yields_nothing() {
        let f = lint_source(
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }",
            &core_policy(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn json_escapes_quotes() {
        let d = vec![Diagnostic {
            file: "a.rs".into(),
            line: 1,
            rule: "D03",
            message: "uses `partial_cmp(\"x\")`".into(),
        }];
        let j = to_json(&d);
        assert!(j.contains("\\\"x\\\""));
        assert!(j.trim_start().starts_with('['));
    }

    #[test]
    fn render_is_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: "D01",
            message: "m".into(),
        };
        assert_eq!(d.render(), "crates/core/src/x.rs:7 [D01] m");
    }
}
