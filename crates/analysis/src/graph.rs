//! The workspace model: symbol table + call graph over every parsed file.
//!
//! Name resolution is **suffix-qualified and deliberately conservative**:
//! an edge is added only when the callee is unambiguous at the most
//! specific tier that matches (same impl type → known receiver type →
//! unique workspace-wide name). Ambiguity yields *no* edge — a missed
//! transitive finding is recoverable by reading the README caveats; a
//! false edge would make every graph rule cry wolf. The one deliberate
//! over-approximation is dynamic dispatch: a call through a `dyn Trait` /
//! generic-bound receiver fans out to every impl of that trait method,
//! because each is genuinely reachable at runtime.

use crate::lexer::{AllowDirective, BumpMarker, Tok};
use crate::parser::{CallKind, CallSite, FnInfo, ParsedFile, Recv};
use crate::policy::FilePolicy;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`Model::fns`].
pub type FnId = usize;

/// One analyzed file: path, policy, the *unstripped* token stream the
/// parse spans index into, the comment directives, and the parse results.
pub struct FileModel {
    pub rel: String,
    pub policy: FilePolicy,
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowDirective>,
    pub bumps: Vec<BumpMarker>,
    pub parsed: ParsedFile,
}

/// A function symbol: the parsed item plus its file/crate coordinates.
pub struct FnSym {
    pub file: usize,
    pub crate_name: String,
    pub info: FnInfo,
}

impl FnSym {
    /// `crate::module::Type::name` — the display path used in messages
    /// and DOT output.
    pub fn display(&self) -> String {
        format!("{}::{}", self.crate_name, self.info.qual())
    }
}

/// The workspace symbol table + call graph.
pub struct Model {
    pub fns: Vec<FnSym>,
    /// Adjacency: for each fn, resolved callees with the call-site line.
    pub edges: Vec<Vec<(FnId, u32)>>,
    /// name → fn ids (all fns with that bare name).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// (self_ty, name) → fn ids.
    by_method: BTreeMap<(String, String), Vec<FnId>>,
    /// trait name → method name → impl fn ids (trait impls only).
    trait_methods: BTreeMap<String, BTreeMap<String, Vec<FnId>>>,
    /// Declared trait names (for receiver-bound dispatch).
    trait_names: BTreeSet<String>,
}

impl Model {
    /// Build the symbol table and resolve every call site into edges.
    pub fn build(files: &[FileModel]) -> Model {
        let mut fns = Vec::new();
        let mut trait_names = BTreeSet::new();
        for (fi, fm) in files.iter().enumerate() {
            for t in &fm.parsed.traits {
                trait_names.insert(t.name.clone());
            }
            for f in &fm.parsed.fns {
                // Files under tests/ and benches/ are test context even
                // when the item itself carries no #[cfg(test)].
                let mut info = f.clone();
                info.is_test |= fm.policy.is_test;
                fns.push(FnSym {
                    file: fi,
                    crate_name: fm.policy.crate_name.clone(),
                    info,
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_method: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut trait_methods: BTreeMap<String, BTreeMap<String, Vec<FnId>>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.info.name.clone()).or_default().push(id);
            if let Some(t) = &f.info.self_ty {
                by_method
                    .entry((t.clone(), f.info.name.clone()))
                    .or_default()
                    .push(id);
            }
            if let Some(tr) = &f.info.trait_impl {
                trait_methods
                    .entry(tr.clone())
                    .or_default()
                    .entry(f.info.name.clone())
                    .or_default()
                    .push(id);
            }
        }
        let mut m = Model {
            fns,
            edges: Vec::new(),
            by_name,
            by_method,
            trait_methods,
            trait_names,
        };
        m.edges = (0..m.fns.len())
            .map(|id| {
                let mut es: Vec<(FnId, u32)> = m.fns[id]
                    .info
                    .calls
                    .iter()
                    .flat_map(|c| {
                        m.resolve(id, c)
                            .into_iter()
                            .map(move |t| (t, c.line))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                es.sort_unstable();
                es.dedup();
                es
            })
            .collect();
        m
    }

    /// Resolve one call site to zero or more callees. Empty = unresolved
    /// or ambiguous (conservative: no edge). Production callers never
    /// resolve into test-only fns — test helpers reusing a production
    /// name must not poison disambiguation, so test candidates are
    /// dropped *before* the uniqueness checks.
    pub(crate) fn resolve(&self, caller: FnId, call: &CallSite) -> Vec<FnId> {
        let c = &self.fns[caller];
        let allow_test = c.info.is_test;
        match &call.kind {
            CallKind::Method { recv, name } => match recv {
                Recv::SelfRecv => {
                    let Some(ty) = &c.info.self_ty else {
                        return vec![];
                    };
                    self.unique_in(
                        self.method_candidates(ty, name, allow_test),
                        c.crate_name.as_str(),
                        c.file,
                    )
                }
                Recv::Ident(x) => {
                    if let Some(ty) = c.info.local_type(x) {
                        if self.trait_names.contains(ty) {
                            // dyn/bound dispatch: every impl is reachable.
                            return self.trait_impl_methods(ty, name, allow_test);
                        }
                        self.unique_in(
                            self.method_candidates(ty, name, allow_test),
                            c.crate_name.as_str(),
                            c.file,
                        )
                    } else {
                        self.unique_method_by_name(name, allow_test)
                    }
                }
                Recv::Other(_) => self.unique_method_by_name(name, allow_test),
            },
            CallKind::Free(segs) => match segs.as_slice() {
                [] => vec![],
                [name] => {
                    let cands: Vec<FnId> = self
                        .named(name, allow_test)
                        .filter(|&id| self.fns[id].info.self_ty.is_none())
                        .collect();
                    self.unique_in(cands, c.crate_name.as_str(), c.file)
                }
                [.., qual, name] => {
                    let qual = if qual == "Self" {
                        match &c.info.self_ty {
                            Some(t) => t.as_str(),
                            None => return vec![],
                        }
                    } else {
                        qual.as_str()
                    };
                    // `Type::assoc` first; then `module::free_fn` /
                    // `crate::free_fn` suffix matches.
                    let mut cands = self.method_candidates(qual, name, allow_test);
                    if cands.is_empty() {
                        cands = self
                            .named(name, allow_test)
                            .filter(|&id| {
                                let f = &self.fns[id];
                                f.info.self_ty.is_none()
                                    && (f.info.modules.last().is_some_and(|m| m == qual)
                                        || crate_matches(&f.crate_name, qual))
                            })
                            .collect();
                    }
                    self.unique_in(cands, c.crate_name.as_str(), c.file)
                }
            },
        }
    }

    fn named<'a>(&'a self, name: &str, allow_test: bool) -> impl Iterator<Item = FnId> + 'a {
        self.by_name
            .get(name)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&id| allow_test || !self.fns[id].info.is_test)
    }

    fn method_candidates(&self, ty: &str, name: &str, allow_test: bool) -> Vec<FnId> {
        self.by_method
            .get(&(ty.to_string(), name.to_string()))
            .into_iter()
            .flatten()
            .copied()
            .filter(|&id| allow_test || !self.fns[id].info.is_test)
            .collect()
    }

    fn trait_impl_methods(&self, tr: &str, name: &str, allow_test: bool) -> Vec<FnId> {
        self.trait_methods
            .get(tr)
            .and_then(|m| m.get(name))
            .into_iter()
            .flatten()
            .copied()
            .filter(|&id| allow_test || !self.fns[id].info.is_test)
            .collect()
    }

    /// A method call with an unknown receiver type: resolve only when the
    /// method name is defined exactly once across the workspace — and is
    /// not a name std containers/iterators also define, because then the
    /// receiver is almost surely a `Vec`/`HashMap`/iterator and the edge
    /// would be false (the cardinal sin for the graph rules).
    fn unique_method_by_name(&self, name: &str, allow_test: bool) -> Vec<FnId> {
        const STD_METHODS: &[&str] = &[
            "push",
            "pop",
            "get",
            "get_mut",
            "insert",
            "remove",
            "len",
            "is_empty",
            "iter",
            "iter_mut",
            "keys",
            "values",
            "contains",
            "contains_key",
            "clear",
            "extend",
            "drain",
            "sort",
            "sort_by",
            "sort_by_key",
            "clone",
            "next",
            "map",
            "filter",
            "collect",
            "fold",
            "sum",
            "min",
            "max",
            "unwrap",
            "unwrap_or",
            "expect",
            "take",
            "replace",
            "entry",
            "to_string",
            "as_str",
            "split",
            "trim",
            "join",
            "abs",
            "sqrt",
            "powi",
            "powf",
        ];
        if STD_METHODS.contains(&name) {
            return vec![];
        }
        let cands: Vec<FnId> = self
            .named(name, allow_test)
            .filter(|&id| self.fns[id].info.self_ty.is_some())
            .collect();
        if cands.len() == 1 {
            cands
        } else {
            vec![]
        }
    }

    /// Tiered disambiguation: same file → same crate → workspace. The
    /// first tier with at least one candidate must be a singleton or the
    /// call stays unresolved.
    fn unique_in(&self, cands: Vec<FnId>, crate_name: &str, file: usize) -> Vec<FnId> {
        if cands.len() <= 1 {
            return cands;
        }
        for tier in [
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].file == file)
                .collect::<Vec<_>>(),
            cands
                .iter()
                .copied()
                .filter(|&id| self.fns[id].crate_name == crate_name)
                .collect::<Vec<_>>(),
        ] {
            if tier.len() == 1 {
                return tier;
            }
            if !tier.is_empty() {
                return vec![]; // ambiguous at this tier: no edge
            }
        }
        vec![]
    }

    /// Forward BFS from `starts`; returns, per reached fn, one example
    /// predecessor (for rendering a taint path). Starts map to themselves.
    pub fn reach_from(&self, starts: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut pred: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: Vec<FnId> = Vec::new();
        for &s in starts {
            if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(s) {
                e.insert(s);
                queue.push(s);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            for &(v, _) in &self.edges[u] {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(v) {
                    e.insert(u);
                    queue.push(v);
                }
            }
        }
        pred
    }

    /// Render the example call path `entry → .. → target` recorded by
    /// [`Model::reach_from`].
    pub fn path_to(&self, pred: &BTreeMap<FnId, FnId>, target: FnId) -> Vec<FnId> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Transitive closure of a per-fn fact: `closure[f]` is the union of
    /// `direct[g]` over every `g` reachable from `f` (including itself).
    pub fn closure_of<T: Clone + Ord>(&self, direct: &[Vec<T>]) -> Vec<BTreeSet<T>> {
        // Iterate to fixpoint; the graph is small (a few hundred fns) and
        // closures are tiny (lock ids), so simplicity beats Tarjan here.
        let n = self.fns.len();
        let mut out: Vec<BTreeSet<T>> =
            direct.iter().map(|d| d.iter().cloned().collect()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for u in 0..n {
                for (v, _) in self.edges[u].clone() {
                    if out[v].is_empty() {
                        continue;
                    }
                    let add: Vec<T> = out[v].difference(&out[u]).cloned().collect();
                    if !add.is_empty() {
                        out[u].extend(add);
                        changed = true;
                    }
                }
            }
        }
        out
    }

    /// Edges as display-name pairs — the unit tests' assertion surface.
    pub fn edges_named(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .edges
            .iter()
            .enumerate()
            .flat_map(|(u, es)| {
                es.iter()
                    .map(move |&(v, _)| (self.fns[u].display(), self.fns[v].display()))
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    pub fn has_edge(&self, from_suffix: &str, to_suffix: &str) -> bool {
        self.edges_named()
            .iter()
            .any(|(a, b)| a.ends_with(from_suffix) && b.ends_with(to_suffix))
    }

    /// GraphViz DOT serialization of the call graph, one cluster per
    /// crate, for `dba-lint --graph`.
    pub fn to_dot(&self) -> String {
        let mut crates: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, f) in self.fns.iter().enumerate() {
            crates.entry(&f.crate_name).or_default().push(id);
        }
        let mut s =
            String::from("digraph calls {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        for (ci, (name, ids)) in crates.iter().enumerate() {
            s.push_str(&format!(
                "  subgraph cluster_{ci} {{\n    label=\"{name}\";\n"
            ));
            for &id in ids {
                let style = if self.fns[id].info.is_test {
                    ", style=dashed"
                } else {
                    ""
                };
                s.push_str(&format!(
                    "    n{id} [label=\"{}\"{style}];\n",
                    self.fns[id].info.qual().replace('"', "'")
                ));
            }
            s.push_str("  }\n");
        }
        for (u, es) in self.edges.iter().enumerate() {
            for &(v, _) in es {
                s.push_str(&format!("  n{u} -> n{v};\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Does `crate_name` (e.g. `dba-bench`) match a path qualifier ident
/// (e.g. `dba_bench`)?
fn crate_matches(crate_name: &str, qual: &str) -> bool {
    crate_name.replace('-', "_") == qual
}
