//! A dependency-free recursive-descent *item* parser over the lexer's
//! token stream.
//!
//! This is the first layer of the cross-function analyzer: it recovers the
//! item structure the token-local rules cannot see — modules, `impl`
//! blocks (inherent and trait), `trait` declarations, and `fn` items with
//! their signature/body token spans — plus, per function, the *call sites*
//! and the locally-provable types of parameters and `let` bindings that
//! the call-graph layer ([`crate::graph`]) uses for receiver-type
//! resolution.
//!
//! It is deliberately **not** a full Rust parser. Everything it does not
//! understand (macros, struct bodies, const initialisers, where-clauses)
//! is skipped token-by-token; the worst outcome of a parse miss is a
//! missing call edge, never a crash. The soundness consequences of that
//! (missed edges ⇒ missed transitive findings) are documented in the
//! README's "how name resolution approximates" section.

use crate::lexer::{Tok, TokKind};
use std::ops::Range;

/// Receiver shape of a method call, as far as tokens can tell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(..)` — resolves against the enclosing impl type.
    SelfRecv,
    /// `x.method(..)` with `x` a plain identifier — resolves through the
    /// caller's param/let type environment.
    Ident(String),
    /// Anything more complex (`self.field.m()`, `foo().m()`, `a[i].m()`):
    /// the receiver chain text is kept for lock-identity heuristics, but
    /// type-based resolution is not attempted.
    Other(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` or `a::b::name(..)` — path segments, last is the fn.
    Free(Vec<String>),
    /// `recv.name(..)`.
    Method { recv: Recv, name: String },
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    pub line: u32,
    /// Token index of the callee name (into the file's unstripped stream).
    pub tok: usize,
}

/// A `fn` item with everything the graph layer needs.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Module path within the file (`mod` nesting), innermost last.
    pub modules: Vec<String>,
    /// Enclosing impl/trait self type (`impl Foo`, `impl Tr for Foo` ⇒
    /// `Foo`; `trait Tr { .. }` default methods ⇒ `Tr`).
    pub self_ty: Option<String>,
    /// Trait being implemented, when inside `impl Tr for Foo` (or a
    /// default method body in `trait Tr`).
    pub trait_impl: Option<String>,
    pub line: u32,
    /// Signature token range (from the `fn` keyword to the body `{` or `;`).
    pub sig: Range<usize>,
    /// Body token range (exclusive of the braces); empty for bodyless
    /// trait-method declarations.
    pub body: Range<usize>,
    /// Inside a `#[cfg(test)]` item or annotated `#[test]`.
    pub is_test: bool,
    /// Whether the return type mentions `MutexGuard` (lock-wrapper shape).
    pub returns_guard: bool,
    /// Locally provable types: typed params, `let x: T`, and
    /// `let x = T::new(..)`-style constructor bindings. Generic params are
    /// substituted by their first trait bound when one is declared inline.
    pub locals: Vec<(String, String)>,
    pub calls: Vec<CallSite>,
}

impl FnInfo {
    /// Suffix-qualified display path: `module::Type::name` (modules and
    /// impl type included when present).
    pub fn qual(&self) -> String {
        let mut parts: Vec<&str> = self.modules.iter().map(String::as_str).collect();
        if let Some(t) = &self.self_ty {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }

    pub fn local_type(&self, name: &str) -> Option<&str> {
        // Later bindings shadow earlier ones.
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }
}

/// A `trait` declaration: name and declared method names.
#[derive(Debug, Clone)]
pub struct TraitDecl {
    pub name: String,
    pub methods: Vec<String>,
}

#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnInfo>,
    pub traits: Vec<TraitDecl>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "let", "in", "as", "move", "break",
    "continue", "fn", "impl", "use", "pub", "unsafe", "where", "ref", "mut", "dyn", "box", "await",
    "async", "yield", "Some", "Ok", "Err", "None",
];

struct Ctx {
    modules: Vec<String>,
    self_ty: Option<String>,
    trait_impl: Option<String>,
    is_test: bool,
}

pub fn parse_file(toks: &[Tok]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let ctx = Ctx {
        modules: Vec::new(),
        self_ty: None,
        trait_impl: None,
        is_test: false,
    };
    parse_items(toks, 0..toks.len(), &ctx, &mut out);
    out
}

/// Find the matching `}` for the `{` at `open` (same recorded depth).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let d = toks[open].depth;
    let mut k = open + 1;
    while k < toks.len() {
        if toks[k].is_punct('}') && toks[k].depth == d {
            return k;
        }
        k += 1;
    }
    toks.len()
}

/// Skip a balanced `<...>` generics group starting at `open` (which must
/// be `<`). Returns the index just past the matching `>`. `>>` is two
/// closes (the lexer emits single-char puncts, so nesting counts work).
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('<') {
            depth += 1;
        } else if toks[k].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        } else if toks[k].is_punct('{') || toks[k].is_punct(';') {
            // Runaway (a lone less-than): bail where the item starts.
            return open;
        }
        k += 1;
    }
    k
}

/// Parse the items in `range` under `ctx`, appending fns/traits to `out`.
fn parse_items(toks: &[Tok], range: Range<usize>, ctx: &Ctx, out: &mut ParsedFile) {
    let mut i = range.start;
    let end = range.end;
    let mut pending_test = false;
    while i < end {
        let t = &toks[i];
        if t.is_punct('#') && i + 1 < end && toks[i + 1].is_punct('[') {
            // Attribute: scan its tokens for `test` (covers `#[test]`,
            // `#[cfg(test)]`, `#[cfg(all(test, ..))]`).
            let mut k = i + 2;
            let mut sq = 1i32;
            let mut has_test = false;
            while k < end && sq > 0 {
                if toks[k].is_punct('[') {
                    sq += 1;
                } else if toks[k].is_punct(']') {
                    sq -= 1;
                } else if toks[k].is_ident("test") {
                    has_test = true;
                }
                k += 1;
            }
            pending_test |= has_test;
            i = k;
            continue;
        }
        if t.is_ident("mod") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            if i + 2 < end && toks[i + 2].is_punct('{') {
                let close = matching_brace(toks, i + 2);
                let inner = Ctx {
                    modules: {
                        let mut m = ctx.modules.clone();
                        m.push(name);
                        m
                    },
                    self_ty: None,
                    trait_impl: None,
                    is_test: ctx.is_test || pending_test,
                };
                parse_items(toks, i + 3..close.min(end), &inner, out);
                i = close + 1;
            } else {
                i += 2; // `mod name;`
            }
            pending_test = false;
            continue;
        }
        if t.is_ident("impl") {
            i = parse_impl(toks, i, end, ctx, pending_test, out);
            pending_test = false;
            continue;
        }
        if t.is_ident("trait") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            // Find the trait body brace (skipping generics/supertraits).
            let mut k = i + 2;
            while k < end && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                k += 1;
            }
            if k < end && toks[k].is_punct('{') {
                let close = matching_brace(toks, k);
                let inner = Ctx {
                    modules: ctx.modules.clone(),
                    self_ty: Some(name.clone()),
                    trait_impl: Some(name.clone()),
                    is_test: ctx.is_test || pending_test,
                };
                let before = out.fns.len();
                parse_items(toks, k + 1..close.min(end), &inner, out);
                let methods = out.fns[before..].iter().map(|f| f.name.clone()).collect();
                out.traits.push(TraitDecl { name, methods });
                i = close + 1;
            } else {
                i = k + 1;
            }
            pending_test = false;
            continue;
        }
        if t.is_ident("fn") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            i = parse_fn(toks, i, end, ctx, pending_test, out);
            pending_test = false;
            continue;
        }
        // Any other braced item (struct/enum/union bodies, const blocks):
        // skip the brace group wholesale so its contents are not mistaken
        // for items.
        if t.is_punct('{') {
            i = matching_brace(toks, i) + 1;
            pending_test = false;
            continue;
        }
        if t.is_punct(';') {
            pending_test = false;
        }
        i += 1;
    }
}

/// Parse `impl [<..>] Path [for Path] { items }`; returns index past it.
fn parse_impl(
    toks: &[Tok],
    start: usize,
    end: usize,
    ctx: &Ctx,
    pending_test: bool,
    out: &mut ParsedFile,
) -> usize {
    let mut k = start + 1;
    if k < end && toks[k].is_punct('<') {
        k = skip_angles(toks, k).max(k + 1);
    }
    // First path (trait, or the self type for inherent impls).
    let (first, mut k) = parse_type_path(toks, k, end);
    let mut trait_name = None;
    let mut self_ty = first;
    if k < end && toks[k].is_ident("for") {
        let (second, k2) = parse_type_path(toks, k + 1, end);
        trait_name = self_ty.take();
        self_ty = second;
        k = k2;
    }
    // Skip where-clause up to the body.
    while k < end && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
        k += 1;
    }
    if k >= end || !toks[k].is_punct('{') {
        return k + 1;
    }
    let close = matching_brace(toks, k);
    let inner = Ctx {
        modules: ctx.modules.clone(),
        self_ty,
        trait_impl: trait_name,
        is_test: ctx.is_test || pending_test,
    };
    parse_items(toks, k + 1..close.min(end), &inner, out);
    close + 1
}

/// Parse a type path at `k`, returning its *last meaningful ident* (the
/// type name, generics stripped) and the index past it. `&mut Foo<A>` ⇒
/// `Foo`.
fn parse_type_path(toks: &[Tok], mut k: usize, end: usize) -> (Option<String>, usize) {
    let mut last = None;
    while k < end {
        let t = &toks[k];
        if t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime || t.is_ident("dyn")
        {
            k += 1;
        } else if t.kind == TokKind::Ident {
            last = Some(t.text.clone());
            k += 1;
            if k < end && toks[k].is_punct('<') {
                k = skip_angles(toks, k).max(k + 1);
            }
            // `::` continues the path.
            if k + 1 < end && toks[k].is_punct(':') && toks[k + 1].is_punct(':') {
                k += 2;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    (last, k)
}

/// Parse one `fn` item starting at the `fn` keyword; returns index past it.
fn parse_fn(
    toks: &[Tok],
    start: usize,
    end: usize,
    ctx: &Ctx,
    pending_test: bool,
    out: &mut ParsedFile,
) -> usize {
    let name = toks[start + 1].text.clone();
    let line = toks[start].line;
    let fn_depth = toks[start].depth;
    // Signature: up to the body `{` or a `;` at the fn's own depth.
    let mut j = start + 2;
    let mut body = 0..0;
    let mut sig_end = j;
    while j < end {
        if toks[j].is_punct(';') && toks[j].depth == fn_depth {
            sig_end = j;
            break;
        }
        if toks[j].is_punct('{') && toks[j].depth == fn_depth {
            sig_end = j;
            let close = matching_brace(toks, j);
            body = j + 1..close.min(end);
            break;
        }
        j += 1;
    }
    let sig = start..sig_end;
    let after = if body.is_empty() {
        sig_end + 1
    } else {
        body.end + 1
    };

    let bounds = generic_bounds(toks, &sig);
    let mut locals = param_types(toks, &sig, &bounds);
    collect_let_types(toks, &body, &bounds, &mut locals);
    let returns_guard = returns_guard(toks, &sig);
    let calls = extract_calls(toks, &body);
    let is_test = ctx.is_test || pending_test || name_is_test_attr(toks, start);

    out.fns.push(FnInfo {
        name,
        modules: ctx.modules.clone(),
        self_ty: ctx.self_ty.clone(),
        trait_impl: ctx.trait_impl.clone(),
        line,
        sig,
        body,
        is_test,
        returns_guard,
        locals,
        calls,
    });
    after
}

/// `#[test]` directly above the fn is handled by the attribute scan in
/// `parse_items`; this hook exists for completeness when the fn is parsed
/// from a context that skipped attributes.
fn name_is_test_attr(_toks: &[Tok], _start: usize) -> bool {
    false
}

/// `A: Trait` pairs declared inside the signature's `<...>` generics (and
/// simple `where A: Trait` clauses): maps type-param name → first bound.
fn generic_bounds(toks: &[Tok], sig: &Range<usize>) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut k = sig.start;
    // Generics group directly after the fn name.
    while k < sig.end && !toks[k].is_punct('<') && !toks[k].is_punct('(') {
        k += 1;
    }
    let mut regions: Vec<Range<usize>> = Vec::new();
    if k < sig.end && toks[k].is_punct('<') {
        let close = skip_angles(toks, k);
        regions.push(k + 1..close.saturating_sub(1).max(k + 1));
    }
    // where-clause: from `where` to sig end.
    if let Some(w) = (sig.start..sig.end).find(|&i| toks[i].is_ident("where")) {
        regions.push(w + 1..sig.end);
    }
    for r in regions {
        let mut i = r.start;
        while i + 2 < r.end {
            if toks[i].kind == TokKind::Ident
                && toks[i + 1].is_punct(':')
                && toks[i + 2].kind == TokKind::Ident
                && !toks[i + 2].is_ident("mut")
            {
                out.push((toks[i].text.clone(), toks[i + 2].text.clone()));
                i += 3;
            } else {
                i += 1;
            }
        }
    }
    out
}

fn resolve_bound(bounds: &[(String, String)], ty: &str) -> String {
    bounds
        .iter()
        .find(|(p, _)| p == ty)
        .map(|(_, b)| b.clone())
        .unwrap_or_else(|| ty.to_string())
}

/// `name: [&] [mut] [lifetime] [dyn|impl] Type` pairs inside the param
/// parens of the signature.
fn param_types(
    toks: &[Tok],
    sig: &Range<usize>,
    bounds: &[(String, String)],
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    // Find the param parens: first `(` in the sig after any generics.
    let mut k = sig.start;
    while k < sig.end && !toks[k].is_punct('(') {
        if toks[k].is_punct('<') {
            k = skip_angles(toks, k).max(k + 1);
            continue;
        }
        k += 1;
    }
    if k >= sig.end {
        return out;
    }
    let mut paren = 0i32;
    let mut i = k;
    while i < sig.end {
        if toks[i].is_punct('(') {
            paren += 1;
        } else if toks[i].is_punct(')') {
            paren -= 1;
            if paren == 0 {
                break;
            }
        } else if paren == 1
            && toks[i].kind == TokKind::Ident
            && i + 1 < sig.end
            && toks[i + 1].is_punct(':')
            && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(ty) = type_ident_after(toks, i + 2, sig.end) {
                out.push((toks[i].text.clone(), resolve_bound(bounds, &ty)));
            }
        }
        i += 1;
    }
    out
}

/// The principal type ident after a `:` — skips `&`, `mut`, lifetimes,
/// `dyn`, `impl`; returns the first path segment's *last* ident before
/// generics (`std::sync::MutexGuard` ⇒ `MutexGuard`; `&mut dyn Advisor`
/// ⇒ `Advisor`).
fn type_ident_after(toks: &[Tok], mut k: usize, end: usize) -> Option<String> {
    while k < end
        && (toks[k].is_punct('&')
            || toks[k].is_ident("mut")
            || toks[k].kind == TokKind::Lifetime
            || toks[k].is_ident("dyn")
            || toks[k].is_ident("impl"))
    {
        k += 1;
    }
    let (name, _) = parse_type_path(toks, k, end);
    name
}

fn returns_guard(toks: &[Tok], sig: &Range<usize>) -> bool {
    let mut i = sig.start;
    while i + 1 < sig.end {
        if toks[i].is_punct('-') && toks[i + 1].is_punct('>') {
            return toks[i + 1..sig.end]
                .iter()
                .any(|t| t.is_ident("MutexGuard"));
        }
        i += 1;
    }
    false
}

/// `let [mut] x : Type` and `let [mut] x = Type::...` bindings in a body.
fn collect_let_types(
    toks: &[Tok],
    body: &Range<usize>,
    bounds: &[(String, String)],
    out: &mut Vec<(String, String)>,
) {
    let mut i = body.start;
    while i < body.end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < body.end && toks[j].is_ident("mut") {
            j += 1;
        }
        if j < body.end && toks[j].kind == TokKind::Ident {
            let name = toks[j].text.clone();
            if j + 1 < body.end && toks[j + 1].is_punct(':') {
                if let Some(ty) = type_ident_after(toks, j + 2, body.end) {
                    out.push((name, resolve_bound(bounds, &ty)));
                }
            } else if j + 3 < body.end
                && toks[j + 1].is_punct('=')
                && toks[j + 2].kind == TokKind::Ident
                && toks[j + 2]
                    .text
                    .chars()
                    .next()
                    .is_some_and(char::is_uppercase)
                && toks[j + 3].is_punct(':')
            {
                // `let x = Type::ctor(..)` — constructor inference.
                out.push((name, toks[j + 2].text.clone()));
            }
        }
        i = j + 1;
    }
}

/// The receiver chain text ending just before the `.` at `dot` (walking
/// back through `ident . ident . self` shapes). Empty when the receiver
/// is an expression (`foo().m()`, `a[i].m()`).
pub fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut parts = Vec::new();
    let mut k = dot; // index of the `.` before the method name
    loop {
        if k == 0 {
            break;
        }
        let prev = &toks[k - 1];
        if prev.kind == TokKind::Ident {
            parts.push(prev.text.clone());
            if k >= 3 && toks[k - 2].is_punct('.') {
                k -= 2;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    parts
}

/// Extract call sites from a body token range.
fn extract_calls(toks: &[Tok], body: &Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut k = body.start;
    while k < body.end {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        // Optional turbofish between the name and the parens.
        let mut open = k + 1;
        if open + 2 < body.end
            && toks[open].is_punct(':')
            && toks[open + 1].is_punct(':')
            && toks[open + 2].is_punct('<')
        {
            open = skip_angles(toks, open + 2);
        }
        if open >= body.end || !toks[open].is_punct('(') {
            k += 1;
            continue;
        }
        let name = t.text.clone();
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            k += 1;
            continue;
        }
        if k > body.start && toks[k - 1].is_punct('.') {
            // Method call.
            let chain = receiver_chain(toks, k - 1);
            let recv = match chain.as_slice() {
                [one] if one == "self" => Recv::SelfRecv,
                [one] => Recv::Ident(one.clone()),
                [] => Recv::Other(String::new()),
                parts => Recv::Other(parts.join(".")),
            };
            out.push(CallSite {
                kind: CallKind::Method { recv, name },
                line: t.line,
                tok: k,
            });
        } else if k >= 2 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':') {
            // Path call: collect segments backwards.
            let mut segs = vec![name];
            let mut p = k - 2;
            loop {
                if p == 0 || toks[p - 1].kind != TokKind::Ident {
                    break;
                }
                segs.push(toks[p - 1].text.clone());
                if p >= 3 && toks[p - 2].is_punct(':') && toks[p - 3].is_punct(':') {
                    p -= 3;
                    // p now points at the ident; the loop reads p-1, so
                    // step once more past it.
                    if p == 0 {
                        break;
                    }
                    continue;
                }
                break;
            }
            segs.reverse();
            out.push(CallSite {
                kind: CallKind::Free(segs),
                line: t.line,
                tok: k,
            });
        } else if k > body.start && toks[k - 1].is_ident("fn") {
            // Nested fn declaration, not a call.
        } else {
            out.push(CallSite {
                kind: CallKind::Free(vec![name]),
                line: t.line,
                tok: k,
            });
        }
        k = open + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src).tokens)
    }

    #[test]
    fn finds_fns_in_modules_and_impls() {
        let p = parse(
            "mod inner { pub fn helper() {} }\n\
             struct S { x: u64 }\n\
             impl S { fn m(&self) {} }\n\
             impl Clone for S { fn clone(&self) -> S { S { x: self.x } } }\n",
        );
        let quals: Vec<String> = p.fns.iter().map(|f| f.qual()).collect();
        assert!(quals.contains(&"inner::helper".to_string()), "{quals:?}");
        assert!(quals.contains(&"S::m".to_string()));
        let clone = p.fns.iter().find(|f| f.name == "clone").unwrap();
        assert_eq!(clone.trait_impl.as_deref(), Some("Clone"));
        assert_eq!(clone.self_ty.as_deref(), Some("S"));
    }

    #[test]
    fn trait_decls_record_methods_and_default_bodies() {
        let p =
            parse("trait Advisor { fn name(&self) -> &str; fn hook(&mut self) { self.name(); } }");
        let t = &p.traits[0];
        assert_eq!(t.name, "Advisor");
        assert_eq!(t.methods, vec!["name", "hook"]);
        let hook = p.fns.iter().find(|f| f.name == "hook").unwrap();
        assert_eq!(hook.trait_impl.as_deref(), Some("Advisor"));
        assert_eq!(hook.calls.len(), 1);
    }

    #[test]
    fn cfg_test_items_are_flagged_not_dropped() {
        let p = parse("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { live(); } }");
        let live = p.fns.iter().find(|f| f.name == "live").unwrap();
        let t = p.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(!live.is_test);
        assert!(t.is_test);
        assert_eq!(t.modules, vec!["tests"]);
    }

    #[test]
    fn param_and_let_types_resolve_generic_bounds() {
        let p = parse(
            "fn f<A: Advisor>(a: &mut A, n: u64, c: &Catalog) {\n\
               let svc = WhatIfService::new(n);\n\
               let x: StatsCatalog = StatsCatalog::build(c);\n\
               a.before_round(n); svc.price(); x.refresh();\n\
             }",
        );
        let f = &p.fns[0];
        assert_eq!(f.local_type("a"), Some("Advisor"));
        assert_eq!(f.local_type("c"), Some("Catalog"));
        assert_eq!(f.local_type("svc"), Some("WhatIfService"));
        assert_eq!(f.local_type("x"), Some("StatsCatalog"));
    }

    #[test]
    fn call_kinds_cover_free_path_and_method() {
        let p = parse(
            "fn f(m: &M) {\n\
               helper();\n\
               Planner::new(m);\n\
               m.plan(1);\n\
               self_like.chain().next();\n\
               v.iter().map(|x| g(x)).collect::<Vec<_>>();\n\
             }",
        );
        let f = &p.fns[0];
        let has = |k: &CallKind| f.calls.iter().any(|c| &c.kind == k);
        assert!(has(&CallKind::Free(vec!["helper".into()])));
        assert!(has(&CallKind::Free(vec!["Planner".into(), "new".into()])));
        assert!(has(&CallKind::Method {
            recv: Recv::Ident("m".into()),
            name: "plan".into()
        }));
        // Chained receiver is Other, collect-with-turbofish still a call.
        assert!(f.calls.iter().any(
            |c| matches!(&c.kind, CallKind::Method { recv: Recv::Other(_), name } if name == "next")
        ));
        assert!(f
            .calls
            .iter()
            .any(|c| matches!(&c.kind, CallKind::Method { name, .. } if name == "collect")));
    }

    #[test]
    fn returns_guard_detects_mutexguard() {
        let p = parse(
            "fn lock(&self) -> MutexGuard<'_, u64> { self.m.lock().unwrap() }\n\
             fn plain(&self) -> u64 { 0 }",
        );
        assert!(p.fns[0].returns_guard);
        assert!(!p.fns[1].returns_guard);
    }

    #[test]
    fn struct_bodies_do_not_confuse_the_walk() {
        let p = parse(
            "pub struct X { pub a: HashMap<u64, u64> }\n\
             enum E { A(u64), B { x: u64 } }\n\
             fn after() {}",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
    }
}
