//! The rule implementations.
//!
//! Every rule is a pure function over the lexed token stream plus the file
//! policy; findings carry the rule id, line, and a message. Heuristics are
//! deliberately conservative-but-loud: a justified false positive is
//! silenced with `// lint: allow(RULE) — reason`, which doubles as
//! reviewer-facing documentation of *why* the site is safe.

use crate::lexer::{AllowDirective, BumpMarker, Tok};
use crate::policy::FilePolicy;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

pub const RULES: &[&str] = &["D01", "D02", "D03", "C01", "V01", "A00"];

fn finding(rule: &'static str, line: u32, message: impl Into<String>) -> Finding {
    Finding {
        rule,
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// D01 — nondeterministic iteration over hash containers
// ---------------------------------------------------------------------------

/// Iteration adapters that observe hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Tokens downstream of an iteration that restore determinism: an explicit
/// sort, a collect into an ordered (or re-hashed, order-free) container, or
/// an order-insensitive reduction. `fold` is deliberately absent — it is
/// order-sensitive in general and must be allowlisted when commutative.
const NORMALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "sum",
    "product",
    "count",
    "len",
    "is_empty",
    "min",
    "max",
    "all",
    "any",
    "extend",
];

/// Collect identifiers that are (locally provable) hash containers: let
/// bindings with a `HashMap`/`HashSet` type or initialiser, struct fields,
/// and typed fn params.
fn hash_container_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        // `name : [&] [mut] ['a] HashMap <` — fields, params, typed lets.
        if toks[i].kind == crate::lexer::TokKind::Ident
            && i + 2 < toks.len()
            && toks[i + 1].is_punct(':')
        {
            let mut j = i + 2;
            while j < toks.len()
                && (toks[j].is_punct('&')
                    || toks[j].is_ident("mut")
                    || toks[j].kind == crate::lexer::TokKind::Lifetime)
            {
                j += 1;
            }
            if j < toks.len() && (toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet")) {
                names.push(toks[i].text.clone());
            }
        }
        // `let [mut] name = HashMap::new()` and friends.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 2 < toks.len()
                && toks[j].kind == crate::lexer::TokKind::Ident
                && toks[j + 1].is_punct('=')
                && (toks[j + 2].is_ident("HashMap") || toks[j + 2].is_ident("HashSet"))
            {
                names.push(toks[j].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Statement-chain window for the normalization check: from the iteration
/// site to the end of the current statement *plus one more statement* — the
/// `let v: Vec<_> = map.values().collect(); v.sort();` idiom normalizes on
/// the following line.
fn chain_window(toks: &[Tok], site: usize) -> std::ops::Range<usize> {
    let depth = toks[site].depth;
    let mut semis = 0;
    let mut j = site;
    while j < toks.len() {
        if toks[j].depth < depth {
            break; // enclosing block closed
        }
        if toks[j].is_punct(';') && toks[j].depth == depth {
            semis += 1;
            if semis == 2 {
                break;
            }
        }
        j += 1;
    }
    site..j
}

pub fn d01_nondeterministic_iteration(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.d01 {
        return vec![];
    }
    let names = hash_container_names(toks);
    if names.is_empty() {
        return vec![];
    }
    let mut out = Vec::new();
    let is_tracked = |t: &Tok| t.kind == crate::lexer::TokKind::Ident && names.contains(&t.text);

    for i in 0..toks.len() {
        // Pattern A: `name.method(` with method an iteration adapter.
        let method_site = i + 2 < toks.len()
            && is_tracked(&toks[i])
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == crate::lexer::TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('));
        // Pattern B: `for pat in &[mut] name {` / `for pat in name {`.
        let for_site = is_tracked(&toks[i])
            && toks.get(i + 1).is_some_and(|t| t.is_punct('{'))
            && toks[..i].iter().rev().take(8).any(|t| t.is_ident("in"))
            && toks[..i].iter().rev().take(12).any(|t| t.is_ident("for"));
        if !(method_site || for_site) {
            continue;
        }
        if for_site {
            // A for-loop body has no chain to normalize in; it is
            // order-dependent unless proven otherwise by a human.
            out.push(finding(
                "D01",
                toks[i].line,
                format!(
                    "for-loop over hash container `{}`: iteration order is \
                     nondeterministic in a result-affecting crate; iterate a \
                     sorted snapshot or annotate why order cannot reach results",
                    toks[i].text
                ),
            ));
            continue;
        }
        let win = chain_window(toks, i);
        let normalized = toks[win].iter().any(|t| {
            t.kind == crate::lexer::TokKind::Ident && NORMALIZERS.contains(&t.text.as_str())
        });
        if !normalized {
            out.push(finding(
                "D01",
                toks[i].line,
                format!(
                    "`{}.{}()` iterates a hash container without an ordering \
                     normalization on the statement chain (sort / ordered \
                     collect / order-insensitive reduction)",
                    toks[i].text,
                    toks[i + 2].text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D02 — wall-clock / OS entropy in deterministic crates
// ---------------------------------------------------------------------------

pub fn d02_wall_clock_entropy(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.d02 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let hit = if t.is_ident("Instant") || t.is_ident("SystemTime") {
            // `Instant::now()` / `SystemTime::now()`; the bare type in a
            // signature is already a smell, but only flag the read.
            toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        } else if t.is_ident("thread_rng") {
            true
        } else if t.is_ident("random")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
        {
            // `rand::random` / `random()` via path.
            true
        } else {
            false
        };
        if hit {
            out.push(finding(
                "D02",
                t.line,
                format!(
                    "`{}` reads wall-clock/OS entropy in `{}`: all time must be \
                     SimSeconds from the cost model and all randomness seeded \
                     (StdRng::seed_from_u64), or trajectories stop replaying",
                    t.text, policy.crate_name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D03 — NaN-unsafe float ordering
// ---------------------------------------------------------------------------

pub fn d03_nan_unsafe_ordering(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.d03 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("partial_cmp") {
            continue;
        }
        // Match the call's closing paren, then look for `.unwrap()` /
        // `.expect(...)` chained onto the Option.
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('(')) else {
            continue;
        };
        let _ = open;
        let mut paren = 0i32;
        let mut j = i + 1;
        let mut close = None;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                paren += 1;
            } else if toks[j].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(c) = close else { continue };
        if toks.get(c + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(c + 2)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.push(finding(
                "D03",
                toks[i].line,
                "`partial_cmp(..).unwrap()` panics on NaN mid-session; use \
                 `total_cmp` (and prune non-finite values first when scores \
                 can be ±inf/NaN) — the greedy_select idiom in core/oracle.rs",
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// C01 — lock hygiene
// ---------------------------------------------------------------------------

/// `Advisor` trait methods: calling back into the tuning stack while
/// holding the ledger lock is the deadlock/latency hazard the SafetyLedger
/// wrapper exists to prevent.
const ADVISOR_METHODS: &[&str] = &["before_round", "after_round", "on_data_change"];

pub fn c01_lock_hygiene(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.c01 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("lock") {
            continue;
        }
        // `.lock().unwrap()` / `.lock().expect(` — raw mutex use; all lock
        // points must go through the SafetyLedger wrapper so poisoning
        // policy lives in one place.
        if i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.push(finding(
                "C01",
                toks[i].line,
                "raw `.lock().unwrap()/expect()`: route mutex access through \
                 the SafetyLedger wrapper (the one blessed lock point) so \
                 poisoning policy is centralised",
            ));
        }
    }

    // `let guard = ...lock()...;` held across a call into an Advisor
    // method: the inner advisor may re-enter the ledger → deadlock.
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(name_tok) = toks
            .get(j)
            .filter(|t| t.kind == crate::lexer::TokKind::Ident)
        else {
            i += 1;
            continue;
        };
        let binding = name_tok.text.clone();
        let let_depth = toks[i].depth;
        // Find end of the let statement and whether it takes a lock.
        let mut k = j;
        let mut locks = false;
        while k < toks.len() && !(toks[k].is_punct(';') && toks[k].depth == let_depth) {
            // Only a lock taken at the let's own brace depth makes the
            // binding a guard: `let x = { let g = m.lock(); g.field };`
            // drops the guard inside the block — `x` is plain data.
            if toks[k].is_ident("lock")
                && toks[k].depth == let_depth
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            {
                locks = true;
            }
            k += 1;
        }
        if !locks {
            i = k + 1;
            continue;
        }
        // Guard live from k to the end of the enclosing block or drop().
        let mut m = k + 1;
        while m < toks.len() && toks[m].depth >= let_depth {
            if toks[m].is_ident("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(m + 2).is_some_and(|t| t.text == binding)
            {
                break;
            }
            if toks[m].kind == crate::lexer::TokKind::Ident
                && ADVISOR_METHODS.contains(&toks[m].text.as_str())
                && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
            {
                out.push(finding(
                    "C01",
                    toks[m].line,
                    format!(
                        "Advisor method `{}` called while MutexGuard `{}` \
                         (bound at line {}) is lexically live: copy what you \
                         need out of the guard scope first, or drop() it",
                        toks[m].text, binding, name_tok.line
                    ),
                ));
                break;
            }
            m += 1;
        }
        i = k + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// V01 — version-bump discipline
// ---------------------------------------------------------------------------

/// A function item: name, signature range, body range.
struct FnItem {
    name: String,
    line: u32,
    sig: std::ops::Range<usize>,
    body: std::ops::Range<usize>,
}

fn fn_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            let fn_depth = toks[i].depth;
            // Signature runs to the body `{` at the fn's own depth (or a
            // `;` for a trait method without a default body).
            let mut j = i + 2;
            let mut body = 0..0;
            let mut sig_end = j;
            while j < toks.len() {
                if toks[j].is_punct(';') && toks[j].depth == fn_depth {
                    sig_end = j;
                    break;
                }
                if toks[j].is_punct('{') && toks[j].depth == fn_depth {
                    sig_end = j;
                    let mut k = j + 1;
                    while k < toks.len() && !(toks[k].is_punct('}') && toks[k].depth == fn_depth) {
                        k += 1;
                    }
                    body = j + 1..k;
                    break;
                }
                j += 1;
            }
            out.push(FnItem {
                name,
                line,
                sig: i..sig_end,
                body,
            });
            i = sig_end + 1;
        } else {
            i += 1;
        }
    }
    out
}

fn has_seq(toks: &[Tok], range: &std::ops::Range<usize>, seq: &[&str]) -> bool {
    if range.len() < seq.len() {
        return false;
    }
    'outer: for s in range.start..=range.end.saturating_sub(seq.len()) {
        for (off, want) in seq.iter().enumerate() {
            let t = &toks[s + off];
            let matches = match *want {
                "." => t.is_punct('.'),
                "&" => t.is_punct('&'),
                w => t.is_ident(w),
            };
            if !matches {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

pub fn v01_version_bump(toks: &[Tok], policy: &FilePolicy, bumps: &[BumpMarker]) -> Vec<Finding> {
    let Some(v01) = &policy.v01 else {
        return vec![];
    };
    let mut out = Vec::new();
    let items = fn_items(toks);

    // A marker binds to exactly the first fn declared after it.
    let mut marked_fn_lines: Vec<u32> = Vec::new();

    // Part 1: every `// bumps: X` marker must sit on a function whose body
    // actually bumps (directly or through a marked delegate).
    for marker in bumps {
        let item = items.iter().find(|f| f.line >= marker.line);
        if let Some(item) = item {
            marked_fn_lines.push(item.line);
        }
        let Some(item) = item else {
            out.push(finding(
                "V01",
                marker.line,
                format!("`// bumps: {}` marker is not followed by a fn", marker.kind),
            ));
            continue;
        };
        let bumped = v01
            .bump_tokens
            .iter()
            .any(|b| has_seq(toks, &item.body, &[b]));
        if !bumped {
            out.push(finding(
                "V01",
                item.line,
                format!(
                    "`{}` is marked `// bumps: {}` but its body never calls \
                     a bump ({}): cached plans keyed on this version will \
                     serve stale results",
                    item.name,
                    marker.kind,
                    v01.bump_tokens.join("/")
                ),
            ));
        }
    }

    // Part 2: every `&mut self` method that touches tracked state must
    // carry a marker (or bump anyway — then the marker is just missing
    // documentation, still flagged to keep the convention total).
    for item in &items {
        let mut_self = has_seq(toks, &item.sig, &["&", "mut", "self"]);
        if !mut_self || item.body.is_empty() {
            continue;
        }
        let mutates = v01
            .mutation_seqs
            .iter()
            .any(|seq| has_seq(toks, &item.body, seq));
        if !mutates {
            continue;
        }
        // The bump helper itself is the mechanism, not a client.
        if v01.bump_tokens.contains(&item.name.as_str()) {
            continue;
        }
        let marked = marked_fn_lines.contains(&item.line);
        if !marked {
            out.push(finding(
                "V01",
                item.line,
                format!(
                    "`&mut self` method `{}` mutates version-tracked state \
                     without a `// bumps:` marker: either bump the version \
                     counter and mark it, or annotate why no bump is needed",
                    item.name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A00 — allowlist hygiene + suppression
// ---------------------------------------------------------------------------

pub fn check_allow_directives(allows: &[AllowDirective]) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows {
        if a.rules.is_empty() {
            out.push(finding(
                "A00",
                a.line,
                "malformed `// lint: allow(...)` directive: no rule names",
            ));
            continue;
        }
        for r in &a.rules {
            if !RULES.contains(&r.as_str()) || r == "A00" {
                out.push(finding(
                    "A00",
                    a.line,
                    format!("`// lint: allow({r})` names an unknown rule"),
                ));
            }
        }
        if a.reason.trim().len() < 3 {
            out.push(finding(
                "A00",
                a.line,
                format!(
                    "`// lint: allow({})` has no reason: suppressions must \
                     say why the site is safe (`// lint: allow(RULE) — reason`)",
                    a.rules.join(", ")
                ),
            ));
        }
    }
    out
}

/// Drop findings covered by a well-formed allow on the same or previous
/// line. Malformed (reason-less) allows never suppress.
pub fn apply_allows(findings: Vec<Finding>, allows: &[AllowDirective]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|a| {
                a.reason.trim().len() >= 3
                    && a.rules.iter().any(|r| r == f.rule)
                    && (a.line == f.line || a.line + 1 == f.line)
            })
        })
        .collect()
}
