//! The rule implementations.
//!
//! Every rule is a pure function over the lexed token stream plus the file
//! policy; findings carry the rule id, line, and a message. Heuristics are
//! deliberately conservative-but-loud: a justified false positive is
//! silenced with `// lint: allow(RULE) — reason`, which doubles as
//! reviewer-facing documentation of *why* the site is safe.

use crate::graph::{FileModel, FnId, Model};
use crate::lexer::{AllowDirective, BumpMarker, Tok};
use crate::policy::{self, FilePolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

pub const RULES: &[&str] = &[
    "D01", "D02", "D03", "C01", "V01", "A00", "G01", "G02", "G03", "G04", "O01",
];

/// One-line docs for `dba-lint --list-rules` (and the README table).
pub const RULE_DOCS: &[(&str, &str)] = &[
    ("D01", "no unnormalized HashMap/HashSet iteration in result-affecting crates"),
    (
        "D02",
        "no wall-clock / OS-entropy reads outside dba-bench; dba-backend's injectable clock \
         seam (clock.rs) is the one sanctioned boundary, via a reasoned allow",
    ),
    ("D03", "no partial_cmp(..).unwrap() float ordering (use total_cmp)"),
    ("C01", "mutex access via the SafetyLedger wrapper; no guard across Advisor calls"),
    ("V01", "Catalog/StatsCatalog mutators bump their version (`// bumps:` markers)"),
    ("G01", "transitive determinism taint: D01/D02-class sources reachable from result-affecting entry points, any crate"),
    ("G02", "lock-order cycles and MutexGuard live across a (transitively) lock-acquiring call"),
    ("G03", "pricing discipline: raw Planner construction in dba-safety/dba-baselines must route through WhatIfService"),
    ("G04", "transitive version-bump discipline: mutations reached through wrapper fns still hit a `// bumps:`-marked mutator"),
    ("O01", "obs instrumentation calls are statements: their results never flow into program state"),
    ("A00", "every `// lint: allow(RULE)` carries a written reason"),
    ("E00", "unreadable workspace file (reported, not suppressible)"),
];

fn finding(rule: &'static str, line: u32, message: impl Into<String>) -> Finding {
    Finding {
        rule,
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// D01 — nondeterministic iteration over hash containers
// ---------------------------------------------------------------------------

/// Iteration adapters that observe hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Tokens downstream of an iteration that restore determinism: an explicit
/// sort, a collect into an ordered (or re-hashed, order-free) container, or
/// an order-insensitive reduction. `fold` is deliberately absent — it is
/// order-sensitive in general and must be allowlisted when commutative.
const NORMALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "sum",
    "product",
    "count",
    "len",
    "is_empty",
    "min",
    "max",
    "all",
    "any",
    "extend",
];

/// Collect identifiers that are (locally provable) hash containers: let
/// bindings with a `HashMap`/`HashSet` type or initialiser, struct fields,
/// and typed fn params.
pub(crate) fn hash_container_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        // `name : [&] [mut] ['a] HashMap <` — fields, params, typed lets.
        if toks[i].kind == crate::lexer::TokKind::Ident
            && i + 2 < toks.len()
            && toks[i + 1].is_punct(':')
        {
            let mut j = i + 2;
            while j < toks.len()
                && (toks[j].is_punct('&')
                    || toks[j].is_ident("mut")
                    || toks[j].kind == crate::lexer::TokKind::Lifetime)
            {
                j += 1;
            }
            if j < toks.len() && (toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet")) {
                names.push(toks[i].text.clone());
            }
        }
        // `let [mut] name = HashMap::new()` and friends.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 2 < toks.len()
                && toks[j].kind == crate::lexer::TokKind::Ident
                && toks[j + 1].is_punct('=')
                && (toks[j + 2].is_ident("HashMap") || toks[j + 2].is_ident("HashSet"))
            {
                names.push(toks[j].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Statement-chain window for the normalization check: from the iteration
/// site to the end of the current statement *plus one more statement* — the
/// `let v: Vec<_> = map.values().collect(); v.sort();` idiom normalizes on
/// the following line.
fn chain_window(toks: &[Tok], site: usize) -> std::ops::Range<usize> {
    let depth = toks[site].depth;
    let mut semis = 0;
    let mut j = site;
    while j < toks.len() {
        if toks[j].depth < depth {
            break; // enclosing block closed
        }
        if toks[j].is_punct(';') && toks[j].depth == depth {
            semis += 1;
            if semis == 2 {
                break;
            }
        }
        j += 1;
    }
    site..j
}

pub fn d01_nondeterministic_iteration(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.d01 {
        return vec![];
    }
    let names = hash_container_names(toks);
    d01_sites(toks, &names, 0..toks.len())
        .into_iter()
        .map(|(line, msg)| finding("D01", line, msg))
        .collect()
}

/// D01-class source sites within a token range (the shared detector G01
/// reuses for crates the local rule does not scope to).
pub(crate) fn d01_sites(toks: &[Tok], names: &[String], range: Range<usize>) -> Vec<(u32, String)> {
    if names.is_empty() {
        return vec![];
    }
    let mut out = Vec::new();
    let is_tracked = |t: &Tok| t.kind == crate::lexer::TokKind::Ident && names.contains(&t.text);

    for i in range {
        // Pattern A: `name.method(` with method an iteration adapter.
        let method_site = i + 2 < toks.len()
            && is_tracked(&toks[i])
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == crate::lexer::TokKind::Ident
            && ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('));
        // Pattern B: `for pat in &[mut] name {` / `for pat in name {`.
        let for_site = is_tracked(&toks[i])
            && toks.get(i + 1).is_some_and(|t| t.is_punct('{'))
            && toks[..i].iter().rev().take(8).any(|t| t.is_ident("in"))
            && toks[..i].iter().rev().take(12).any(|t| t.is_ident("for"));
        if !(method_site || for_site) {
            continue;
        }
        if for_site {
            // A for-loop body has no chain to normalize in; it is
            // order-dependent unless proven otherwise by a human.
            out.push((
                toks[i].line,
                format!(
                    "for-loop over hash container `{}`: iteration order is \
                     nondeterministic in a result-affecting crate; iterate a \
                     sorted snapshot or annotate why order cannot reach results",
                    toks[i].text
                ),
            ));
            continue;
        }
        let win = chain_window(toks, i);
        let normalized = toks[win].iter().any(|t| {
            t.kind == crate::lexer::TokKind::Ident && NORMALIZERS.contains(&t.text.as_str())
        });
        if !normalized {
            out.push((
                toks[i].line,
                format!(
                    "`{}.{}()` iterates a hash container without an ordering \
                     normalization on the statement chain (sort / ordered \
                     collect / order-insensitive reduction)",
                    toks[i].text,
                    toks[i + 2].text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D02 — wall-clock / OS entropy in deterministic crates
// ---------------------------------------------------------------------------

pub fn d02_wall_clock_entropy(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.d02 {
        return vec![];
    }
    d02_sites(toks, 0..toks.len())
        .into_iter()
        .map(|(line, what)| {
            finding(
                "D02",
                line,
                format!(
                    "`{}` reads wall-clock/OS entropy in `{}`: all time must be \
                     SimSeconds from the cost model and all randomness seeded \
                     (StdRng::seed_from_u64), or trajectories stop replaying",
                    what, policy.crate_name
                ),
            )
        })
        .collect()
}

/// D02-class source sites (wall-clock / OS-entropy reads) within a token
/// range; returns the offending identifier per site.
pub(crate) fn d02_sites(toks: &[Tok], range: Range<usize>) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for i in range {
        let t = &toks[i];
        let hit = if t.is_ident("Instant") || t.is_ident("SystemTime") {
            // `Instant::now()` / `SystemTime::now()`; the bare type in a
            // signature is already a smell, but only flag the read.
            toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        } else if t.is_ident("thread_rng") {
            true
        } else if t.is_ident("random")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
        {
            // `rand::random` / `random()` via path.
            true
        } else {
            false
        };
        if hit {
            out.push((t.line, t.text.clone()));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D03 — NaN-unsafe float ordering
// ---------------------------------------------------------------------------

pub fn d03_nan_unsafe_ordering(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.d03 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("partial_cmp") {
            continue;
        }
        // Match the call's closing paren, then look for `.unwrap()` /
        // `.expect(...)` chained onto the Option.
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('(')) else {
            continue;
        };
        let _ = open;
        let mut paren = 0i32;
        let mut j = i + 1;
        let mut close = None;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                paren += 1;
            } else if toks[j].is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(c) = close else { continue };
        if toks.get(c + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(c + 2)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.push(finding(
                "D03",
                toks[i].line,
                "`partial_cmp(..).unwrap()` panics on NaN mid-session; use \
                 `total_cmp` (and prune non-finite values first when scores \
                 can be ±inf/NaN) — the greedy_select idiom in core/oracle.rs",
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// C01 — lock hygiene
// ---------------------------------------------------------------------------

/// `Advisor` trait methods: calling back into the tuning stack while
/// holding the ledger lock is the deadlock/latency hazard the SafetyLedger
/// wrapper exists to prevent.
const ADVISOR_METHODS: &[&str] = &["before_round", "after_round", "on_data_change"];

pub fn c01_lock_hygiene(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.c01 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("lock") {
            continue;
        }
        // `.lock().unwrap()` / `.lock().expect(` — raw mutex use; all lock
        // points must go through the SafetyLedger wrapper so poisoning
        // policy lives in one place.
        if i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 4)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.push(finding(
                "C01",
                toks[i].line,
                "raw `.lock().unwrap()/expect()`: route mutex access through \
                 the SafetyLedger wrapper (the one blessed lock point) so \
                 poisoning policy is centralised",
            ));
        }
    }

    // `let guard = ...lock()...;` held across a call into an Advisor
    // method: the inner advisor may re-enter the ledger → deadlock.
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(name_tok) = toks
            .get(j)
            .filter(|t| t.kind == crate::lexer::TokKind::Ident)
        else {
            i += 1;
            continue;
        };
        let binding = name_tok.text.clone();
        let let_depth = toks[i].depth;
        // Find end of the let statement and whether it takes a lock.
        let mut k = j;
        let mut locks = false;
        while k < toks.len() && !(toks[k].is_punct(';') && toks[k].depth == let_depth) {
            // Only a lock taken at the let's own brace depth makes the
            // binding a guard: `let x = { let g = m.lock(); g.field };`
            // drops the guard inside the block — `x` is plain data.
            if toks[k].is_ident("lock")
                && toks[k].depth == let_depth
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
            {
                locks = true;
            }
            k += 1;
        }
        if !locks {
            i = k + 1;
            continue;
        }
        // Guard live from k to the end of the enclosing block or drop().
        let mut m = k + 1;
        while m < toks.len() && toks[m].depth >= let_depth {
            if toks[m].is_ident("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(m + 2).is_some_and(|t| t.text == binding)
            {
                break;
            }
            if toks[m].kind == crate::lexer::TokKind::Ident
                && ADVISOR_METHODS.contains(&toks[m].text.as_str())
                && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
            {
                out.push(finding(
                    "C01",
                    toks[m].line,
                    format!(
                        "Advisor method `{}` called while MutexGuard `{}` \
                         (bound at line {}) is lexically live: copy what you \
                         need out of the guard scope first, or drop() it",
                        toks[m].text, binding, name_tok.line
                    ),
                ));
                break;
            }
            m += 1;
        }
        i = k + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// V01 — version-bump discipline
// ---------------------------------------------------------------------------

/// A function item: name, signature range, body range.
struct FnItem {
    name: String,
    line: u32,
    sig: std::ops::Range<usize>,
    body: std::ops::Range<usize>,
}

fn fn_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            let fn_depth = toks[i].depth;
            // Signature runs to the body `{` at the fn's own depth (or a
            // `;` for a trait method without a default body).
            let mut j = i + 2;
            let mut body = 0..0;
            let mut sig_end = j;
            while j < toks.len() {
                if toks[j].is_punct(';') && toks[j].depth == fn_depth {
                    sig_end = j;
                    break;
                }
                if toks[j].is_punct('{') && toks[j].depth == fn_depth {
                    sig_end = j;
                    let mut k = j + 1;
                    while k < toks.len() && !(toks[k].is_punct('}') && toks[k].depth == fn_depth) {
                        k += 1;
                    }
                    body = j + 1..k;
                    break;
                }
                j += 1;
            }
            out.push(FnItem {
                name,
                line,
                sig: i..sig_end,
                body,
            });
            i = sig_end + 1;
        } else {
            i += 1;
        }
    }
    out
}

fn has_seq(toks: &[Tok], range: &std::ops::Range<usize>, seq: &[&str]) -> bool {
    if range.len() < seq.len() {
        return false;
    }
    'outer: for s in range.start..=range.end.saturating_sub(seq.len()) {
        for (off, want) in seq.iter().enumerate() {
            let t = &toks[s + off];
            let matches = match *want {
                "." => t.is_punct('.'),
                "&" => t.is_punct('&'),
                w => t.is_ident(w),
            };
            if !matches {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

pub fn v01_version_bump(toks: &[Tok], policy: &FilePolicy, bumps: &[BumpMarker]) -> Vec<Finding> {
    let Some(v01) = &policy.v01 else {
        return vec![];
    };
    let mut out = Vec::new();
    let items = fn_items(toks);

    // A marker binds to exactly the first fn declared after it.
    let mut marked_fn_lines: Vec<u32> = Vec::new();

    // Part 1: every `// bumps: X` marker must sit on a function whose body
    // actually bumps (directly or through a marked delegate).
    for marker in bumps {
        let item = items.iter().find(|f| f.line >= marker.line);
        if let Some(item) = item {
            marked_fn_lines.push(item.line);
        }
        let Some(item) = item else {
            out.push(finding(
                "V01",
                marker.line,
                format!("`// bumps: {}` marker is not followed by a fn", marker.kind),
            ));
            continue;
        };
        let bumped = v01
            .bump_tokens
            .iter()
            .any(|b| has_seq(toks, &item.body, &[b]));
        if !bumped {
            out.push(finding(
                "V01",
                item.line,
                format!(
                    "`{}` is marked `// bumps: {}` but its body never calls \
                     a bump ({}): cached plans keyed on this version will \
                     serve stale results",
                    item.name,
                    marker.kind,
                    v01.bump_tokens.join("/")
                ),
            ));
        }
    }

    // Part 2: every `&mut self` method that touches tracked state must
    // carry a marker (or bump anyway — then the marker is just missing
    // documentation, still flagged to keep the convention total).
    for item in &items {
        let mut_self = has_seq(toks, &item.sig, &["&", "mut", "self"]);
        if !mut_self || item.body.is_empty() {
            continue;
        }
        let mutates = v01
            .mutation_seqs
            .iter()
            .any(|seq| has_seq(toks, &item.body, seq));
        if !mutates {
            continue;
        }
        // The bump helper itself is the mechanism, not a client.
        if v01.bump_tokens.contains(&item.name.as_str()) {
            continue;
        }
        let marked = marked_fn_lines.contains(&item.line);
        if !marked {
            out.push(finding(
                "V01",
                item.line,
                format!(
                    "`&mut self` method `{}` mutates version-tracked state \
                     without a `// bumps:` marker: either bump the version \
                     counter and mark it, or annotate why no bump is needed",
                    item.name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// G01 — transitive determinism taint
// ---------------------------------------------------------------------------

/// Is this fn a result-affecting entry point? (Advisor trait impls,
/// `TuningSession::run/step` and friends, the results/records emitters.)
pub fn is_entry(sym: &crate::graph::FnSym) -> bool {
    if sym
        .info
        .trait_impl
        .as_deref()
        .is_some_and(|t| policy::ENTRY_TRAITS.contains(&t))
    {
        return true;
    }
    if let Some(ty) = sym.info.self_ty.as_deref() {
        if policy::ENTRY_METHODS
            .iter()
            .any(|(t, ms)| *t == ty && ms.contains(&sym.info.name.as_str()))
        {
            return true;
        }
    }
    sym.info.self_ty.is_none() && policy::ENTRY_FREE_FNS.contains(&sym.info.name.as_str())
}

/// G01: a D01/D02-class source (unnormalized hash iteration, wall-clock,
/// entropy) in a crate the local rule does *not* scope to is still a
/// finding when the enclosing fn is reachable from a result-affecting
/// entry point — nondeterminism does not respect crate boundaries.
/// Sources in crates where D01/D02 already run are left to those rules.
pub fn g01_transitive_taint(model: &Model, files: &[FileModel]) -> Vec<(usize, Finding)> {
    let entries: Vec<FnId> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.info.is_test && is_entry(s))
        .map(|(i, _)| i)
        .collect();
    let pred = model.reach_from(&entries);
    let hash_names: Vec<Vec<String>> = files
        .iter()
        .map(|f| hash_container_names(&f.toks))
        .collect();

    let mut out = Vec::new();
    for &f in pred.keys() {
        let sym = &model.fns[f];
        if sym.info.is_test || sym.info.body.is_empty() {
            continue;
        }
        let fm = &files[sym.file];
        let needs_d01 = !fm.policy.d01;
        let needs_d02 = !fm.policy.d02 && fm.policy.crate_name != "dba-analysis";
        if !needs_d01 && !needs_d02 {
            continue;
        }
        let path = model.path_to(&pred, f);
        let entry = model.fns[path[0]].display();
        let via = if path.len() > 1 {
            let hops: Vec<String> = path[1..]
                .iter()
                .map(|&id| format!("`{}`", model.fns[id].info.qual()))
                .collect();
            format!(" via {}", hops.join(" → "))
        } else {
            String::new()
        };
        if needs_d01 {
            for (line, msg) in d01_sites(&fm.toks, &hash_names[sym.file], sym.info.body.clone()) {
                out.push((
                    sym.file,
                    finding(
                        "G01",
                        line,
                        format!(
                            "{msg} — reachable from result-affecting entry \
                             `{entry}`{via}; iteration order taints results \
                             across the crate boundary"
                        ),
                    ),
                ));
            }
        }
        if needs_d02 {
            for (line, what) in d02_sites(&fm.toks, sym.info.body.clone()) {
                out.push((
                    sym.file,
                    finding(
                        "G01",
                        line,
                        format!(
                            "`{what}` reads wall-clock/OS entropy inside code \
                             reachable from result-affecting entry `{entry}`{via}: \
                             the local D02 exemption does not extend to code the \
                             tuning trajectory can reach"
                        ),
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// G02 — lock-order and guard-across-call hazards
// ---------------------------------------------------------------------------

/// A direct lock acquisition site (`recv.lock(..)`).
struct LockSite {
    id: String,
    tok: usize,
    line: u32,
}

/// Lock identity for the receiver chain before `.lock(`: prefixed with
/// the impl type when rooted at `self`, so `self.inner` in two different
/// impls stays two locks. Expression receivers get a per-fn synthetic id.
fn lock_id(chain: &[String], sym: &crate::graph::FnSym) -> String {
    if chain.is_empty() {
        return format!("<expr in {}>", sym.display());
    }
    if chain[0] == "self" {
        if let Some(ty) = &sym.info.self_ty {
            return format!("{}::{}", ty, chain.join("."));
        }
    }
    chain.join(".")
}

fn direct_lock_sites(fm: &FileModel, sym: &crate::graph::FnSym) -> Vec<LockSite> {
    let toks = &fm.toks;
    let mut out = Vec::new();
    for k in sym.info.body.clone() {
        if toks[k].is_ident("lock")
            && k > 0
            && toks[k - 1].is_punct('.')
            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            let chain = crate::parser::receiver_chain(toks, k - 1);
            out.push(LockSite {
                id: lock_id(&chain, sym),
                tok: k,
                line: toks[k].line,
            });
        }
    }
    out
}

/// Index just past the `)` matching the `(` at `open`.
fn close_paren(toks: &[Tok], open: usize) -> usize {
    let mut paren = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            paren += 1;
        } else if toks[j].is_punct(')') {
            paren -= 1;
            if paren == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Does the call whose name token is at `k` terminate the initializer
/// chain ending at `stmt_end`? A binding is only a guard when the
/// lock/wrapper call's value *is* the bound value —
/// `.lock().is_quarantined(..)` binds a bool and releases the guard at
/// the semicolon. A trailing `.unwrap()`/`.expect(..)` keeps guard-ness.
fn terminal_call(toks: &[Tok], k: usize, stmt_end: usize) -> bool {
    let open = k + 1;
    if open >= stmt_end || !toks[open].is_punct('(') {
        return false;
    }
    let mut j = close_paren(toks, open);
    loop {
        if j >= stmt_end {
            return true;
        }
        if toks[j].is_punct('.')
            && toks
                .get(j + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            j = close_paren(toks, j + 2);
            continue;
        }
        return false;
    }
}

/// A guard binding: `let g = ..lock()..;` or `let g = wrapper();` where
/// the wrapper returns a `MutexGuard`, with its lexical live token range.
struct GuardSpan {
    binding: String,
    ids: Vec<String>,
    live: Range<usize>,
    line: u32,
}

fn guard_spans(
    model: &Model,
    fm: &FileModel,
    f: FnId,
    lock_closure: &[BTreeSet<String>],
    sites: &[LockSite],
) -> Vec<GuardSpan> {
    let sym = &model.fns[f];
    let toks = &fm.toks;
    let body = sym.info.body.clone();
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let d = toks[i].depth;
        let mut j = i + 1;
        if j < body.end && toks[j].is_ident("mut") {
            j += 1;
        }
        let Some(name_tok) = toks
            .get(j)
            .filter(|t| t.kind == crate::lexer::TokKind::Ident && j < body.end)
        else {
            i += 1;
            continue;
        };
        let binding = name_tok.text.clone();
        // Statement end: `;` at the let's own depth.
        let mut stmt_end = j;
        while stmt_end < body.end && !(toks[stmt_end].is_punct(';') && toks[stmt_end].depth == d) {
            if toks[stmt_end].depth < d {
                break;
            }
            stmt_end += 1;
        }
        // Lock ids bound by the initialiser: direct `.lock(` at the let's
        // depth, plus calls resolved to guard-returning wrappers.
        let mut ids: Vec<String> = sites
            .iter()
            .filter(|s| {
                s.tok > j
                    && s.tok < stmt_end
                    && toks[s.tok].depth == d
                    && terminal_call(toks, s.tok, stmt_end)
            })
            .map(|s| s.id.clone())
            .collect();
        for c in &sym.info.calls {
            if c.tok > j
                && c.tok < stmt_end
                && toks[c.tok].depth == d
                && terminal_call(toks, c.tok, stmt_end)
            {
                for callee in model.resolve(f, c) {
                    if model.fns[callee].info.returns_guard && !lock_closure[callee].is_empty() {
                        ids.extend(lock_closure[callee].iter().cloned());
                    }
                }
            }
        }
        ids.sort();
        ids.dedup();
        if ids.is_empty() {
            i = stmt_end + 1;
            continue;
        }
        // Live until the enclosing block closes or `drop(binding)`.
        let mut m = stmt_end + 1;
        let mut live_end = body.end;
        while m < body.end {
            if toks[m].depth < d {
                live_end = m;
                break;
            }
            if toks[m].is_ident("drop")
                && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(m + 2).is_some_and(|t| t.text == binding)
            {
                live_end = m;
                break;
            }
            m += 1;
        }
        out.push(GuardSpan {
            binding,
            ids,
            live: stmt_end + 1..live_end,
            line: name_tok.line,
        });
        i = stmt_end + 1;
    }
    out
}

/// G02: (a) a `MutexGuard` lexically live across a call whose callee
/// transitively acquires any lock; (b) acquisition-order cycles over the
/// lock-site graph (including transitive, cross-function pairs).
pub fn g02_lock_order(model: &Model, files: &[FileModel]) -> Vec<(usize, Finding)> {
    // Per-fn direct lock ids → transitive closure over the call graph.
    let all_sites: Vec<Vec<LockSite>> = model
        .fns
        .iter()
        .map(|sym| direct_lock_sites(&files[sym.file], sym))
        .collect();
    let direct_ids: Vec<Vec<String>> = all_sites
        .iter()
        .map(|v| v.iter().map(|s| s.id.clone()).collect())
        .collect();
    let closure = model.closure_of(&direct_ids);

    let mut out = Vec::new();
    // Order-pair graph: held lock → acquired lock, with a witness site.
    let mut pairs: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();

    for (f, sym) in model.fns.iter().enumerate() {
        if sym.info.is_test || sym.info.body.is_empty() {
            continue;
        }
        let fm = &files[sym.file];
        let guards = guard_spans(model, fm, f, &closure, &all_sites[f]);
        for g in &guards {
            // Direct acquisitions while the guard is live.
            for s in &all_sites[f] {
                if s.tok >= g.live.start && s.tok < g.live.end {
                    for held in &g.ids {
                        pairs
                            .entry((held.clone(), s.id.clone()))
                            .or_insert((sym.file, s.line));
                    }
                }
            }
            // Calls while the guard is live.
            let mut flagged: BTreeSet<(u32, FnId)> = BTreeSet::new();
            for c in &sym.info.calls {
                if c.tok < g.live.start || c.tok >= g.live.end {
                    continue;
                }
                for callee in model.resolve(f, c) {
                    if closure[callee].is_empty() {
                        continue;
                    }
                    for held in &g.ids {
                        for acq in &closure[callee] {
                            pairs
                                .entry((held.clone(), acq.clone()))
                                .or_insert((sym.file, c.line));
                        }
                    }
                    if flagged.insert((c.line, callee)) {
                        let acq: Vec<&str> = closure[callee].iter().map(String::as_str).collect();
                        out.push((
                            sym.file,
                            finding(
                                "G02",
                                c.line,
                                format!(
                                    "call into `{}` — which (transitively) acquires \
                                     {} — while MutexGuard `{}` (bound at line {}, \
                                     holding {}) is lexically live: deadlock hazard; \
                                     copy data out and drop the guard first",
                                    model.fns[callee].display(),
                                    acq.join(", "),
                                    g.binding,
                                    g.line,
                                    g.ids.join(", "),
                                ),
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the order-pair graph.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in pairs.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if !seen.insert(u) {
                continue;
            }
            if let Some(next) = adj.get(u) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((a, b), &(file, line)) in &pairs {
        let cyclic = if a == b {
            true
        } else {
            reaches(b.as_str(), a.as_str())
        };
        if !cyclic {
            continue;
        }
        // One finding per distinct cycle node-set, at the witness site.
        let mut key: Vec<String> = vec![a.clone(), b.clone()];
        key.sort();
        key.dedup();
        if !reported.insert(key) {
            continue;
        }
        let msg = if a == b {
            format!(
                "lock `{a}` acquired while already held: std::sync::Mutex \
                 is not reentrant — this self-deadlocks at runtime"
            )
        } else {
            format!(
                "lock acquisition-order cycle: `{a}` is held while taking \
                 `{b}`, and `{b}` is (transitively) held while taking `{a}`: \
                 impose one global order or merge the critical sections"
            )
        };
        out.push((file, finding("G02", line, msg)));
    }
    out
}

// ---------------------------------------------------------------------------
// G03 — pricing discipline
// ---------------------------------------------------------------------------

/// G03: in the regret-accounting crates, plan *pricing* must flow through
/// the memoized, version-validated `WhatIfService`/`WhatIf` path. A raw
/// `Planner::new` there either duplicates that engine without its version
/// checks (a correctness hazard for regret math) or is a genuine
/// execution path — which must say so in an `allow(G03)` reason. Runs on
/// the unstripped stream: a test that prices around the service validates
/// the wrong path, so `#[cfg(test)]` is not exempt.
pub fn g03_pricing_discipline(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.g03 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("Planner")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
        {
            out.push(finding(
                "G03",
                toks[i].line,
                format!(
                    "raw `Planner::new` in `{}`: plan pricing here must route \
                     through the shared WhatIfService/WhatIf (memoized, \
                     version-validated) so regret accounting stays on the \
                     authoritative path; if this is genuinely an execution \
                     path, say why with `// lint: allow(G03) — reason`",
                    policy.crate_name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// G04 — transitive version-bump discipline
// ---------------------------------------------------------------------------

/// G04: V01 sees only fns whose *own body* mutates tracked state. A
/// wrapper that reaches a mutation through calls must still reach a
/// `// bumps:`-marked mutator (or a bump helper) on some call path —
/// otherwise version-keyed caches serve stale plans through the wrapper.
pub fn g04_transitive_bump(model: &Model, files: &[FileModel]) -> Vec<(usize, Finding)> {
    // Facts per fn, only meaningful in V01-policied files.
    let n = model.fns.len();
    let mut direct_mut = vec![false; n];
    let mut bumping = vec![false; n]; // directly bumps, is marked, or is the helper
    let mut in_scope = vec![false; n];
    let mut marked = vec![false; n];
    for (f, sym) in model.fns.iter().enumerate() {
        let fm = &files[sym.file];
        let Some(v01) = &fm.policy.v01 else { continue };
        in_scope[f] = true;
        let body = sym.info.body.clone();
        // Mutation needs `&mut self` — a shared-ref accessor can only read
        // the tracked fields (same gate V01 applies).
        let mut_self = has_seq(&fm.toks, &sym.info.sig, &["&", "mut", "self"]);
        direct_mut[f] = mut_self
            && v01
                .mutation_seqs
                .iter()
                .any(|s| has_seq(&fm.toks, &body, s));
        let direct_bump = v01
            .bump_tokens
            .iter()
            .any(|b| has_seq(&fm.toks, &body, &[b]));
        let is_marker_target = fm.bumps.iter().any(|m| {
            // A marker binds to the first fn declared at or after it.
            sym.info.line >= m.line
                && !fm
                    .parsed
                    .fns
                    .iter()
                    .any(|o| o.line >= m.line && o.line < sym.info.line)
        });
        marked[f] = is_marker_target;
        bumping[f] =
            direct_bump || is_marker_target || v01.bump_tokens.contains(&sym.info.name.as_str());
    }

    // Backward reachability: which fns can reach a mutating fn / a
    // bumping fn through the call graph?
    let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
    for (u, es) in model.edges.iter().enumerate() {
        for &(v, _) in es {
            rev[v].push(u);
        }
    }
    let back_reach = |seeds: Vec<FnId>| -> Vec<bool> {
        let mut seen = vec![false; n];
        let mut stack = seeds;
        while let Some(u) = stack.pop() {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            stack.extend(rev[u].iter().copied());
        }
        seen
    };
    let reaches_mut = back_reach((0..n).filter(|&f| direct_mut[f]).collect());
    let reaches_bump = back_reach((0..n).filter(|&f| bumping[f]).collect());

    let mut out = Vec::new();
    for f in 0..n {
        let sym = &model.fns[f];
        if !in_scope[f] || sym.info.is_test || sym.info.body.is_empty() {
            continue;
        }
        // Direct mutators are V01's business; wrappers are ours.
        if direct_mut[f] || marked[f] || bumping[f] {
            continue;
        }
        if reaches_mut[f] && !reaches_bump[f] {
            out.push((
                sym.file,
                finding(
                    "G04",
                    sym.info.line,
                    format!(
                        "`{}` reaches a version-tracked mutation through its \
                         callees but no call path hits a `// bumps:`-marked \
                         mutator or bump helper: caches keyed on the version \
                         will serve stale plans through this wrapper",
                        sym.info.name
                    ),
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// O01 — instrumentation purity
// ---------------------------------------------------------------------------

/// `Obs` methods that record telemetry. All return `()` (or nothing worth
/// keeping); a site that *consumes* such a call — binds it, returns it,
/// passes it as an argument — has wired advisory instrumentation into
/// program state, which is exactly what the bit-identical-results
/// guarantee forbids. `enabled()` is deliberately absent: gating work on
/// it is the blessed pattern for avoiding allocation on the noop path.
const OBS_RECORD_METHODS: &[&str] = &[
    "span_enter",
    "span_exit",
    "counter",
    "histogram",
    "event",
    "set_sim_now",
    "flush",
];

/// O01: an obs recording call must stand alone as a statement —
/// `obs.counter("x", 1);` / `self.session.obs().event(..);` — never in
/// expression position. The receiver is matched syntactically: a chain
/// ending in the ident `obs` (a field or binding) or an `obs()` accessor.
pub fn o01_instrumentation_purity(toks: &[Tok], policy: &FilePolicy) -> Vec<Finding> {
    if !policy.o01 {
        return vec![];
    }
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != crate::lexer::TokKind::Ident
            || !OBS_RECORD_METHODS.contains(&toks[i].text.as_str())
        {
            continue;
        }
        if i < 2 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        // The receiver chain must end in the obs handle: `obs.m(` (field
        // or local) or `obs().m(` (accessor). Anything else — a different
        // receiver that happens to share a method name — is not ours.
        let recv = if toks[i - 2].is_ident("obs") {
            Some(i - 2)
        } else if i >= 4
            && toks[i - 2].is_punct(')')
            && toks[i - 3].is_punct('(')
            && toks[i - 4].is_ident("obs")
        {
            Some(i - 4)
        } else {
            None
        };
        let Some(mut start) = recv else { continue };
        // Extend left through the dotted receiver chain (`self.session.`).
        while start >= 2
            && toks[start - 1].is_punct('.')
            && toks[start - 2].kind == crate::lexer::TokKind::Ident
        {
            start -= 2;
        }
        let stmt_head = start == 0
            || matches!(&toks[start - 1], t if t.is_punct(';') || t.is_punct('{') || t.is_punct('}'));
        let end = close_paren(toks, i + 1);
        let stmt_tail = match toks.get(end) {
            Some(t) => t.is_punct(';'),
            None => true,
        };
        if !(stmt_head && stmt_tail) {
            out.push(finding(
                "O01",
                toks[i].line,
                format!(
                    "obs recording call `{}` used in expression position: \
                     instrumentation is advisory and its result must never \
                     flow into program state — write it as a bare statement \
                     (`..{}(..);`), gating on `obs.enabled()` when needed",
                    toks[i].text, toks[i].text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A00 — allowlist hygiene + suppression
// ---------------------------------------------------------------------------

pub fn check_allow_directives(allows: &[AllowDirective]) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows {
        if a.rules.is_empty() {
            out.push(finding(
                "A00",
                a.line,
                "malformed `// lint: allow(...)` directive: no rule names",
            ));
            continue;
        }
        for r in &a.rules {
            if !RULES.contains(&r.as_str()) || r == "A00" {
                out.push(finding(
                    "A00",
                    a.line,
                    format!("`// lint: allow({r})` names an unknown rule"),
                ));
            }
        }
        if a.reason.trim().len() < 3 {
            out.push(finding(
                "A00",
                a.line,
                format!(
                    "`// lint: allow({})` has no reason: suppressions must \
                     say why the site is safe (`// lint: allow(RULE) — reason`)",
                    a.rules.join(", ")
                ),
            ));
        }
    }
    out
}

/// Drop findings covered by a well-formed allow on the same or previous
/// line. Malformed (reason-less) allows never suppress.
pub fn apply_allows(findings: Vec<Finding>, allows: &[AllowDirective]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|a| {
                a.reason.trim().len() >= 3
                    && a.rules.iter().any(|r| r == f.rule)
                    && (a.line == f.line || a.line + 1 == f.line)
            })
        })
        .collect()
}
