//! Fixture suite: each rule must fire at the expected `file:line`, every
//! well-formed allowlist comment must suppress, and the reason-less
//! allowlist form must itself be rejected.
//!
//! Fixtures live under `tests/fixtures/` — a path the workspace walk
//! skips (they contain deliberately bad code), so they are only ever
//! linted here, under an explicitly chosen policy.

use dba_analysis::{lint_source, policy};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lint `name` under the policy of a representative workspace path and
/// compare (rule, line) pairs exactly — extra findings are as much a bug
/// as missing ones.
fn assert_findings(name: &str, policy_path: &str, expected: &[(&str, u32)]) {
    let src = fixture(name);
    let pol = policy::policy_for(Path::new(policy_path))
        .unwrap_or_else(|| panic!("policy path {policy_path} is skipped"));
    let got: Vec<(String, u32)> = lint_source(&src, &pol)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();
    let want: Vec<(String, u32)> = expected.iter().map(|(r, l)| (r.to_string(), *l)).collect();
    assert_eq!(
        got, want,
        "findings mismatch for {name} under {policy_path}"
    );
}

#[test]
fn d01_fires_in_result_affecting_crates() {
    assert_findings(
        "d01.rs",
        "crates/core/src/fixture.rs",
        &[("D01", 13), ("D01", 20), ("D01", 27)],
    );
}

#[test]
fn d01_is_scoped_out_of_non_result_crates() {
    // Same code under dba-engine (not result-affecting): no findings.
    assert_findings("d01.rs", "crates/engine/src/fixture.rs", &[]);
}

#[test]
fn d02_fires_in_deterministic_crates() {
    assert_findings(
        "d02.rs",
        "crates/core/src/fixture.rs",
        &[("D02", 8), ("D02", 13), ("D02", 18), ("D02", 24)],
    );
}

#[test]
fn d02_is_exempt_in_bench() {
    assert_findings("d02.rs", "crates/bench/src/bin/fixture.rs", &[]);
}

#[test]
fn d02_fires_in_backend_business_logic() {
    // dba-backend stays under D02: the raw Instant::now in operator code
    // fires, while the clock-seam form with its reasoned allow (the shape
    // of crates/backend/src/clock.rs) is suppressed.
    assert_findings(
        "d02_backend.rs",
        "crates/backend/src/measured.rs",
        &[("D02", 9)],
    );
}

#[test]
fn d03_fires_everywhere() {
    let expected = &[("D03", 6), ("D03", 11), ("D03", 16)];
    assert_findings("d03.rs", "crates/engine/src/fixture.rs", expected);
    // D03 has no crate exemption — bench binaries order floats too.
    assert_findings("d03.rs", "crates/bench/src/bin/fixture.rs", expected);
}

#[test]
fn c01_fires_on_raw_locks_and_live_guards() {
    assert_findings(
        "c01.rs",
        "crates/safety/src/fixture.rs",
        &[("C01", 22), ("C01", 28)],
    );
}

#[test]
fn v01_fires_on_marker_and_mutation_violations() {
    assert_findings(
        "v01.rs",
        "crates/storage/src/catalog.rs",
        &[("V01", 23), ("V01", 28)],
    );
}

#[test]
fn v01_is_scoped_to_versioned_files() {
    // The same source under a non-versioned file: no findings.
    assert_findings("v01.rs", "crates/storage/src/index.rs", &[]);
}

/// Run the full cross-file pipeline over pretend workspace paths and
/// compare (file, rule, line) triples exactly. The graph rules (G01–G04)
/// only exist at this layer — `lint_source` cannot see across functions.
fn assert_graph_findings(files: &[(&str, &str)], expected: &[(&str, &str, u32)]) {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(path, name)| ((*path).to_string(), fixture(name)))
        .collect();
    let got: Vec<(String, String, u32)> = dba_analysis::analyze_sources(&sources)
        .into_iter()
        .map(|d| (d.file, d.rule.to_string(), d.line))
        .collect();
    let want: Vec<(String, String, u32)> = expected
        .iter()
        .map(|(f, r, l)| (f.to_string(), r.to_string(), *l))
        .collect();
    assert_eq!(got, want, "graph findings mismatch for {files:?}");
}

#[test]
fn g01_taints_reachable_sources_in_unscoped_crates() {
    // digest() iterates a HashMap and stamp() reads Instant::now(); both
    // are reachable from an Advisor impl, so G01 fires even though the
    // bench policy scopes the local D01/D02 rules out. unreachable_scan()
    // has the same hash iteration but no path from an entry: silent.
    assert_graph_findings(
        &[("crates/bench/src/bin/fixture.rs", "g01.rs")],
        &[
            ("crates/bench/src/bin/fixture.rs", "G01", 19),
            ("crates/bench/src/bin/fixture.rs", "G01", 26),
        ],
    );
}

#[test]
fn g01_taint_crosses_crates() {
    // Entry in dba-core, unordered iteration in dba-engine, linked by a
    // `dba_engine::summarize(..)` path call.
    assert_graph_findings(
        &[
            ("crates/core/src/fixture_a.rs", "g01_cross_a.rs"),
            ("crates/engine/src/fixture_b.rs", "g01_cross_b.rs"),
        ],
        &[("crates/engine/src/fixture_b.rs", "G01", 10)],
    );
}

#[test]
fn g01_needs_an_entry_point() {
    // The source half alone has no Advisor impl: nothing is reachable,
    // and local D01 is scoped out of dba-engine — no findings.
    assert_graph_findings(&[("crates/engine/src/fixture_b.rs", "g01_cross_b.rs")], &[]);
}

#[test]
fn g02_flags_lock_cycles_and_guards_across_locking_calls() {
    // ab() orders a→b while ba() orders b→a (cycle, reported at the first
    // witness), and guard_across_call() holds the `a` guard across a call
    // whose callee locks `b`. allowed() is the same shape, suppressed.
    assert_graph_findings(
        &[("crates/safety/src/fixture.rs", "g02.rs")],
        &[
            ("crates/safety/src/fixture.rs", "G02", 20),
            ("crates/safety/src/fixture.rs", "G02", 32),
        ],
    );
}

#[test]
fn g03_fires_on_raw_planner_in_pricing_crates() {
    // Token-local rule, so `lint_source` sees it — including the cfg(test)
    // site, which G03 deliberately does not strip.
    assert_findings(
        "g03.rs",
        "crates/safety/src/fixture.rs",
        &[("G03", 6), ("G03", 20)],
    );
}

#[test]
fn g03_is_scoped_to_pricing_crates() {
    assert_findings("g03.rs", "crates/core/src/fixture.rs", &[]);
}

#[test]
fn g04_flags_wrappers_that_mutate_without_a_bump_path() {
    // wrapper_add() reaches the mutation through raw_add() with no bump
    // anywhere on the path; good_wrapper() routes through the marked
    // tracked_add() and stays clean; allowed_wrapper() is suppressed.
    assert_graph_findings(
        &[("crates/storage/src/catalog.rs", "g04.rs")],
        &[("crates/storage/src/catalog.rs", "G04", 26)],
    );
}

#[test]
fn o01_fires_on_expression_position_obs_calls() {
    // Binding, trailing-expression, and call-as-argument sites fire; bare
    // statements, the `enabled()` gate, a non-obs receiver sharing a
    // method name, and the reasoned allow stay silent.
    assert_findings(
        "o01.rs",
        "crates/session/src/fixture.rs",
        &[("O01", 11), ("O01", 16), ("O01", 20)],
    );
}

#[test]
fn o01_applies_in_bench_binaries_too() {
    // Unlike D02, O01 has no harness exemption: a fig binary consuming an
    // obs result is as much a hazard as a core crate doing it.
    assert_findings(
        "o01.rs",
        "crates/bench/src/bin/fixture.rs",
        &[("O01", 11), ("O01", 16), ("O01", 20)],
    );
}

#[test]
fn well_formed_allows_suppress() {
    assert_findings("allow_ok.rs", "crates/core/src/fixture.rs", &[]);
}

#[test]
fn reasonless_allows_are_rejected_and_do_not_suppress() {
    assert_findings(
        "allow_bad.rs",
        "crates/core/src/fixture.rs",
        &[
            ("A00", 6),
            ("D01", 7),
            ("A00", 11),
            ("D01", 12),
            ("A00", 16),
            ("A00", 20),
        ],
    );
}

#[test]
fn test_context_files_only_get_allow_hygiene() {
    // A test-context path: rule findings are skipped, malformed allow
    // directives are still rejected.
    let src = fixture("allow_bad.rs");
    let pol = policy::policy_for(Path::new("tests/integration.rs")).unwrap();
    assert!(pol.is_test);
    let got: Vec<_> = lint_source(&src, &pol)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(got, vec![("A00", 6), ("A00", 11), ("A00", 16), ("A00", 20)]);
}
