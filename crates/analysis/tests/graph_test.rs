//! Symbol-table / call-graph unit tests. Two properties matter most:
//! resolution through trait impls works (dyn dispatch fans out to every
//! impl, so taint is never lost behind a trait object), and ambiguous
//! method names stay conservative — no edge beats a wrong edge.

use dba_analysis::file_models;
use dba_analysis::graph::Model;

fn model_of(files: &[(&str, &str)]) -> Model {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
        .collect();
    let models = file_models(&sources);
    Model::build(&models)
}

#[test]
fn trait_impl_methods_fan_out_from_dyn_receivers() {
    let m = model_of(&[
        (
            "crates/core/src/advisor.rs",
            "pub trait Advisor { fn go(&mut self); }\n\
             pub fn drive(a: &mut dyn Advisor) -> u64 {\n    a.go()\n}\n",
        ),
        (
            "crates/core/src/impls.rs",
            "pub struct Alpha;\nimpl Advisor for Alpha { fn go(&mut self) {} }\n\
             pub struct Beta;\nimpl Advisor for Beta { fn go(&mut self) {} }\n",
        ),
    ]);
    // The dyn call resolves to *every* impl of the trait.
    assert!(m.has_edge("dba-core::drive", "Alpha::go"));
    assert!(m.has_edge("dba-core::drive", "Beta::go"));
}

#[test]
fn ambiguous_method_names_get_no_edge() {
    let m = model_of(&[(
        "crates/core/src/amb.rs",
        "pub struct A;\nimpl A { pub fn score(&self) -> u64 { 1 } }\n\
         pub struct B;\nimpl B { pub fn score(&self) -> u64 { 2 } }\n\
         pub struct Holder { inner: u64 }\n\
         impl Holder {\n    pub fn pick(&self) -> u64 {\n        self.inner.score()\n    }\n}\n",
    )]);
    // Two candidates named `score`, receiver type unknown: resolution must
    // refuse to guess rather than fabricate an edge.
    assert!(!m
        .edges_named()
        .iter()
        .any(|(a, b)| a.ends_with("Holder::pick") && b.contains("score")));
}

#[test]
fn typed_receivers_disambiguate_what_unknown_receivers_cannot() {
    let m = model_of(&[(
        "crates/core/src/typed.rs",
        "pub struct A;\nimpl A { pub fn score(&self) -> u64 { 1 } }\n\
         pub struct B;\nimpl B { pub fn score(&self) -> u64 { 2 } }\n\
         pub fn pick(x: &A) -> u64 {\n    x.score()\n}\n",
    )]);
    assert!(m.has_edge("dba-core::pick", "A::score"));
    assert!(!m.has_edge("dba-core::pick", "B::score"));
}

#[test]
fn cross_crate_suffix_paths_resolve() {
    let m = model_of(&[
        (
            "crates/core/src/caller.rs",
            "pub fn entry() -> u64 {\n    dba_engine::summarize(1)\n}\n",
        ),
        (
            "crates/engine/src/callee.rs",
            "pub fn summarize(x: u64) -> u64 {\n    x\n}\n",
        ),
    ]);
    assert!(m.has_edge("dba-core::entry", "dba-engine::summarize"));
}

#[test]
fn test_only_candidates_are_invisible_to_production_callers() {
    let m = model_of(&[(
        "crates/core/src/prod.rs",
        "pub fn entry() -> u64 {\n    helper()\n}\n\
         pub fn helper() -> u64 {\n    0\n}\n\
         #[cfg(test)]\nmod tests {\n    pub fn helper() -> u64 {\n        1\n    }\n}\n",
    )]);
    let edges = m.edges_named();
    // The production call binds the production helper, not the cfg(test)
    // twin — and the twin must not make the name look ambiguous.
    assert!(edges
        .iter()
        .any(|(a, b)| a == "dba-core::entry" && b == "dba-core::helper"));
    assert!(!edges
        .iter()
        .any(|(a, b)| a == "dba-core::entry" && b.contains("tests")));
}
