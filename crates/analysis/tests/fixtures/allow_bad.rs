//! Allowlist fixture (malformed): reason-less and unknown-rule forms are
//! themselves findings (A00), and a reason-less allow does NOT suppress.
use std::collections::HashMap;

fn unjustified(m: &HashMap<u64, f64>) -> Vec<f64> {
    // lint: allow(D01)
    m.values().copied().collect()
}

fn separator_but_no_reason(m: &HashMap<u64, f64>) -> Vec<f64> {
    // lint: allow(D01) —
    m.values().copied().collect()
}

fn unknown_rule() {
    // lint: allow(Z99) — there is no rule Z99
}

fn empty_rule_list() {
    // lint: allow()
}
