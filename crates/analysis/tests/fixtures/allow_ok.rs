//! Allowlist fixture (well-formed): every suppression carries a reason,
//! so none of these sites produce findings under the dba-core policy.
use std::collections::HashMap;

// Directive on the line above the finding.
fn justified_iteration(m: &HashMap<u64, f64>) -> Vec<f64> {
    // lint: allow(D01) — caller sorts; order cannot reach records
    m.values().copied().collect()
}

// Directive on the finding's own line.
fn justified_ordering(v: &mut Vec<f64>) {
    v.retain(|x| x.is_finite());
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // lint: allow(D03) — pruned to finite above
}

// One directive may name several rules.
fn multi_rule(m: &HashMap<u64, f64>) -> Vec<f64> {
    // lint: allow(D01, D03) — diagnostic dump, never fed back into tuning
    m.values().copied().collect()
}
