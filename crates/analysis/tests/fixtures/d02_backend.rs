//! D02 fixture for the measured backend: the clock-injection seam is the
//! one sanctioned wall-clock boundary; a raw read in operator business
//! logic still fires under the dba-backend policy.
use std::time::Instant;

// BAD: raw wall-clock read in operator code — timing must flow through
// the injected ClockSource, or scripted-clock determinism breaks.
fn bad_inline_timing() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

// GOOD: the sanctioned seam — the single place the real wall-clock enters,
// with a written reason (mirrors crates/backend/src/clock.rs).
fn sanctioned_clock_source() -> f64 {
    // lint: allow(D02) — the injectable clock seam: the one sanctioned wall-clock read
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
