//! G04 fixture: a wrapper that reaches a Catalog mutation through a
//! delegate with no bump on the path. V01 only sees the delegate's own
//! body; the wrapper is invisible to it and needs the call graph.

pub struct Catalog {
    indexes: u64,
    version: u64,
}

impl Catalog {
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    // bumps: catalog_version
    pub fn tracked_add(&mut self, n: u64) {
        self.indexes += n;
        self.bump_version();
    }

    // lint: allow(V01) — fixture: the unmarked delegate G04 sees through
    fn raw_add(&mut self, n: u64) {
        self.indexes += n;
    }

    pub fn wrapper_add(&mut self, n: u64) {
        self.raw_add(n);
    }

    pub fn good_wrapper(&mut self, n: u64) {
        self.tracked_add(n);
    }

    // lint: allow(G04) — fixture: caller bumps at the round boundary
    pub fn allowed_wrapper(&mut self, n: u64) {
        self.raw_add(n);
    }
}
