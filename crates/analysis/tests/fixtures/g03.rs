//! G03 fixture: raw Planner construction inside a pricing-discipline
//! crate; fires in production *and* cfg(test) code (pricing in tests
//! around the what-if service validates the wrong path).

pub fn price(q: u64) -> u64 {
    let planner = Planner::new(q);
    planner.plan(q)
}

pub fn execution(q: u64) -> u64 {
    // lint: allow(G03) — fixture: execution path, plans feed the executor
    let planner = Planner::new(q);
    planner.plan(q)
}

#[cfg(test)]
mod tests {
    #[test]
    fn prices_around_the_service() {
        let planner = Planner::new(1);
        assert_eq!(planner.plan(1), 0);
    }
}
