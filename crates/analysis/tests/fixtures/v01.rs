//! V01 fixture: version-bump discipline.
//! Linted under the dba-storage catalog.rs policy (tracked state:
//! `self.indexes` / `self.drift`; bump via `bump_version`).

struct Catalog {
    indexes: Vec<u64>,
    versions: Vec<u64>,
}

impl Catalog {
    fn bump_version(&mut self, t: usize) {
        self.versions[t] += 1;
    }

    // bumps: catalog_version
    fn good_create(&mut self, id: u64) {
        self.indexes.push(id);
        self.bump_version(0);
    }

    // BAD: marked as bumping, body never does — caches go stale silently.
    // bumps: catalog_version
    fn bad_marked_but_never_bumps(&mut self, id: u64) {
        self.indexes.push(id);
    }

    // BAD: mutates the index set with neither marker nor bump.
    fn bad_unmarked_mutator(&mut self, id: u64) {
        self.indexes.retain(|&x| x != id);
    }

    // GOOD: reads don't need versions.
    fn read_only(&self) -> usize {
        self.indexes.len()
    }
}
