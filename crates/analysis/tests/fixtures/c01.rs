//! C01 fixture: lock hygiene.
//! Linted under the dba-safety policy.
use std::sync::{Arc, Mutex, MutexGuard};

trait FakeAdvisor {
    fn before_round(&mut self, v: u64);
}

struct Shared {
    inner: Arc<Mutex<u64>>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, u64> {
        // lint: allow(C01) — fixture stand-in for the SafetyLedger wrapper
        self.inner.lock().unwrap()
    }
}

// BAD: raw lock().unwrap() outside the wrapper.
fn bad_raw_lock(s: &Shared) -> u64 {
    *s.inner.lock().unwrap()
}

// BAD: guard lexically live across the advisor call.
fn bad_guard_across_advisor(s: &Shared, advisor: &mut dyn FakeAdvisor) {
    let g = s.lock();
    advisor.before_round(*g);
}

// GOOD: the guard dies inside the block; only plain data crosses.
fn good_scoped(s: &Shared, advisor: &mut dyn FakeAdvisor) {
    let v = {
        let g = s.lock();
        *g
    };
    advisor.before_round(v);
}

// GOOD: explicit drop before the call.
fn good_dropped(s: &Shared, advisor: &mut dyn FakeAdvisor) {
    let g = s.lock();
    let v = *g;
    drop(g);
    advisor.before_round(v);
}
