//! D03 fixture: NaN-unsafe float ordering.
//! Linted under the dba-engine policy (D03 applies in every crate).

// BAD: one NaN aborts the whole sort.
fn bad_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

// BAD: expect() is the same panic with a nicer epitaph.
fn bad_max(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).expect("finite"))
}

// BAD: nested arguments don't confuse the paren matcher.
fn bad_keyed(v: &mut [(u32, f64)]) {
    v.sort_by(|a, b| (a.1 / 2.0).partial_cmp(&(b.1 / 2.0)).unwrap().then(a.0.cmp(&b.0)));
}

// GOOD: the total-order comparison, with non-finite pruning.
fn good_total(v: &mut Vec<f64>) {
    v.retain(|x| x.is_finite());
    v.sort_by(|a, b| a.total_cmp(b));
}

// GOOD: propagating the Option is honest about partiality.
fn good_option(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}
