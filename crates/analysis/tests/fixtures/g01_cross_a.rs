//! G01 cross-crate fixture, entry half: the Advisor impl lives in a
//! result-affecting crate and calls across into dba-engine.

pub struct Tuner;

impl Advisor for Tuner {
    fn after_round(&mut self) -> u64 {
        dba_engine::summarize(7)
    }
}
