//! G01 fixture: determinism-taint sources reachable from an Advisor impl
//! in a crate the local D01/D02 rules are scoped out of (bench policy).

use std::collections::HashMap;
use std::time::Instant;

pub struct Reporter {
    samples: HashMap<u64, u64>,
}

impl Advisor for Reporter {
    fn before_round(&mut self) -> u64 {
        digest(&self.samples) + stamp() + allowed(&self.samples)
    }
}

pub fn digest(m: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (k, v) in m.iter() {
        acc ^= k.wrapping_mul(31).wrapping_add(*v);
    }
    acc
}

pub fn stamp() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}

pub fn unreachable_scan(m: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for v in m.values() {
        acc += v;
    }
    acc
}

pub fn allowed(m: &HashMap<u64, u64>) -> u64 {
    // lint: allow(G01) — fixture: xor-fold is order-insensitive here
    m.iter().map(|(k, v)| k ^ v).fold(0, |a, b| a ^ b)
}
