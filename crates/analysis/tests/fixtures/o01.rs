//! O01 fixture: obs recording calls must stand alone as statements.
//!
//! Bad: binding the call's result, leaving it as a trailing expression,
//! passing it as an argument. Good: bare statements (direct field or
//! `obs()` accessor receiver), the `enabled()` gate, and a suppressed
//! site with a written reason.

fn consume<T>(_: T) {}

fn bad_binding(obs: &dba_obs::Obs) {
    let v = obs.histogram("latency", 0.5);
    consume(v);
}

fn bad_trailing(obs: &dba_obs::Obs) {
    obs.counter("hits", 1)
}

fn bad_argument(obs: &dba_obs::Obs) {
    consume(obs.event("x", vec![]));
}

fn good_statements(obs: &dba_obs::Obs) {
    obs.span_enter("round");
    obs.counter("hits", 1);
    obs.set_sim_now(now);
    obs.span_exit("round");
}

fn good_accessor(s: &Session) {
    if s.session.obs().enabled() {
        s.session.obs().event("window", vec![]);
    }
    s.session.obs().flush();
}

fn unrelated_receiver(metrics: &Metrics) {
    // A different receiver sharing a method name is not ours to police.
    let total = metrics.counter("hits", 1);
    consume(total);
}

fn allowed(obs: &dba_obs::Obs) {
    // lint: allow(O01) — fixture exercising the suppression path
    let _ = obs.counter("hits", 1);
}
