//! G01 cross-crate fixture, source half: the hash iteration lives in
//! dba-engine, where local D01 is scoped out.

use std::collections::HashMap;

pub fn summarize(seed: u64) -> u64 {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(seed, seed.wrapping_mul(3));
    let mut out = 0;
    for (k, v) in m.iter() {
        out ^= k.wrapping_add(*v);
    }
    out
}
