//! D02 fixture: wall-clock / OS-entropy reads.
//! Linted under the dba-core policy (deterministic crate); the same code
//! under the dba-bench policy produces no findings.
use std::time::{Instant, SystemTime};

// BAD: wall-clock read.
fn bad_instant() -> Instant {
    Instant::now()
}

// BAD: epoch read.
fn bad_system_time() -> SystemTime {
    SystemTime::now()
}

// BAD: OS-seeded rng.
fn bad_thread_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

// BAD: convenience entropy.
fn bad_random() -> u64 {
    rand::random()
}

// GOOD: seeded, replayable randomness.
fn good_seeded(seed: u64) -> rand::StdRng {
    rand::SeedableRng::seed_from_u64(seed)
}
