//! D01 fixture: nondeterministic iteration over hash containers.
//! Linted under the dba-core policy (result-affecting crate).
use std::collections::{HashMap, HashSet};

struct Registry {
    by_id: HashMap<u64, String>,
}

fn emit(_s: &str) {}

// BAD: for-loop over a map field, order reaches the emit sink.
fn bad_for_loop(r: &Registry) {
    for (_k, v) in &r.by_id {
        emit(v);
    }
}

// BAD: keys() collected into an order-preserving Vec, no sort.
fn bad_chain(m: &HashMap<u64, f64>) -> Vec<u64> {
    m.keys().copied().collect()
}

// BAD: for-loop over a locally built set.
fn bad_set() {
    let mut s = HashSet::new();
    s.insert(3u32);
    for x in &s {
        emit(&x.to_string());
    }
}

// GOOD: sorted on the next statement of the chain.
fn good_sorted(m: &HashMap<u64, f64>) -> Vec<u64> {
    let mut v: Vec<u64> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

// GOOD: order-insensitive reduction.
fn good_sum(m: &HashMap<u64, u64>) -> u64 {
    m.values().sum()
}

// GOOD: collected back into an unordered map (order cannot escape).
fn good_remap(m: &HashMap<u64, u64>) -> HashMap<u64, u64> {
    m.iter().map(|(&k, &v)| (k, v * 2)).collect::<HashMap<_, _>>()
}
