//! G02 fixture: a lock-order cycle between two mutexes and a guard held
//! across a call whose callee acquires a lock. Lock calls return guards
//! directly (parking_lot style, no `.unwrap()`) so C01's raw-lock pattern
//! stays out of the picture and the findings here are purely G02.

use std::sync::MutexGuard;

pub struct Pair {
    a: Lock,
    b: Lock,
}

impl Pair {
    pub fn lock_a(&self) -> MutexGuard<'_, u64> {
        self.a.lock()
    }

    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }

    pub fn guard_across_call(&self) -> u64 {
        let ga = self.lock_a();
        let x = self.total();
        drop(ga);
        x
    }

    pub fn allowed(&self) -> u64 {
        let ga = self.lock_a();
        // lint: allow(G02) — fixture: callee verified lock-free at runtime
        let x = self.total();
        drop(ga);
        x
    }

    pub fn total(&self) -> u64 {
        *self.b.lock()
    }
}
