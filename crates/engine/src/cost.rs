//! The cost model: maps physical work (pages, rows, probes, sorts) to
//! simulated seconds.
//!
//! One model is shared by the optimiser (fed *estimated* cardinalities) and
//! the executor (fed *actual* cardinalities), so any estimate/actual time
//! divergence is attributable to cardinality error alone — mirroring a real
//! system where the cost formulas are fixed but their inputs are wrong.
//!
//! The physical constants approximate the paper's testbed (10K RPM disks,
//! cold buffer caches — §V-A reports cold runs): sequential page reads at
//! ~80MB/s, expensive random page reads, and per-row CPU work. Because our
//! row counts are scaled down 100× from the paper's scale factors (see
//! DESIGN.md), all produced durations are multiplied by [`PAPER_TIME_SCALE`]
//! so reported magnitudes land in the paper's range.

use dba_common::SimSeconds;
use dba_storage::PAGE_BYTES;
use serde::{Deserialize, Serialize};

/// Row-count compensation factor: the workloads generate 1/100th of the
/// paper's rows per scale factor, so simulated durations are scaled 100×.
pub const PAPER_TIME_SCALE: f64 = 100.0;

/// Probes after which index-nested-loop descents hit cached upper levels.
pub const INL_WARM_PROBES: u64 = 1000;

/// Cost model constants. All `*_s` values are seconds of simulated time for
/// one unit of the given work, **before** the global `time_scale`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// One sequentially-read 8KB page.
    pub seq_page_s: f64,
    /// One randomly-read page (seek-dominated).
    pub rand_page_s: f64,
    /// CPU to produce/filter one row in a scan.
    pub cpu_row_s: f64,
    /// CPU to insert one row into a hash table.
    pub hash_build_row_s: f64,
    /// CPU to probe a hash table once.
    pub hash_probe_row_s: f64,
    /// CPU per key comparison in a sort (multiplied by n·log2 n).
    pub sort_cmp_s: f64,
    /// One B-tree descent (root-to-leaf traversal, cached upper levels).
    pub btree_descent_s: f64,
    /// Per-row cost of aggregation / group-by.
    pub agg_row_s: f64,
    /// Pages written when materialising index leaves, per page.
    pub write_page_s: f64,
    /// Global multiplier (see [`PAPER_TIME_SCALE`]).
    pub time_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_scale()
    }
}

impl CostModel {
    /// Constants calibrated for the scaled-down benchmark datasets so that
    /// per-round totals land in the paper's reported ranges.
    pub fn paper_scale() -> Self {
        CostModel {
            seq_page_s: 1.0e-4,
            rand_page_s: 2.5e-3,
            cpu_row_s: 2.0e-7,
            hash_build_row_s: 5.0e-7,
            hash_probe_row_s: 2.5e-7,
            sort_cmp_s: 3.0e-8,
            btree_descent_s: 5.0e-5,
            agg_row_s: 3.0e-7,
            write_page_s: 2.0e-4,
            time_scale: PAPER_TIME_SCALE,
        }
    }

    /// Unscaled constants (useful for unit tests asserting exact arithmetic).
    pub fn unit_scale() -> Self {
        CostModel {
            time_scale: 1.0,
            ..CostModel::paper_scale()
        }
    }

    #[inline]
    fn t(&self, secs: f64) -> SimSeconds {
        SimSeconds::new(secs * self.time_scale)
    }

    /// Full sequential scan of `pages` heap/leaf pages emitting `rows` rows
    /// through the filter.
    pub fn scan(&self, pages: u64, rows: u64) -> SimSeconds {
        self.t(pages as f64 * self.seq_page_s + rows as f64 * self.cpu_row_s)
    }

    /// One index seek returning `matched` rows from leaves of `leaf_row_bytes`
    /// bytes per row, plus (optionally) heap lookups for `heap_fetches` rows
    /// against a heap of `heap_pages` pages.
    ///
    /// Heap fetches use the Cardenas approximation for distinct pages
    /// touched: `P · (1 − (1 − 1/P)^k)` — fetching many rows converges to
    /// touching every page, but at random-I/O prices.
    pub fn index_seek(
        &self,
        matched: u64,
        leaf_row_bytes: u64,
        heap_fetches: u64,
        heap_pages: u64,
    ) -> SimSeconds {
        let leaf_pages = (matched * leaf_row_bytes).div_ceil(PAGE_BYTES);
        let mut secs = self.btree_descent_s
            + leaf_pages as f64 * self.seq_page_s
            + matched as f64 * self.cpu_row_s;
        if heap_fetches > 0 {
            let pages_touched = cardenas(heap_fetches, heap_pages);
            secs += pages_touched * self.rand_page_s;
        }
        self.t(secs)
    }

    /// Scan the full leaf level of an index (covering / index-only scan).
    pub fn covering_scan(&self, leaf_pages: u64, rows: u64) -> SimSeconds {
        self.t(leaf_pages as f64 * self.seq_page_s + rows as f64 * self.cpu_row_s)
    }

    /// Index nested-loop probing: `probes` B-tree descents retrieving
    /// `matched` total rows from the inner index's leaves, plus heap
    /// lookups for `heap_fetches` of them against `heap_pages`.
    ///
    /// Repeated probes warm the B-tree's upper levels: the first
    /// [`INL_WARM_PROBES`] descents pay the cold price, the rest only CPU
    /// (`btree_descent_s / 100`). Without this, a misestimated INL with a
    /// huge outer would cost thousands of times a scan; with it, the worst
    /// case is heap-fetch-bound — the ~10× regressions the paper reports
    /// (IMDb Q18), not unbounded ones.
    pub fn inl_probes(
        &self,
        probes: u64,
        matched: u64,
        leaf_row_bytes: u64,
        heap_fetches: u64,
        heap_pages: u64,
    ) -> SimSeconds {
        let leaf_pages = (matched * leaf_row_bytes).div_ceil(PAGE_BYTES);
        let cold = probes.min(INL_WARM_PROBES) as f64;
        let warm = probes.saturating_sub(INL_WARM_PROBES) as f64;
        let mut secs = cold * self.btree_descent_s
            + warm * (self.btree_descent_s / 100.0)
            + leaf_pages as f64 * self.seq_page_s
            + matched as f64 * self.cpu_row_s;
        if heap_fetches > 0 {
            let pages_touched = cardenas(heap_fetches, heap_pages);
            secs += pages_touched * self.rand_page_s;
        }
        self.t(secs)
    }

    /// Hash join CPU: build over `build_rows`, probe with `probe_rows`,
    /// materialise `output_rows` result tuples. Input access costs are
    /// charged separately. The output term is what makes join-cardinality
    /// explosions (skewed foreign keys) *observable* in execution time.
    pub fn hash_join(&self, build_rows: u64, probe_rows: u64, output_rows: u64) -> SimSeconds {
        self.t(build_rows as f64 * self.hash_build_row_s
            + probe_rows as f64 * self.hash_probe_row_s
            + output_rows as f64 * self.cpu_row_s)
    }

    /// Aggregation over `rows` input rows.
    pub fn aggregate(&self, rows: u64) -> SimSeconds {
        self.t(rows as f64 * self.agg_row_s)
    }

    /// Cost of building an index: scan the heap, sort the keys, write the
    /// leaf pages.
    pub fn index_build(&self, heap_pages: u64, rows: u64, index_bytes: u64) -> SimSeconds {
        let n = rows.max(2) as f64;
        let sort = n * n.log2() * self.sort_cmp_s;
        let write_pages = index_bytes.div_ceil(PAGE_BYTES);
        self.t(heap_pages as f64 * self.seq_page_s
            + n * self.cpu_row_s
            + sort
            + write_pages as f64 * self.write_page_s)
    }

    /// Cost model's own estimate of a full table scan given page/row counts
    /// (identical formula to [`Self::scan`]; exposed for reference-time
    /// computations).
    pub fn full_scan_reference(&self, heap_pages: u64, rows: u64) -> SimSeconds {
        self.scan(heap_pages, rows)
    }

    /// Cost of maintaining one secondary index through a round of data
    /// change, applied refresh-stream style: the round's deltas are sorted
    /// and bulk-merged into the leaf level (how TPC-H RF1/RF2 batches are
    /// applied), so descents amortise to one per *dirtied leaf page*
    /// (Cardenas over the index's `leaf_pages`) rather than one per row;
    /// each touched row version still pays CPU merge work. An update is a
    /// delete+insert, hence ×2.
    ///
    /// This is the `C_maint` term of the HTAP follow-up's reward
    /// `r_t(i) = G_t − C_cre − C_maint`: the per-index price of churn that
    /// a NoIndex configuration never pays.
    pub fn index_maintenance(
        &self,
        inserted: u64,
        updated: u64,
        deleted: u64,
        leaf_pages: u64,
    ) -> SimSeconds {
        let touched = inserted + 2 * updated + deleted;
        if touched == 0 {
            return SimSeconds::ZERO;
        }
        let dirty_pages = cardenas(touched, leaf_pages.max(1)).max(1.0);
        self.t(dirty_pages * (self.btree_descent_s + self.write_page_s)
            + touched as f64 * self.cpu_row_s)
    }
}

/// Cardenas' formula for distinct pages touched when fetching `k` random
/// rows from a heap of `p` pages.
fn cardenas(k: u64, p: u64) -> f64 {
    if p == 0 {
        return 0.0;
    }
    let p = p as f64;
    let k = k as f64;
    p * (1.0 - (1.0 - 1.0 / p).powf(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_charges_pages_and_rows() {
        let m = CostModel::unit_scale();
        let t = m.scan(100, 10_000);
        let expect = 100.0 * m.seq_page_s + 10_000.0 * m.cpu_row_s;
        assert!((t.secs() - expect).abs() < 1e-12);
    }

    #[test]
    fn seek_is_cheap_for_selective_covering_probe() {
        let m = CostModel::unit_scale();
        let seek = m.index_seek(10, 16, 0, 1000);
        let scan = m.scan(1000, 100_000);
        assert!(seek.secs() < scan.secs() / 50.0);
    }

    #[test]
    fn seek_with_many_heap_fetches_exceeds_scan() {
        let m = CostModel::unit_scale();
        // Fetch 50k rows from a 1000-page heap: Cardenas converges to all
        // pages at random prices, which must be worse than a sequential scan.
        let seek = m.index_seek(50_000, 16, 50_000, 1000);
        let scan = m.scan(1000, 100_000);
        assert!(
            seek.secs() > scan.secs(),
            "unselective index plan should lose: seek={} scan={}",
            seek.secs(),
            scan.secs()
        );
    }

    #[test]
    fn cardenas_limits() {
        assert_eq!(cardenas(0, 100), 0.0);
        assert!(cardenas(1, 100) <= 1.0 + 1e-9);
        // Fetching far more rows than pages touches ~every page.
        assert!(cardenas(100_000, 100) > 99.0);
        // Monotone in k.
        assert!(cardenas(10, 100) < cardenas(20, 100));
    }

    #[test]
    fn index_build_grows_with_rows() {
        let m = CostModel::unit_scale();
        let small = m.index_build(100, 10_000, 200_000);
        let large = m.index_build(1000, 100_000, 2_000_000);
        assert!(large.secs() > small.secs() * 5.0);
    }

    #[test]
    fn time_scale_multiplies_everything() {
        let unit = CostModel::unit_scale();
        let scaled = CostModel::paper_scale();
        let a = unit.scan(10, 100).secs();
        let b = scaled.scan(10, 100).secs();
        assert!((b / a - PAPER_TIME_SCALE).abs() < 1e-9);
    }

    #[test]
    fn hash_join_and_aggregate_are_linear() {
        let m = CostModel::unit_scale();
        assert!(
            (m.hash_join(100, 200, 50).secs() * 2.0 - m.hash_join(200, 400, 100).secs()).abs()
                < 1e-12
        );
        assert!((m.aggregate(100).secs() * 3.0 - m.aggregate(300).secs()).abs() < 1e-12);
    }

    #[test]
    fn index_maintenance_prices_dirty_pages_and_merge_cpu() {
        let m = CostModel::unit_scale();
        assert_eq!(m.index_maintenance(0, 0, 0, 100).secs(), 0.0);
        let light = m.index_maintenance(10, 0, 0, 1000);
        let heavy = m.index_maintenance(10_000, 0, 0, 1000);
        assert!(light.secs() > 0.0);
        assert!(heavy.secs() > light.secs() * 10.0);
        // An update is a delete+insert: more page touches than an insert.
        let ins = m.index_maintenance(100, 0, 0, 10_000);
        let upd = m.index_maintenance(0, 100, 0, 10_000);
        assert!(upd.secs() > ins.secs() * 1.5);
        // Bulk application saturates: touching far more rows than leaf
        // pages converges to rewriting the leaf level (plus CPU), so the
        // bill grows sublinearly past that point.
        let once = m.index_maintenance(100_000, 0, 0, 100);
        let tenfold = m.index_maintenance(1_000_000, 0, 0, 100);
        assert!(tenfold.secs() < once.secs() * 10.0);
        // A larger index dirties more pages for the same batch.
        assert!(
            m.index_maintenance(10_000, 0, 0, 10_000).secs()
                > m.index_maintenance(10_000, 0, 0, 100).secs()
        );
    }

    #[test]
    fn hash_join_charges_output_materialisation() {
        let m = CostModel::unit_scale();
        let small = m.hash_join(1000, 1000, 100);
        let exploded = m.hash_join(1000, 1000, 1_000_000);
        assert!(exploded.secs() > small.secs() * 10.0);
    }
}
