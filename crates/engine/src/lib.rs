//! Query model, physical plans, cost model and executor.
//!
//! This crate is the "DBMS execution half" of the substrate: given a
//! [`Plan`] (produced by `dba-optimizer` from *estimates*), the [`Executor`]
//! runs it against real columnar data, observing **actual** cardinalities and
//! charging costs through the same [`CostModel`] the optimiser uses. The
//! simulated-seconds divergence between plan-time estimates and run-time
//! observations is therefore caused purely by cardinality misestimation —
//! the phenomenon the paper's bandit exploits and the commercial advisor
//! falls victim to.

pub mod backend;
pub mod cost;
pub mod exec;
pub mod plan;
pub mod query;

pub use backend::{simulated, BackendKind, ExecutionBackend, OpKind, OpSample};
pub use cost::{CostModel, PAPER_TIME_SCALE};
pub use exec::{AccessStats, Executor, QueryExecution};
pub use plan::{AccessMethod, JoinAlgo, JoinStep, Plan, TableAccess};
pub use query::{JoinPred, Predicate, Query, WorkloadSlice};
