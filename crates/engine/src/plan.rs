//! Physical plan representation.
//!
//! Plans are left-deep join trees: a driver table access followed by a
//! sequence of join steps, each bringing in one new table via hash join or
//! index nested-loop. The optimiser produces a [`Plan`] from estimates; the
//! executor interprets the same structure against real data.

use dba_common::{IndexId, SimSeconds, TableId};
use dba_storage::IndexDef;
use serde::{Deserialize, Serialize};

use crate::query::{JoinPred, Predicate};

/// How a table's rows are obtained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessMethod {
    /// Sequential heap scan with all local predicates applied on the fly.
    FullScan,
    /// B-tree seek: equality prefix plus optional range on the next key
    /// column; `covering` means the leaves hold every needed column so no
    /// heap fetches occur.
    IndexSeek { index: IndexId, covering: bool },
    /// Full scan of an index's leaf level (index-only scan); only valid when
    /// the index covers every needed column.
    CoveringScan { index: IndexId },
}

impl AccessMethod {
    pub fn index_id(&self) -> Option<IndexId> {
        match self {
            AccessMethod::FullScan => None,
            AccessMethod::IndexSeek { index, .. } | AccessMethod::CoveringScan { index } => {
                Some(*index)
            }
        }
    }
}

/// Access to one table, with the planner's cardinality estimate attached
/// (kept for plan explanation and regression analysis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableAccess {
    pub table: TableId,
    pub method: AccessMethod,
    /// Planner's estimate of rows emitted after local predicates.
    pub est_rows: f64,
}

/// Join algorithm for one step of the left-deep tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinAlgo {
    /// Build a hash table on the new (inner) table's filtered rows, probe
    /// with the accumulated outer relation.
    Hash,
    /// For each accumulated outer row, seek the inner index keyed on the
    /// join column.
    IndexNestedLoop,
}

/// One step of the join tree: bring in `access.table` joined on `join`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinStep {
    pub access: TableAccess,
    pub algo: JoinAlgo,
    pub join: JoinPred,
    /// Planner's estimate of the accumulated output cardinality.
    pub est_rows_out: f64,
}

/// A complete physical plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plan {
    pub driver: TableAccess,
    pub joins: Vec<JoinStep>,
    pub aggregated: bool,
    /// Planner's total estimated cost.
    pub est_cost: SimSeconds,
}

impl Plan {
    /// All indexes this plan reads, in plan order.
    pub fn indexes_used(&self) -> Vec<IndexId> {
        let mut out = Vec::new();
        if let Some(ix) = self.driver.method.index_id() {
            out.push(ix);
        }
        for step in &self.joins {
            if let Some(ix) = step.access.method.index_id() {
                if !out.contains(&ix) {
                    out.push(ix);
                }
            }
        }
        out
    }

    /// Tables accessed, driver first.
    pub fn tables(&self) -> Vec<TableId> {
        let mut out = vec![self.driver.table];
        out.extend(self.joins.iter().map(|s| s.access.table));
        out
    }
}

/// How a set of conjunctive predicates maps onto an index's key columns:
/// the longest equality prefix, an optional range on the following key
/// column, and the residual predicates that must be applied after the seek.
#[derive(Debug, Clone, PartialEq)]
pub struct SeekShape {
    /// Equality values bound to the leading key columns, in key order.
    pub eq_values: Vec<i64>,
    /// Inclusive range on the key column following the equality prefix.
    pub range: Option<(i64, i64)>,
    /// Predicates not absorbed by the seek (must be checked per row).
    pub residual: Vec<Predicate>,
}

impl SeekShape {
    /// Whether the seek narrows the leaf range at all.
    pub fn is_selective(&self) -> bool {
        !self.eq_values.is_empty() || self.range.is_some()
    }
}

/// Compute the seek shape of `preds` (all on `def.table`) against an index
/// definition. Follows classic B-tree matching: consume equality predicates
/// along the key prefix, then at most one range predicate on the next key
/// column; everything else is residual.
pub fn seek_shape(def: &IndexDef, preds: &[Predicate]) -> SeekShape {
    let mut eq_values = Vec::new();
    let mut range = None;
    let mut consumed = vec![false; preds.len()];

    for &key_col in &def.key_cols {
        // Find an equality predicate on this key column.
        if let Some(pos) = preds
            .iter()
            .position(|p| p.column.ordinal == key_col && p.is_equality())
        {
            eq_values.push(preds[pos].lo);
            consumed[pos] = true;
            continue;
        }
        // Otherwise try a range predicate on this key column, then stop.
        if let Some(pos) = preds
            .iter()
            .position(|p| p.column.ordinal == key_col && !p.is_equality())
        {
            range = Some((preds[pos].lo, preds[pos].hi));
            consumed[pos] = true;
        }
        break;
    }

    let residual = preds
        .iter()
        .zip(&consumed)
        .filter(|(_, &c)| !c)
        .map(|(p, _)| *p)
        .collect();

    SeekShape {
        eq_values,
        range,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::ColumnId;

    fn pred_eq(ord: u16, v: i64) -> Predicate {
        Predicate::eq(ColumnId::new(TableId(0), ord), v)
    }

    fn pred_rng(ord: u16, lo: i64, hi: i64) -> Predicate {
        Predicate::range(ColumnId::new(TableId(0), ord), lo, hi)
    }

    fn def(keys: Vec<u16>) -> IndexDef {
        IndexDef::new(TableId(0), keys, vec![])
    }

    #[test]
    fn seek_shape_consumes_equality_prefix() {
        let shape = seek_shape(&def(vec![2, 5]), &[pred_eq(5, 9), pred_eq(2, 3)]);
        assert_eq!(shape.eq_values, vec![3, 9]);
        assert!(shape.range.is_none());
        assert!(shape.residual.is_empty());
        assert!(shape.is_selective());
    }

    #[test]
    fn seek_shape_takes_one_range_after_prefix() {
        let shape = seek_shape(
            &def(vec![1, 2, 3]),
            &[pred_eq(1, 4), pred_rng(2, 0, 10), pred_rng(3, 5, 6)],
        );
        assert_eq!(shape.eq_values, vec![4]);
        assert_eq!(shape.range, Some((0, 10)));
        assert_eq!(shape.residual, vec![pred_rng(3, 5, 6)]);
    }

    #[test]
    fn seek_shape_stops_at_gap_in_prefix() {
        // Index on (1, 2) but predicate only on column 2: no seek possible.
        let shape = seek_shape(&def(vec![1, 2]), &[pred_eq(2, 7)]);
        assert!(shape.eq_values.is_empty());
        assert!(shape.range.is_none());
        assert_eq!(shape.residual.len(), 1);
        assert!(!shape.is_selective());
    }

    #[test]
    fn seek_shape_range_on_first_column() {
        let shape = seek_shape(&def(vec![3]), &[pred_rng(3, -5, 5), pred_eq(4, 1)]);
        assert!(shape.eq_values.is_empty());
        assert_eq!(shape.range, Some((-5, 5)));
        assert_eq!(shape.residual, vec![pred_eq(4, 1)]);
    }

    #[test]
    fn plan_indexes_used_deduplicates() {
        let plan = Plan {
            driver: TableAccess {
                table: TableId(0),
                method: AccessMethod::IndexSeek {
                    index: IndexId(3),
                    covering: false,
                },
                est_rows: 10.0,
            },
            joins: vec![JoinStep {
                access: TableAccess {
                    table: TableId(1),
                    method: AccessMethod::IndexSeek {
                        index: IndexId(3),
                        covering: true,
                    },
                    est_rows: 5.0,
                },
                algo: JoinAlgo::IndexNestedLoop,
                join: JoinPred::new(ColumnId::new(TableId(0), 0), ColumnId::new(TableId(1), 0)),
                est_rows_out: 50.0,
            }],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        };
        assert_eq!(plan.indexes_used(), vec![IndexId(3)]);
        assert_eq!(plan.tables(), vec![TableId(0), TableId(1)]);
    }
}
