//! The execution seam: [`ExecutionBackend`] abstracts *how* a physical
//! [`Plan`] is run.
//!
//! Two implementations exist. The [`Executor`] in this crate is the
//! `Simulated` backend: it evaluates predicates and joins over the real
//! column data but charges time through the [`CostModel`]. The `Measured`
//! backend (crate `dba-backend`) runs the same plans through real physical
//! operators — vectorized batch scans, a bulk-loaded B+Tree, hash /
//! index-nested-loop joins — and reports wall-clock from an injectable
//! source. Both produce the same [`QueryExecution`] shape, so reward
//! shaping, the safety ledger, and observability consume either
//! interchangeably; on identical catalog state they must agree **bit
//! exactly** on the logical fields (`result_rows`, `indexes_used`,
//! per-access `rows_out`) and differ only in time.

use std::fmt;
use std::str::FromStr;

use dba_storage::Catalog;

use crate::cost::CostModel;
use crate::exec::{Executor, QueryExecution};
use crate::plan::Plan;
use crate::query::Query;

/// Which execution backend a session runs on. Parsed from the
/// `DBA_BACKEND` env knob (`"simulated"` / `"measured"`) by the bench
/// harness and selectable via `SessionBuilder::backend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Cost-model pricing over real data (the [`Executor`]).
    #[default]
    Simulated,
    /// Real physical operators timed by an injectable clock.
    Measured,
}

impl BackendKind {
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Simulated => "simulated",
            BackendKind::Measured => "measured",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "simulated" | "sim" => Ok(BackendKind::Simulated),
            "measured" | "real" => Ok(BackendKind::Measured),
            other => Err(format!(
                "unknown backend {other:?} (expected \"simulated\" or \"measured\")"
            )),
        }
    }
}

/// Physical operator classes a backend can sample for calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    SeqScan,
    IndexSeek,
    CoveringScan,
    InlProbe,
    HashJoin,
    Aggregate,
}

impl OpKind {
    pub const ALL: [OpKind; 6] = [
        OpKind::SeqScan,
        OpKind::IndexSeek,
        OpKind::CoveringScan,
        OpKind::InlProbe,
        OpKind::HashJoin,
        OpKind::Aggregate,
    ];

    pub fn label(self) -> &'static str {
        match self {
            OpKind::SeqScan => "seq_scan",
            OpKind::IndexSeek => "index_seek",
            OpKind::CoveringScan => "covering_scan",
            OpKind::InlProbe => "inl_probe",
            OpKind::HashJoin => "hash_join",
            OpKind::Aggregate => "aggregate",
        }
    }
}

/// One operator execution paired with the work it performed: the raw
/// material for fitting [`CostModel`] constants against measured time.
///
/// `sim_s` is what the simulated cost model charges for the *same* access
/// (so divergence is computable per sample without re-running), while the
/// work counters describe what the measured operator physically did —
/// under drift these differ by design: the simulated model prices the live
/// (accounting-grown) heap, the measured operator can only touch
/// materialised rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpSample {
    pub op_index: usize,
    /// Heap or leaf pages physically touched.
    pub pages: u64,
    /// Rows pushed through the operator's CPU loop.
    pub rows: u64,
    /// B+Tree root-to-leaf descents performed.
    pub descents: u64,
    /// Hash-build input rows.
    pub build_rows: u64,
    /// Hash-probe input rows.
    pub probe_rows: u64,
    /// Rows emitted.
    pub out_rows: u64,
    /// Simulated seconds the [`CostModel`] charges for this access.
    pub sim_s: f64,
    /// Seconds observed on the backend's injected clock.
    pub measured_s: f64,
}

impl OpSample {
    pub fn op(&self) -> OpKind {
        OpKind::ALL[self.op_index]
    }

    pub fn with_op(op: OpKind) -> Self {
        let op_index = OpKind::ALL
            .iter()
            .position(|&k| k == op)
            .expect("OpKind::ALL covers every variant");
        OpSample {
            op_index,
            ..OpSample::default()
        }
    }
}

/// A strategy for executing physical plans.
///
/// `execute` takes `&mut self` because measured backends maintain state
/// between calls (cached B+Trees, drained-on-demand calibration samples);
/// the simulated implementation simply ignores the mutability.
pub trait ExecutionBackend: Send {
    /// Which backend family this is (drives reporting and env selection).
    fn kind(&self) -> BackendKind;

    /// Human-readable name for reports and span attributes.
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// Execute `plan` for `query` against `catalog`, returning observed
    /// statistics. Logical fields must reflect the real data; `time`
    /// fields are backend-defined (priced vs measured).
    fn execute(&mut self, catalog: &Catalog, query: &Query, plan: &Plan) -> QueryExecution;

    /// The cost model this backend was configured with (used for index
    /// build/maintenance pricing regardless of how queries are timed).
    fn cost_model(&self) -> &CostModel;

    /// Capability hook: whether `QueryExecution::total` carries measured
    /// wall-clock (true) or simulated pricing (false).
    fn measures_wall_clock(&self) -> bool {
        matches!(self.kind(), BackendKind::Measured)
    }

    /// Calibration hook: drain per-operator work/time samples accumulated
    /// since the last call. Backends without instrumentation return none.
    fn take_op_samples(&mut self) -> Vec<OpSample> {
        Vec::new()
    }
}

/// The `Simulated` backend: the cost-model-priced [`Executor`], boxed.
/// The canonical construction path for callers outside this crate —
/// `Executor::new` is an engine-internal detail.
pub fn simulated(cost: CostModel) -> Box<dyn ExecutionBackend> {
    Box::new(Executor::new(cost))
}

impl ExecutionBackend for Executor {
    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn execute(&mut self, catalog: &Catalog, query: &Query, plan: &Plan) -> QueryExecution {
        Executor::execute(self, catalog, query, plan)
    }

    fn cost_model(&self) -> &CostModel {
        Executor::cost_model(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_and_round_trips() {
        assert_eq!(
            "simulated".parse::<BackendKind>(),
            Ok(BackendKind::Simulated)
        );
        assert_eq!("SIM".parse::<BackendKind>(), Ok(BackendKind::Simulated));
        assert_eq!(
            " Measured ".parse::<BackendKind>(),
            Ok(BackendKind::Measured)
        );
        assert_eq!("real".parse::<BackendKind>(), Ok(BackendKind::Measured));
        assert!("postgres".parse::<BackendKind>().is_err());
        for kind in [BackendKind::Simulated, BackendKind::Measured] {
            assert_eq!(kind.label().parse::<BackendKind>(), Ok(kind));
        }
    }

    #[test]
    fn op_sample_round_trips_op_kind() {
        for op in OpKind::ALL {
            assert_eq!(OpSample::with_op(op).op(), op);
        }
    }

    #[test]
    fn executor_is_the_simulated_backend() {
        let mut exec = Executor::new(CostModel::unit_scale());
        let backend: &mut dyn ExecutionBackend = &mut exec;
        assert_eq!(backend.kind(), BackendKind::Simulated);
        assert_eq!(backend.name(), "simulated");
        assert!(!backend.measures_wall_clock());
        assert!(backend.take_op_samples().is_empty());
        assert!(backend.cost_model().time_scale > 0.0);
    }

    #[test]
    fn boxed_backends_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Box<dyn ExecutionBackend>>();
    }
}
