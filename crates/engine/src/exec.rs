//! The executor: runs a physical [`Plan`] against real column data.
//!
//! Execution is *actual*: predicates are evaluated over the stored codes,
//! joins materialise real matching row ids, and every operator is charged
//! simulated time from the shared [`CostModel`] using the **observed**
//! cardinalities. The per-access statistics it emits ([`AccessStats`]) are
//! exactly the observations the paper's reward shaping consumes: which
//! index served which table, how long the access took, and what a full
//! table scan cost when one was performed.

use dba_common::{IndexId, QueryId, SimSeconds, TableId};
use dba_storage::{Catalog, Index, Table};

use crate::cost::CostModel;
use crate::plan::{seek_shape, AccessMethod, JoinAlgo, Plan};
use crate::query::{Predicate, Query};

/// Observed statistics for one table access operator.
#[derive(Debug, Clone)]
pub struct AccessStats {
    pub table: TableId,
    /// The index used, or `None` for a heap scan.
    pub index: Option<IndexId>,
    /// Simulated time spent in this access operator (for index nested-loop
    /// inner sides: the total across all probes).
    pub time: SimSeconds,
    /// Actual rows emitted after local predicates.
    pub rows_out: u64,
    /// True if this was a full heap scan (reference time for reward shaping).
    pub is_full_scan: bool,
}

/// Observed execution of one query.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    pub query: QueryId,
    pub total: SimSeconds,
    pub accesses: Vec<AccessStats>,
    pub join_time: SimSeconds,
    pub agg_time: SimSeconds,
    pub result_rows: u64,
}

impl QueryExecution {
    /// Ids of all indexes the optimiser's plan actually used.
    pub fn indexes_used(&self) -> Vec<IndexId> {
        let mut out = Vec::new();
        for a in &self.accesses {
            if let Some(ix) = a.index {
                if !out.contains(&ix) {
                    out.push(ix);
                }
            }
        }
        out
    }

    /// The observed full-scan time of `table` in this execution, if the plan
    /// performed one.
    pub fn full_scan_time(&self, table: TableId) -> Option<SimSeconds> {
        self.accesses
            .iter()
            .find(|a| a.table == table && a.is_full_scan)
            .map(|a| a.time)
    }

    /// Maximum index access time observed on `table` (footnote-3 fallback
    /// for the full-scan reference).
    pub fn max_index_time(&self, table: TableId) -> Option<SimSeconds> {
        self.accesses
            .iter()
            .filter(|a| a.table == table && a.index.is_some())
            .map(|a| a.time)
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// Runs plans over the catalog, producing observed statistics.
#[derive(Debug, Clone)]
pub struct Executor {
    cost: CostModel,
}

/// Intermediate relation during left-deep join execution: parallel vectors
/// of row ids, one per already-joined table.
struct Intermediate {
    tables: Vec<TableId>,
    /// `columns[i][k]` = row id in `tables[i]` for output tuple `k`.
    columns: Vec<Vec<u32>>,
    len: usize,
}

impl Intermediate {
    fn single(table: TableId, rows: Vec<u32>) -> Self {
        let len = rows.len();
        Intermediate {
            tables: vec![table],
            columns: vec![rows],
            len,
        }
    }

    fn table_pos(&self, table: TableId) -> Option<usize> {
        self.tables.iter().position(|&t| t == table)
    }
}

impl Executor {
    pub fn new(cost: CostModel) -> Self {
        Executor { cost }
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Execute `plan` for `query`, returning observed statistics.
    ///
    /// Panics if the plan references indexes that are not materialised —
    /// plans must be produced against the same catalog state.
    pub fn execute(&self, catalog: &Catalog, query: &Query, plan: &Plan) -> QueryExecution {
        let mut accesses = Vec::with_capacity(1 + plan.joins.len());
        let mut join_time = SimSeconds::ZERO;

        // Driver access.
        let driver_table = catalog.table(plan.driver.table);
        let preds = query.predicates_on(plan.driver.table);
        let (rows, stats) =
            self.run_access(catalog, driver_table, &plan.driver.method, &preds, query);
        accesses.push(stats);
        let mut inter = Intermediate::single(plan.driver.table, rows);

        // Join steps.
        for step in &plan.joins {
            let inner_table = catalog.table(step.access.table);
            let inner_preds = query.predicates_on(step.access.table);
            // The outer side of this join lives on an already-joined table.
            let outer_col = step
                .join
                .other_side(step.access.table)
                .expect("join step must connect to the new table");
            let outer_pos = inter
                .table_pos(outer_col.table)
                .expect("left-deep plan: outer table must already be joined");
            let inner_col = step
                .join
                .side_on(step.access.table)
                .expect("join step must reference the new table");

            match step.algo {
                JoinAlgo::Hash => {
                    let (inner_rows, stats) = self.run_access(
                        catalog,
                        inner_table,
                        &step.access.method,
                        &inner_preds,
                        query,
                    );
                    accesses.push(stats);

                    // Build on the inner side, probe with the outer.
                    let inner_vals = inner_table.column(inner_col.ordinal).data();
                    let mut build: std::collections::HashMap<i64, Vec<u32>> =
                        std::collections::HashMap::with_capacity(inner_rows.len());
                    for &r in &inner_rows {
                        build.entry(inner_vals[r as usize]).or_default().push(r);
                    }
                    let build_rows = inner_rows.len() as u64;
                    let probe_rows = inter.len as u64;

                    let outer_vals = catalog.table(outer_col.table).column(outer_col.ordinal);
                    let mut new_cols: Vec<Vec<u32>> =
                        (0..inter.columns.len() + 1).map(|_| Vec::new()).collect();
                    for k in 0..inter.len {
                        let ov = outer_vals.value(inter.columns[outer_pos][k] as usize);
                        if let Some(matches) = build.get(&ov) {
                            for &ir in matches {
                                for (ci, col) in inter.columns.iter().enumerate() {
                                    new_cols[ci].push(col[k]);
                                }
                                new_cols[inter.columns.len()].push(ir);
                            }
                        }
                    }
                    let len = new_cols[0].len();
                    join_time += self.cost.hash_join(build_rows, probe_rows, len as u64);
                    inter.tables.push(step.access.table);
                    inter.columns = new_cols;
                    inter.len = len;
                }
                JoinAlgo::IndexNestedLoop => {
                    let index_id = step
                        .access
                        .method
                        .index_id()
                        .expect("INL join requires an inner index");
                    let index = catalog
                        .index(index_id)
                        .expect("plan references unmaterialised index");
                    let covering = matches!(
                        step.access.method,
                        AccessMethod::IndexSeek { covering: true, .. }
                    );

                    let outer_vals = catalog.table(outer_col.table).column(outer_col.ordinal);
                    let mut new_cols: Vec<Vec<u32>> =
                        (0..inter.columns.len() + 1).map(|_| Vec::new()).collect();
                    let mut total_matched = 0u64;
                    let mut total_out = 0u64;
                    for k in 0..inter.len {
                        let ov = outer_vals.value(inter.columns[outer_pos][k] as usize);
                        let (s, e) = index.probe(inner_table, &[ov], None);
                        total_matched += (e - s) as u64;
                        for &ir in &index.ordered_rows()[s..e] {
                            if row_matches(inner_table, ir, &inner_preds) {
                                for (ci, col) in inter.columns.iter().enumerate() {
                                    new_cols[ci].push(col[k]);
                                }
                                new_cols[inter.columns.len()].push(ir);
                                total_out += 1;
                            }
                        }
                    }
                    let leaf_row_bytes = leaf_row_bytes(inner_table, index);
                    let heap_fetches = if covering { 0 } else { total_matched };
                    let time = self.cost.inl_probes(
                        inter.len as u64,
                        total_matched,
                        leaf_row_bytes,
                        heap_fetches,
                        catalog.live_heap_pages(step.access.table),
                    );
                    accesses.push(AccessStats {
                        table: step.access.table,
                        index: Some(index_id),
                        time,
                        rows_out: total_out,
                        is_full_scan: false,
                    });
                    let len = new_cols[0].len();
                    inter.tables.push(step.access.table);
                    inter.columns = new_cols;
                    inter.len = len;
                }
            }
        }

        let agg_time = if query.aggregated {
            self.cost.aggregate(inter.len as u64)
        } else {
            SimSeconds::ZERO
        };

        let total = accesses.iter().map(|a| a.time).sum::<SimSeconds>() + join_time + agg_time;
        QueryExecution {
            query: query.id,
            total,
            accesses,
            join_time,
            agg_time,
            result_rows: inter.len as u64,
        }
    }

    /// Run a single-table access, returning matching row ids and stats.
    fn run_access(
        &self,
        catalog: &Catalog,
        table: &Table,
        method: &AccessMethod,
        preds: &[Predicate],
        query: &Query,
    ) -> (Vec<u32>, AccessStats) {
        match method {
            AccessMethod::FullScan => {
                let rows = filter_all(table, preds);
                // Time is charged over the *live* heap: drift-grown tables
                // scan slower even though only generated rows materialise.
                let time = self.cost.scan(
                    catalog.live_heap_pages(table.id()),
                    catalog.live_rows(table.id()),
                );
                let stats = AccessStats {
                    table: table.id(),
                    index: None,
                    time,
                    rows_out: rows.len() as u64,
                    is_full_scan: true,
                };
                (rows, stats)
            }
            AccessMethod::IndexSeek { index, covering } => {
                let ix = catalog
                    .index(*index)
                    .expect("plan references unmaterialised index");
                let shape = seek_shape(ix.def(), preds);
                let (s, e) = ix.probe(table, &shape.eq_values, shape.range);
                let matched = (e - s) as u64;
                let mut rows = Vec::with_capacity(e - s);
                for &r in &ix.ordered_rows()[s..e] {
                    if shape.residual.is_empty() || row_matches(table, r, &shape.residual) {
                        rows.push(r);
                    }
                }
                // A non-covering seek fetches every leaf-matched row from the
                // heap (residuals and payload are evaluated there).
                let heap_fetches = if *covering { 0 } else { matched };
                let time = self.cost.index_seek(
                    matched,
                    leaf_row_bytes(table, ix),
                    heap_fetches,
                    catalog.live_heap_pages(table.id()),
                );
                let stats = AccessStats {
                    table: table.id(),
                    index: Some(*index),
                    time,
                    rows_out: rows.len() as u64,
                    is_full_scan: false,
                };
                (rows, stats)
            }
            AccessMethod::CoveringScan { index } => {
                let ix = catalog
                    .index(*index)
                    .expect("plan references unmaterialised index");
                debug_assert!(
                    ix.def().covers(&query.columns_needed_on(table.id())),
                    "covering scan over a non-covering index"
                );
                let rows = filter_all(table, preds);
                // Maintained leaves grow with the table (drift): the
                // catalog's live accounting scales each index by the growth
                // it actually absorbed since creation.
                let leaf_pages = catalog.index_live_leaf_pages(ix.id());
                let time = self
                    .cost
                    .covering_scan(leaf_pages, catalog.live_rows(table.id()));
                let stats = AccessStats {
                    table: table.id(),
                    index: Some(*index),
                    time,
                    rows_out: rows.len() as u64,
                    is_full_scan: false,
                };
                (rows, stats)
            }
        }
    }
}

/// Bytes per leaf row of `index` on `table` (keys + includes + locator).
fn leaf_row_bytes(table: &Table, index: &Index) -> u64 {
    table.columns_width(&index.def().key_cols) + table.columns_width(&index.def().include_cols) + 8
}

/// Row ids of `table` matching all `preds` (full evaluation).
fn filter_all(table: &Table, preds: &[Predicate]) -> Vec<u32> {
    if preds.is_empty() {
        return (0..table.rows() as u32).collect();
    }
    let cols: Vec<&[i64]> = preds
        .iter()
        .map(|p| table.column(p.column.ordinal).data())
        .collect();
    let mut out = Vec::new();
    for r in 0..table.rows() {
        let ok = preds.iter().zip(&cols).all(|(p, c)| p.matches(c[r]));
        if ok {
            out.push(r as u32);
        }
    }
    out
}

/// Whether row `r` of `table` satisfies all `preds`.
#[inline]
fn row_matches(table: &Table, r: u32, preds: &[Predicate]) -> bool {
    preds
        .iter()
        .all(|p| p.matches(table.column(p.column.ordinal).value(r as usize)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinStep, TableAccess};
    use crate::query::JoinPred;
    use dba_common::{ColumnId, TemplateId};
    use dba_storage::{ColumnSpec, ColumnType, Distribution, IndexDef, TableBuilder, TableSchema};

    /// Two-table catalog: `dim` (200 rows) and `fact` (5000 rows) with
    /// fact.f_dim a uniform FK into dim.
    fn catalog() -> Catalog {
        let dim = TableSchema::new(
            "dim",
            vec![
                ColumnSpec::new("d_key", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "d_attr",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 9 },
                ),
            ],
        );
        let fact = TableSchema::new(
            "fact",
            vec![
                ColumnSpec::new("f_key", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "f_dim",
                    ColumnType::Int,
                    Distribution::FkUniform { parent_rows: 200 },
                ),
                ColumnSpec::new(
                    "f_val",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 999 },
                ),
            ],
        );
        Catalog::new(vec![
            TableBuilder::new(dim, 200).build(TableId(0), 5),
            TableBuilder::new(fact, 5000).build(TableId(1), 5),
        ])
    }

    fn col(t: u32, o: u16) -> ColumnId {
        ColumnId::new(TableId(t), o)
    }

    fn single_table_query(preds: Vec<Predicate>, payload: Vec<ColumnId>) -> Query {
        Query {
            id: QueryId(0),
            template: TemplateId(0),
            tables: vec![TableId(1)],
            predicates: preds,
            joins: vec![],
            payload,
            aggregated: false,
        }
    }

    fn scan_plan(table: TableId, est: f64) -> Plan {
        Plan {
            driver: TableAccess {
                table,
                method: AccessMethod::FullScan,
                est_rows: est,
            },
            joins: vec![],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        }
    }

    #[test]
    fn full_scan_counts_match_ground_truth() {
        let cat = catalog();
        let q = single_table_query(vec![Predicate::range(col(1, 2), 0, 99)], vec![col(1, 0)]);
        let exec = Executor::new(CostModel::unit_scale());
        let result = exec.execute(&cat, &q, &scan_plan(TableId(1), 0.0));
        let truth = cat.table(TableId(1)).column(2).count_in_range(0, 99) as u64;
        assert_eq!(result.result_rows, truth);
        assert!(result.accesses[0].is_full_scan);
        assert!(result.total.secs() > 0.0);
        assert_eq!(
            result.full_scan_time(TableId(1)),
            Some(result.accesses[0].time)
        );
    }

    #[test]
    fn index_seek_equals_scan_row_output() {
        let mut cat = catalog();
        let meta = cat
            .create_index(IndexDef::new(TableId(1), vec![2], vec![]))
            .unwrap();
        let q = single_table_query(vec![Predicate::range(col(1, 2), 10, 30)], vec![col(1, 0)]);
        let exec = Executor::new(CostModel::unit_scale());
        let seek_plan = Plan {
            driver: TableAccess {
                table: TableId(1),
                method: AccessMethod::IndexSeek {
                    index: meta.id,
                    covering: false,
                },
                est_rows: 0.0,
            },
            joins: vec![],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        };
        let via_seek = exec.execute(&cat, &q, &seek_plan);
        let via_scan = exec.execute(&cat, &q, &scan_plan(TableId(1), 0.0));
        assert_eq!(via_seek.result_rows, via_scan.result_rows);
        assert_eq!(via_seek.indexes_used(), vec![meta.id]);
        // Note: on this tiny (15-page) table the non-covering seek is
        // *slower* than the scan — random heap fetches cannot amortise.
        // That asymmetry is intentional and exercised in
        // `selective_seek_beats_scan_on_large_table`.
    }

    #[test]
    fn selective_seek_beats_scan_on_large_table() {
        // 60k rows, high-cardinality column: an equality predicate matches
        // ~0-3 rows, which is the regime where a non-covering secondary
        // index genuinely wins against a sequential scan.
        let schema = TableSchema::new(
            "big",
            vec![
                ColumnSpec::new("k", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "v",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 599_999 },
                ),
                ColumnSpec::new("w", ColumnType::Int, Distribution::Uniform { lo: 0, hi: 9 }),
            ],
        );
        let mut cat = Catalog::new(vec![TableBuilder::new(schema, 60_000).build(TableId(0), 13)]);
        let meta = cat
            .create_index(IndexDef::new(TableId(0), vec![1], vec![]))
            .unwrap();
        // Pick a value that actually occurs so the seek returns rows.
        let needle = cat.table(TableId(0)).column(1).value(1234);
        let q = Query {
            id: QueryId(0),
            template: TemplateId(0),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::eq(col(0, 1), needle)],
            joins: vec![],
            payload: vec![col(0, 0)],
            aggregated: false,
        };
        let exec = Executor::new(CostModel::unit_scale());
        let seek_plan = Plan {
            driver: TableAccess {
                table: TableId(0),
                method: AccessMethod::IndexSeek {
                    index: meta.id,
                    covering: false,
                },
                est_rows: 0.0,
            },
            joins: vec![],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        };
        let via_seek = exec.execute(&cat, &q, &seek_plan);
        let via_scan = exec.execute(&cat, &q, &scan_plan(TableId(0), 0.0));
        assert!(via_seek.result_rows >= 1);
        assert_eq!(via_seek.result_rows, via_scan.result_rows);
        assert!(
            via_seek.total.secs() < via_scan.total.secs() / 5.0,
            "seek {} vs scan {}",
            via_seek.total.secs(),
            via_scan.total.secs()
        );
    }

    #[test]
    fn covering_seek_is_cheaper_than_non_covering() {
        let mut cat = catalog();
        let plain = cat
            .create_index(IndexDef::new(TableId(1), vec![2], vec![]))
            .unwrap();
        let covering = cat
            .create_index(IndexDef::new(TableId(1), vec![2], vec![0]))
            .unwrap();
        let q = single_table_query(vec![Predicate::range(col(1, 2), 10, 300)], vec![col(1, 0)]);
        let exec = Executor::new(CostModel::unit_scale());
        let mk = |id, cov| Plan {
            driver: TableAccess {
                table: TableId(1),
                method: AccessMethod::IndexSeek {
                    index: id,
                    covering: cov,
                },
                est_rows: 0.0,
            },
            joins: vec![],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        };
        let with_heap = exec.execute(&cat, &q, &mk(plain.id, false));
        let no_heap = exec.execute(&cat, &q, &mk(covering.id, true));
        assert_eq!(with_heap.result_rows, no_heap.result_rows);
        assert!(no_heap.total.secs() < with_heap.total.secs());
    }

    fn join_query() -> Query {
        Query {
            id: QueryId(0),
            template: TemplateId(0),
            tables: vec![TableId(0), TableId(1)],
            predicates: vec![
                Predicate::eq(col(0, 1), 3),
                Predicate::range(col(1, 2), 0, 499),
            ],
            joins: vec![JoinPred::new(col(0, 0), col(1, 1))],
            payload: vec![col(1, 0)],
            aggregated: true,
        }
    }

    /// Ground-truth join cardinality computed naively.
    fn true_join_rows(cat: &Catalog) -> u64 {
        let dim = cat.table(TableId(0));
        let fact = cat.table(TableId(1));
        let mut n = 0u64;
        for dr in 0..dim.rows() {
            if dim.column(1).value(dr) != 3 {
                continue;
            }
            let key = dim.column(0).value(dr);
            for fr in 0..fact.rows() {
                if fact.column(1).value(fr) == key && (0..=499).contains(&fact.column(2).value(fr))
                {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn hash_join_matches_ground_truth() {
        let cat = catalog();
        let q = join_query();
        let plan = Plan {
            driver: TableAccess {
                table: TableId(0),
                method: AccessMethod::FullScan,
                est_rows: 0.0,
            },
            joins: vec![JoinStep {
                access: TableAccess {
                    table: TableId(1),
                    method: AccessMethod::FullScan,
                    est_rows: 0.0,
                },
                algo: JoinAlgo::Hash,
                join: q.joins[0],
                est_rows_out: 0.0,
            }],
            aggregated: true,
            est_cost: SimSeconds::ZERO,
        };
        let exec = Executor::new(CostModel::unit_scale());
        let result = exec.execute(&cat, &q, &plan);
        assert_eq!(result.result_rows, true_join_rows(&cat));
        assert!(result.join_time.secs() > 0.0);
        assert!(result.agg_time.secs() > 0.0);
    }

    #[test]
    fn inl_join_matches_hash_join_output() {
        let mut cat = catalog();
        let fk_ix = cat
            .create_index(IndexDef::new(TableId(1), vec![1], vec![]))
            .unwrap();
        let q = join_query();
        let inl_plan = Plan {
            driver: TableAccess {
                table: TableId(0),
                method: AccessMethod::FullScan,
                est_rows: 0.0,
            },
            joins: vec![JoinStep {
                access: TableAccess {
                    table: TableId(1),
                    method: AccessMethod::IndexSeek {
                        index: fk_ix.id,
                        covering: false,
                    },
                    est_rows: 0.0,
                },
                algo: JoinAlgo::IndexNestedLoop,
                join: q.joins[0],
                est_rows_out: 0.0,
            }],
            aggregated: true,
            est_cost: SimSeconds::ZERO,
        };
        let exec = Executor::new(CostModel::unit_scale());
        let result = exec.execute(&cat, &q, &inl_plan);
        assert_eq!(result.result_rows, true_join_rows(&cat));
        // The INL inner access is attributed to the index.
        let inner = result
            .accesses
            .iter()
            .find(|a| a.table == TableId(1))
            .unwrap();
        assert_eq!(inner.index, Some(fk_ix.id));
        assert!(!inner.is_full_scan);
        assert!(result.max_index_time(TableId(1)).is_some());
    }

    #[test]
    fn drifted_table_scans_slower_but_returns_same_rows() {
        let mut cat = catalog();
        let q = single_table_query(vec![Predicate::range(col(1, 2), 0, 99)], vec![col(1, 0)]);
        let exec = Executor::new(CostModel::unit_scale());
        let before = exec.execute(&cat, &q, &scan_plan(TableId(1), 0.0));
        cat.apply_drift(TableId(1), 50_000, 0, 0);
        let after = exec.execute(&cat, &q, &scan_plan(TableId(1), 0.0));
        // Results come from the generated rows; cost comes from the live heap.
        assert_eq!(after.result_rows, before.result_rows);
        assert!(
            after.total.secs() > before.total.secs() * 2.0,
            "10× heap growth must slow the scan: {} vs {}",
            after.total.secs(),
            before.total.secs()
        );
    }

    #[test]
    fn covering_scan_slows_as_the_indexed_table_grows() {
        let mut cat = catalog();
        let meta = cat
            .create_index(IndexDef::new(TableId(1), vec![2], vec![0]))
            .unwrap();
        let q = single_table_query(vec![Predicate::range(col(1, 2), 10, 300)], vec![col(1, 0)]);
        let plan = Plan {
            driver: TableAccess {
                table: TableId(1),
                method: AccessMethod::CoveringScan { index: meta.id },
                est_rows: 0.0,
            },
            joins: vec![],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        };
        let exec = Executor::new(CostModel::unit_scale());
        let before = exec.execute(&cat, &q, &plan);
        cat.apply_drift(TableId(1), 45_000, 0, 0); // 10× growth
        let after = exec.execute(&cat, &q, &plan);
        assert!(
            after.total.secs() > before.total.secs() * 3.0,
            "maintained leaves grow with the table: {} vs {}",
            after.total.secs(),
            before.total.secs()
        );
    }

    #[test]
    fn empty_predicates_scan_emits_all_rows() {
        let cat = catalog();
        let q = single_table_query(vec![], vec![col(1, 0)]);
        let exec = Executor::new(CostModel::unit_scale());
        let result = exec.execute(&cat, &q, &scan_plan(TableId(1), 0.0));
        assert_eq!(result.result_rows, 5000);
    }
}
