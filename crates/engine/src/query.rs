//! Logical query model.
//!
//! Analytical benchmark queries are represented structurally — conjunctive
//! range/equality predicates, equi-joins, a payload (selected columns) and
//! optional aggregation — which is exactly the information the paper's arm
//! generation and context engineering consume (§IV). No SQL text is needed.

use dba_common::{ColumnId, QueryId, TableId, TemplateId};
use serde::{Deserialize, Serialize};

/// A conjunctive predicate on one column: `lo <= col <= hi` over encoded
/// values. Equality is `lo == hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    pub column: ColumnId,
    pub lo: i64,
    pub hi: i64,
}

impl Predicate {
    pub fn eq(column: ColumnId, v: i64) -> Self {
        Predicate {
            column,
            lo: v,
            hi: v,
        }
    }

    pub fn range(column: ColumnId, lo: i64, hi: i64) -> Self {
        Predicate { column, lo, hi }
    }

    #[inline]
    pub fn is_equality(&self) -> bool {
        self.lo == self.hi
    }

    #[inline]
    pub fn matches(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// An equi-join between two columns of different tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPred {
    pub left: ColumnId,
    pub right: ColumnId,
}

impl JoinPred {
    pub fn new(left: ColumnId, right: ColumnId) -> Self {
        debug_assert_ne!(left.table, right.table, "self-join not supported");
        JoinPred { left, right }
    }

    /// The side of this join belonging to `table`, if any.
    pub fn side_on(&self, table: TableId) -> Option<ColumnId> {
        if self.left.table == table {
            Some(self.left)
        } else if self.right.table == table {
            Some(self.right)
        } else {
            None
        }
    }

    /// The side of this join *not* belonging to `table`, if the other side is.
    pub fn other_side(&self, table: TableId) -> Option<ColumnId> {
        if self.left.table == table {
            Some(self.right)
        } else if self.right.table == table {
            Some(self.left)
        } else {
            None
        }
    }
}

/// A concrete query instance (a template with bound parameters).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    pub id: QueryId,
    pub template: TemplateId,
    /// Tables referenced, in no particular order.
    pub tables: Vec<TableId>,
    pub predicates: Vec<Predicate>,
    pub joins: Vec<JoinPred>,
    /// Output columns (the SELECT list, net of aggregates' inputs).
    pub payload: Vec<ColumnId>,
    /// Whether the query aggregates its result (GROUP BY / aggregate-only).
    pub aggregated: bool,
}

impl Query {
    /// Local (non-join) predicates on `table`, in declaration order.
    pub fn predicates_on(&self, table: TableId) -> Vec<Predicate> {
        self.predicates
            .iter()
            .filter(|p| p.column.table == table)
            .copied()
            .collect()
    }

    /// Payload columns that live on `table`.
    pub fn payload_on(&self, table: TableId) -> Vec<ColumnId> {
        self.payload
            .iter()
            .filter(|c| c.table == table)
            .copied()
            .collect()
    }

    /// Join columns on `table` (its side of each join it participates in).
    pub fn join_columns_on(&self, table: TableId) -> Vec<ColumnId> {
        self.joins.iter().filter_map(|j| j.side_on(table)).collect()
    }

    /// Every column of `table` the query must be able to read: predicate,
    /// join and payload columns. Determines what an index must cover for a
    /// covering (index-only) access.
    pub fn columns_needed_on(&self, table: TableId) -> Vec<u16> {
        let mut cols: Vec<u16> = Vec::new();
        let mut push = |c: ColumnId| {
            if c.table == table && !cols.contains(&c.ordinal) {
                cols.push(c.ordinal);
            }
        };
        for p in &self.predicates {
            push(p.column);
        }
        for j in &self.joins {
            if let Some(c) = j.side_on(table) {
                push(c);
            }
        }
        for &c in &self.payload {
            push(c);
        }
        cols
    }

    /// All distinct predicate columns across the query (arm-generation input).
    pub fn predicate_columns(&self) -> Vec<ColumnId> {
        let mut cols = Vec::new();
        for p in &self.predicates {
            if !cols.contains(&p.column) {
                cols.push(p.column);
            }
        }
        cols
    }

    #[inline]
    pub fn is_join_query(&self) -> bool {
        !self.joins.is_empty()
    }
}

/// A mini-workload: the set of queries executed in one round.
#[derive(Debug, Clone, Default)]
pub struct WorkloadSlice {
    pub queries: Vec<Query>,
}

impl WorkloadSlice {
    pub fn new(queries: Vec<Query>) -> Self {
        WorkloadSlice { queries }
    }

    pub fn len(&self) -> usize {
        self.queries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Distinct template ids present in this slice.
    pub fn template_ids(&self) -> Vec<TemplateId> {
        let mut ids: Vec<TemplateId> = self.queries.iter().map(|q| q.template).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: u32, o: u16) -> ColumnId {
        ColumnId::new(TableId(t), o)
    }

    fn sample_query() -> Query {
        Query {
            id: QueryId(1),
            template: TemplateId(3),
            tables: vec![TableId(0), TableId(1)],
            predicates: vec![
                Predicate::eq(col(0, 1), 5),
                Predicate::range(col(0, 2), 10, 20),
                Predicate::eq(col(1, 0), 7),
            ],
            joins: vec![JoinPred::new(col(0, 0), col(1, 1))],
            payload: vec![col(0, 3), col(1, 2)],
            aggregated: true,
        }
    }

    #[test]
    fn predicate_semantics() {
        let p = Predicate::eq(col(0, 0), 5);
        assert!(p.is_equality());
        assert!(p.matches(5));
        assert!(!p.matches(4));
        let r = Predicate::range(col(0, 0), 1, 3);
        assert!(!r.is_equality());
        assert!(r.matches(1) && r.matches(3) && !r.matches(4));
    }

    #[test]
    fn per_table_projections() {
        let q = sample_query();
        assert_eq!(q.predicates_on(TableId(0)).len(), 2);
        assert_eq!(q.predicates_on(TableId(1)).len(), 1);
        assert_eq!(q.payload_on(TableId(0)), vec![col(0, 3)]);
        assert_eq!(q.join_columns_on(TableId(1)), vec![col(1, 1)]);
    }

    #[test]
    fn columns_needed_deduplicates_and_merges() {
        let q = sample_query();
        // table 0: preds on 1,2; join on 0; payload 3.
        let mut needed = q.columns_needed_on(TableId(0));
        needed.sort_unstable();
        assert_eq!(needed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_side_resolution() {
        let j = JoinPred::new(col(0, 0), col(1, 1));
        assert_eq!(j.side_on(TableId(0)), Some(col(0, 0)));
        assert_eq!(j.other_side(TableId(0)), Some(col(1, 1)));
        assert_eq!(j.side_on(TableId(2)), None);
    }

    #[test]
    fn workload_slice_template_ids() {
        let q1 = sample_query();
        let mut q2 = sample_query();
        q2.template = TemplateId(1);
        let mut q3 = sample_query();
        q3.template = TemplateId(3);
        let w = WorkloadSlice::new(vec![q1, q2, q3]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.template_ids(), vec![TemplateId(1), TemplateId(3)]);
    }

    #[test]
    fn predicate_columns_unique() {
        let mut q = sample_query();
        q.predicates.push(Predicate::eq(col(0, 1), 9));
        assert_eq!(q.predicate_columns().len(), 3);
    }
}
