//! Benchmark workloads for the evaluation (§V-A).
//!
//! Five benchmarks, as in the paper: TPC-H (uniform), TPC-H Skew (zipfian
//! factor 4), SSB, TPC-DS, and a JOB/IMDb-style workload. Each provides a
//! schema with per-scale-factor row counts (scaled 1/100 — see DESIGN.md),
//! and a family of parameterised query templates that are *structurally
//! faithful paraphrases* of the benchmark's queries: same predicate /
//! join / payload shape and selectivity classes, which is the information
//! index tuners consume.
//!
//! [`sequence`] turns a benchmark into the paper's three workload types:
//! **static** (every template, every round), **dynamic shifting** (4
//! disjoint template groups × 20 rounds), and **dynamic random** (uniform
//! template draws per round with ~50% round-to-round repeats).
//!
//! [`drift`] adds the dynamic-*data* axis on top of any workload type:
//! per-round insert/update/delete rates per table (TPC-H refresh-stream
//! style), which sessions turn into heap growth, stats staleness and
//! per-index maintenance charges.

pub mod arrival;
pub mod drift;
pub mod imdb;
pub mod sequence;
pub mod spec;
pub mod ssb;
pub mod tpcds;
pub mod tpch;

pub use arrival::{ArrivalProcess, ArrivalSchedule, ArrivalWindow};
pub use drift::{DataDrift, DriftRates, TableDelta};
pub use sequence::{WorkloadKind, WorkloadSequencer};
pub use spec::{Benchmark, ParamGen, RowCount, TemplateSpec};

/// All five paper benchmarks at scale factor `sf`, in the order the
/// paper's figures use.
pub fn all_benchmarks(sf: f64) -> Vec<Benchmark> {
    vec![
        ssb::ssb(sf),
        tpch::tpch(sf),
        tpch::tpch_skew(sf),
        tpcds::tpcds(sf),
        imdb::imdb(sf),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_benchmarks_have_the_papers_template_counts() {
        let names: Vec<(String, usize)> = all_benchmarks(0.1)
            .iter()
            .map(|b| (b.name.to_string(), b.templates().len()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("SSB".to_string(), 13),
                ("TPC-H".to_string(), 22),
                ("TPC-H Skew".to_string(), 22),
                ("TPC-DS".to_string(), 99),
                ("IMDb".to_string(), 33),
            ]
        );
    }

    #[test]
    fn every_benchmark_builds_and_instantiates() {
        for bench in all_benchmarks(0.05) {
            let catalog = bench.build_catalog(42).expect("catalog builds");
            assert!(catalog.database_bytes() > 0);
            for t in bench.templates() {
                let q = t
                    .instantiate(&catalog, dba_common::QueryId(0), 42, 0)
                    .unwrap_or_else(|e| panic!("{}::{} fails: {e}", bench.name, t.id));
                assert!(!q.tables.is_empty());
                assert!(
                    !q.predicates.is_empty() || !q.joins.is_empty(),
                    "{}::{} has no predicates or joins",
                    bench.name,
                    t.id
                );
                // Every referenced table is listed.
                for p in &q.predicates {
                    assert!(q.tables.contains(&p.column.table));
                }
                for j in &q.joins {
                    assert!(q.tables.contains(&j.left.table));
                    assert!(q.tables.contains(&j.right.table));
                }
            }
        }
    }
}
