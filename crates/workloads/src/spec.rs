//! Benchmark and template machinery.
//!
//! A [`Benchmark`] owns table schemas with per-scale-factor row counts and
//! a family of [`TemplateSpec`]s. Instantiating a template binds its
//! parameters with a deterministic per-(template, round) RNG stream, so
//! each round sees a fresh instance of the template — "each group of
//! templatized queries is invoked over rounds, producing different query
//! instances" (§V-A).

use dba_common::{rng::rng_for, ColumnRef, DbError, DbResult, QueryId, TableId, TemplateId};
use dba_engine::{JoinPred, Predicate, Query};
use dba_storage::{Catalog, TableBuilder, TableSchema};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Row-count compensation: benchmarks generate 1/100th of the paper's rows
/// per scale factor (the cost model's `PAPER_TIME_SCALE` compensates).
pub const ROW_SCALE_DOWN: u64 = 100;

/// Row count of a table as a function of scale factor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum RowCount {
    /// `base × sf / ROW_SCALE_DOWN` rows (most TPC tables).
    PerSf(u64),
    /// A fixed count regardless of scale factor (tiny dimensions like
    /// `nation`, or the fixed-size IMDb dataset), already scaled down.
    Fixed(u64),
}

impl RowCount {
    pub fn rows(&self, sf: f64) -> usize {
        match *self {
            RowCount::PerSf(base) => {
                (((base as f64) * sf / ROW_SCALE_DOWN as f64).round() as usize).max(8)
            }
            RowCount::Fixed(rows) => rows as usize,
        }
    }
}

/// How a template parameter is drawn at instantiation time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum ParamGen {
    /// Equality with a uniform value from `[lo, hi]`.
    Eq { lo: i64, hi: i64 },
    /// Equality with a zipf-drawn rank over `[0, n)`: hot values are
    /// queried more often (workload locality matches data skew).
    EqZipf { n: u64, s: f64 },
    /// Range of `width` values starting uniformly within `[lo, hi−width]`.
    Range { lo: i64, hi: i64, width: i64 },
    /// Fixed equality value.
    FixedEq(i64),
    /// Fixed inclusive range.
    FixedRange(i64, i64),
}

impl ParamGen {
    fn draw(&self, rng: &mut StdRng) -> (i64, i64) {
        match *self {
            ParamGen::Eq { lo, hi } => {
                let v = rng.gen_range(lo..=hi);
                (v, v)
            }
            ParamGen::EqZipf { n, s } => {
                let sampler = dba_storage::gen::ZipfSampler::new(n, s);
                let v = sampler.sample(rng) as i64;
                (v, v)
            }
            ParamGen::Range { lo, hi, width } => {
                let max_start = (hi - width).max(lo);
                let start = rng.gen_range(lo..=max_start);
                (start, start + width)
            }
            ParamGen::FixedEq(v) => (v, v),
            ParamGen::FixedRange(lo, hi) => (lo, hi),
        }
    }
}

/// A parameterised query template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateSpec {
    pub id: TemplateId,
    pub preds: Vec<(ColumnRef, ParamGen)>,
    pub joins: Vec<(ColumnRef, ColumnRef)>,
    pub payload: Vec<ColumnRef>,
    pub aggregated: bool,
}

impl TemplateSpec {
    /// Bind parameters for `round` and intern column references against the
    /// catalog, producing an executable [`Query`].
    pub fn instantiate(
        &self,
        catalog: &Catalog,
        qid: QueryId,
        seed: u64,
        round: u64,
    ) -> DbResult<Query> {
        let mut rng = rng_for(seed, "params", ((self.id.raw() as u64) << 24) ^ round);
        let mut tables: Vec<TableId> = Vec::new();
        let note_table = |t: TableId, tables: &mut Vec<TableId>| {
            if !tables.contains(&t) {
                tables.push(t);
            }
        };

        let mut predicates = Vec::with_capacity(self.preds.len());
        for (cref, gen) in &self.preds {
            let col = resolve(catalog, cref)?;
            note_table(col.table, &mut tables);
            let (lo, hi) = gen.draw(&mut rng);
            predicates.push(Predicate::range(col, lo, hi));
        }

        let mut joins = Vec::with_capacity(self.joins.len());
        for (l, r) in &self.joins {
            let lc = resolve(catalog, l)?;
            let rc = resolve(catalog, r)?;
            note_table(lc.table, &mut tables);
            note_table(rc.table, &mut tables);
            joins.push(JoinPred::new(lc, rc));
        }

        let mut payload = Vec::with_capacity(self.payload.len());
        for p in &self.payload {
            let col = resolve(catalog, p)?;
            note_table(col.table, &mut tables);
            payload.push(col);
        }

        Ok(Query {
            id: qid,
            template: self.id,
            tables,
            predicates,
            joins,
            payload,
            aggregated: self.aggregated,
        })
    }
}

fn resolve(catalog: &Catalog, cref: &ColumnRef) -> DbResult<dba_common::ColumnId> {
    let table = catalog.table_by_name(&cref.table)?;
    let (ordinal, _) =
        table
            .column_by_name(&cref.column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: cref.table.clone(),
                column: cref.column.clone(),
            })?;
    Ok(dba_common::ColumnId::new(table.id(), ordinal))
}

/// A complete benchmark at a concrete scale factor: schema (with resolved
/// row counts — foreign-key domains depend on parent sizes) + templates.
#[derive(Debug, Clone)]
pub struct Benchmark {
    pub name: &'static str,
    /// Scale factor this instance was constructed for.
    pub scale_factor: f64,
    tables: Vec<(TableSchema, usize)>,
    templates: Vec<TemplateSpec>,
}

impl Benchmark {
    pub fn new(
        name: &'static str,
        scale_factor: f64,
        tables: Vec<(TableSchema, usize)>,
        templates: Vec<TemplateSpec>,
    ) -> Self {
        Benchmark {
            name,
            scale_factor,
            tables,
            templates,
        }
    }

    pub fn templates(&self) -> &[TemplateSpec] {
        &self.templates
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Row count of a named table (template construction helper).
    pub fn rows_of(&self, table: &str) -> Option<usize> {
        self.tables
            .iter()
            .find(|(s, _)| s.name == table)
            .map(|&(_, rows)| rows)
    }

    /// Generate all tables with the experiment seed.
    pub fn build_catalog(&self, seed: u64) -> DbResult<Catalog> {
        let tables = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, (schema, rows))| {
                TableBuilder::new(schema.clone(), *rows).build(TableId(i as u32), seed)
            })
            .collect();
        Ok(Catalog::new(tables))
    }
}

/// Shorthand for building a [`ColumnRef`].
pub fn col(table: &str, column: &str) -> ColumnRef {
    ColumnRef::new(table, column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_storage::{ColumnSpec, ColumnType, Distribution};

    fn tiny_benchmark() -> Benchmark {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "b",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 999 },
                ),
            ],
        );
        let template = TemplateSpec {
            id: TemplateId(1),
            preds: vec![(col("t", "b"), ParamGen::Eq { lo: 0, hi: 999 })],
            joins: vec![],
            payload: vec![col("t", "a")],
            aggregated: false,
        };
        Benchmark::new(
            "tiny",
            1.0,
            vec![(t, RowCount::PerSf(100_000).rows(1.0))],
            vec![template],
        )
    }

    #[test]
    fn row_count_scaling() {
        assert_eq!(RowCount::PerSf(6_000_000).rows(10.0), 600_000);
        assert_eq!(RowCount::PerSf(6_000_000).rows(1.0), 60_000);
        assert_eq!(RowCount::PerSf(100).rows(1.0), 8, "floor at 8 rows");
        assert_eq!(RowCount::Fixed(250).rows(100.0), 250);
    }

    #[test]
    fn catalog_builds_at_scale() {
        let b = tiny_benchmark();
        let cat = b.build_catalog(7).unwrap();
        assert_eq!(cat.table(TableId(0)).rows(), 1000);
        assert_eq!(b.rows_of("t"), Some(1000));
        assert_eq!(b.rows_of("missing"), None);
    }

    #[test]
    fn instances_vary_by_round_but_are_deterministic() {
        let b = tiny_benchmark();
        let cat = b.build_catalog(7).unwrap();
        let t = &b.templates()[0];
        let q1 = t.instantiate(&cat, QueryId(0), 7, 1).unwrap();
        let q1_again = t.instantiate(&cat, QueryId(0), 7, 1).unwrap();
        let q2 = t.instantiate(&cat, QueryId(1), 7, 2).unwrap();
        assert_eq!(q1.predicates, q1_again.predicates, "deterministic");
        assert_ne!(
            q1.predicates, q2.predicates,
            "different round, different instance"
        );
        assert_eq!(q1.template, q2.template);
    }

    #[test]
    fn unknown_columns_error_cleanly() {
        let b = tiny_benchmark();
        let cat = b.build_catalog(7).unwrap();
        let bad = TemplateSpec {
            id: TemplateId(2),
            preds: vec![(col("t", "zzz"), ParamGen::FixedEq(1))],
            joins: vec![],
            payload: vec![],
            aggregated: false,
        };
        assert!(matches!(
            bad.instantiate(&cat, QueryId(0), 7, 0),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn param_gens_respect_bounds() {
        let mut rng = rng_for(1, "test", 0);
        for _ in 0..200 {
            let (lo, hi) = ParamGen::Eq { lo: 5, hi: 10 }.draw(&mut rng);
            assert_eq!(lo, hi);
            assert!((5..=10).contains(&lo));
            let (lo, hi) = ParamGen::Range {
                lo: 0,
                hi: 100,
                width: 20,
            }
            .draw(&mut rng);
            assert_eq!(hi - lo, 20);
            assert!(lo >= 0 && hi <= 100);
            let (lo, hi) = ParamGen::EqZipf { n: 50, s: 2.0 }.draw(&mut rng);
            assert_eq!(lo, hi);
            assert!((0..50).contains(&lo));
        }
        assert_eq!(ParamGen::FixedEq(9).draw(&mut rng), (9, 9));
        assert_eq!(ParamGen::FixedRange(1, 5).draw(&mut rng), (1, 5));
    }
}
