//! Workload sequencers: the paper's three workload types (§V-A).
//!
//! * **Static** — every template invoked once per round (reporting
//!   workloads); 25 rounds in the paper.
//! * **Dynamic shifting** — templates split into 4 disjoint groups; each
//!   group runs for 20 rounds, then the region of interest moves on (data
//!   exploration); 80 rounds total.
//! * **Dynamic random** — a fixed number of template draws per round,
//!   uniformly at random (ad-hoc cloud workloads); the paper reports
//!   45-54% round-to-round repeat rates, which uniform draws reproduce.

use dba_common::{rng::rng_for, DbResult, QueryId};
use dba_engine::Query;
use dba_storage::Catalog;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::spec::Benchmark;

/// The three workload types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Every template once per round.
    Static { rounds: usize },
    /// `groups` disjoint template groups × `rounds_per_group` rounds each.
    Shifting {
        groups: usize,
        rounds_per_group: usize,
    },
    /// `queries_per_round` uniform template draws per round.
    Random {
        rounds: usize,
        queries_per_round: usize,
    },
}

impl WorkloadKind {
    /// The paper's configuration for each type.
    pub fn paper_static() -> Self {
        WorkloadKind::Static { rounds: 25 }
    }

    pub fn paper_shifting() -> Self {
        WorkloadKind::Shifting {
            groups: 4,
            rounds_per_group: 20,
        }
    }

    pub fn paper_random(templates: usize) -> Self {
        WorkloadKind::Random {
            rounds: 25,
            queries_per_round: templates,
        }
    }

    /// Short label used in reports ("static" / "shifting" / "random").
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Static { .. } => "static",
            WorkloadKind::Shifting { .. } => "shifting",
            WorkloadKind::Random { .. } => "random",
        }
    }

    pub fn rounds(&self) -> usize {
        match *self {
            WorkloadKind::Static { rounds } => rounds,
            WorkloadKind::Shifting {
                groups,
                rounds_per_group,
            } => groups * rounds_per_group,
            WorkloadKind::Random { rounds, .. } => rounds,
        }
    }
}

/// Produces each round's mini-workload for a benchmark.
pub struct WorkloadSequencer<'a> {
    benchmark: &'a Benchmark,
    kind: WorkloadKind,
    seed: u64,
    /// Template order for the shifting workload (seeded shuffle); borrowed
    /// when reconstructed from a previously computed order.
    shuffled: std::borrow::Cow<'a, [usize]>,
}

impl<'a> WorkloadSequencer<'a> {
    pub fn new(benchmark: &'a Benchmark, kind: WorkloadKind, seed: u64) -> Self {
        let mut shuffled: Vec<usize> = (0..benchmark.templates().len()).collect();
        let mut rng = rng_for(seed, "shift-groups", 0);
        shuffled.shuffle(&mut rng);
        WorkloadSequencer {
            benchmark,
            kind,
            seed,
            shuffled: std::borrow::Cow::Owned(shuffled),
        }
    }

    /// Reconstruct a sequencer from a previously computed template order
    /// (see [`order`](Self::order)) without re-shuffling or allocating.
    /// Drivers that rebuild the sequencer per round use this to keep round
    /// generation cheap and independent of shuffle implementation details.
    pub fn with_order(
        benchmark: &'a Benchmark,
        kind: WorkloadKind,
        seed: u64,
        shuffled: &'a [usize],
    ) -> Self {
        debug_assert_eq!(shuffled.len(), benchmark.templates().len());
        WorkloadSequencer {
            benchmark,
            kind,
            seed,
            shuffled: std::borrow::Cow::Borrowed(shuffled),
        }
    }

    /// The seeded template order backing the shifting workload's groups.
    pub fn order(&self) -> &[usize] {
        &self.shuffled
    }

    pub fn benchmark(&self) -> &Benchmark {
        self.benchmark
    }

    pub fn rounds(&self) -> usize {
        self.kind.rounds()
    }

    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Template indices (into `benchmark.templates()`) for `round`
    /// (0-based).
    pub(crate) fn template_indices(&self, round: usize) -> Vec<usize> {
        let n = self.benchmark.templates().len();
        match self.kind {
            WorkloadKind::Static { .. } => (0..n).collect(),
            WorkloadKind::Shifting {
                groups,
                rounds_per_group,
            } => {
                // Clamp the group count to the template count: with more
                // groups than templates no partition can give every group a
                // template — extra groups replay the last real group
                // instead. (`SessionBuilder` rejects such configurations up
                // front; this keeps direct sequencer users safe.)
                let groups = groups.clamp(1, n.max(1));
                let group = (round / rounds_per_group.max(1)).min(groups - 1);
                // Balanced partition: group `g` takes [g·n/groups,
                // (g+1)·n/groups). Unlike the old ceil-sized slicing — which
                // exhausted the range early and left trailing groups empty
                // (e.g. 22 templates ÷ 12 groups of ceil = 2 starved group
                // 11) — every group is non-empty whenever groups ≤ n.
                let start = group * n / groups;
                let end = (group + 1) * n / groups;
                self.shuffled[start..end].to_vec()
            }
            WorkloadKind::Random {
                queries_per_round, ..
            } => {
                let mut rng = rng_for(self.seed, "random-round", round as u64);
                (0..queries_per_round)
                    .map(|_| rng.gen_range(0..n))
                    .collect()
            }
        }
    }

    /// Instantiate round `round` (0-based) against the catalog.
    pub fn round_queries(&self, catalog: &Catalog, round: usize) -> DbResult<Vec<Query>> {
        let indices = self.template_indices(round);
        indices
            .iter()
            .enumerate()
            .map(|(pos, &ti)| {
                let template = &self.benchmark.templates()[ti];
                let qid = QueryId(((round as u64) << 20) | pos as u64);
                template.instantiate(catalog, qid, self.seed, round as u64)
            })
            .collect()
    }

    /// Distinct template ids appearing in `round` (cheap, no catalog).
    pub fn round_template_ids(&self, round: usize) -> Vec<dba_common::TemplateId> {
        let mut ids: Vec<_> = self
            .template_indices(round)
            .into_iter()
            .map(|i| self.benchmark.templates()[i].id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::tpch;

    #[test]
    fn static_runs_every_template_every_round() {
        let b = tpch(0.05);
        let cat = b.build_catalog(5).unwrap();
        let seq = WorkloadSequencer::new(&b, WorkloadKind::paper_static(), 5);
        assert_eq!(seq.rounds(), 25);
        for round in [0, 7, 24] {
            let qs = seq.round_queries(&cat, round).unwrap();
            assert_eq!(qs.len(), 22);
            let ids = seq.round_template_ids(round);
            assert_eq!(ids.len(), 22);
        }
    }

    #[test]
    fn static_instances_differ_across_rounds() {
        let b = tpch(0.05);
        let cat = b.build_catalog(5).unwrap();
        let seq = WorkloadSequencer::new(&b, WorkloadKind::paper_static(), 5);
        let r0 = seq.round_queries(&cat, 0).unwrap();
        let r1 = seq.round_queries(&cat, 1).unwrap();
        let diffs = r0
            .iter()
            .zip(&r1)
            .filter(|(a, b)| a.predicates != b.predicates)
            .count();
        assert!(diffs > 15, "most templates should rebind parameters");
    }

    #[test]
    fn shifting_groups_are_disjoint_and_cover_all() {
        let b = tpch(0.05);
        let seq = WorkloadSequencer::new(&b, WorkloadKind::paper_shifting(), 5);
        assert_eq!(seq.rounds(), 80);
        let mut all = Vec::new();
        for g in 0..4 {
            let ids = seq.round_template_ids(g * 20);
            // Same group throughout its 20 rounds.
            assert_eq!(ids, seq.round_template_ids(g * 20 + 19));
            all.extend(ids);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 22, "groups cover all templates exactly once");
    }

    #[test]
    fn shifting_with_more_groups_than_templates_never_emits_empty_rounds() {
        // Regression: groups > templates used to slice past the shuffled
        // range, producing empty rounds (and panics for later groups).
        let b = tpch(0.05); // 22 templates
        let kind = WorkloadKind::Shifting {
            groups: 30,
            rounds_per_group: 2,
        };
        let seq = WorkloadSequencer::new(&b, kind, 5);
        let cat = b.build_catalog(5).unwrap();
        for round in 0..kind.rounds() {
            let ids = seq.round_template_ids(round);
            assert!(!ids.is_empty(), "round {round} must not be empty");
            let qs = seq.round_queries(&cat, round).unwrap();
            assert_eq!(qs.len(), ids.len());
        }
    }

    #[test]
    fn shifting_partition_fills_every_group() {
        // Regression: ceil-sized groups exhausted the templates early, so
        // configurations like 22 templates ÷ 12 groups (valid — fewer
        // groups than templates!) starved the last group and emitted empty
        // rounds. The balanced partition must give every group ≥1 template
        // and still cover all templates exactly once.
        let b = tpch(0.05); // 22 templates
        for groups in [3usize, 5, 7, 11, 12, 21, 22] {
            let kind = WorkloadKind::Shifting {
                groups,
                rounds_per_group: 2,
            };
            let seq = WorkloadSequencer::new(&b, kind, 5);
            let mut all = Vec::new();
            for g in 0..groups {
                let ids = seq.round_template_ids(g * 2);
                assert!(!ids.is_empty(), "{groups} groups: group {g} empty");
                all.extend(ids);
            }
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 22, "{groups} groups must cover everything");
        }
    }

    #[test]
    fn shifting_boundary_changes_group() {
        let b = tpch(0.05);
        let seq = WorkloadSequencer::new(&b, WorkloadKind::paper_shifting(), 5);
        assert_ne!(seq.round_template_ids(19), seq.round_template_ids(20));
    }

    #[test]
    fn random_repeat_rate_is_paperlike() {
        let b = tpch(0.05);
        let seq = WorkloadSequencer::new(&b, WorkloadKind::paper_random(22), 5);
        // Measure round-to-round template repeat fraction.
        let mut repeats = 0.0;
        let mut total = 0.0;
        for round in 1..25 {
            let prev = seq.round_template_ids(round - 1);
            let cur = seq.round_template_ids(round);
            let inter = cur.iter().filter(|t| prev.contains(t)).count();
            repeats += inter as f64;
            total += cur.len() as f64;
        }
        let rate = repeats / total;
        assert!(
            (0.40..=0.75).contains(&rate),
            "repeat rate {rate} out of plausible band"
        );
    }

    #[test]
    fn sequencer_is_deterministic_per_seed() {
        let b = tpch(0.05);
        let s1 = WorkloadSequencer::new(&b, WorkloadKind::paper_random(10), 5);
        let s2 = WorkloadSequencer::new(&b, WorkloadKind::paper_random(10), 5);
        let s3 = WorkloadSequencer::new(&b, WorkloadKind::paper_random(10), 6);
        assert_eq!(s1.round_template_ids(3), s2.round_template_ids(3));
        assert_ne!(s1.round_template_ids(3), s3.round_template_ids(3));
    }
}
