//! Data-change (HTAP-style drift) specifications.
//!
//! The paper evaluates read-only analytical rounds; its follow-up (*No
//! DBA? No regret!*, Perera et al.) shows the same bandit machinery must
//! charge index maintenance under **data change** to stay safe. A
//! [`DataDrift`] describes, per table and per round, which fraction of the
//! live rows is inserted, updated and deleted — the refresh-stream shape
//! of TPC-H (RF1/RF2 touch `orders`/`lineitem`) generalised to arbitrary
//! churn mixes.
//!
//! Rates are *fractions of the current live row count per round*, so an
//! insert-heavy table compounds: 2% inserts over 25 rounds grow the heap
//! by ~64%. The concrete per-round row counts are drawn deterministically
//! from the experiment seed with a small jitter, mirroring how the query
//! side binds template parameters.

use dba_common::{rng::rng_for, DbError, DbResult, TableId};
use dba_storage::Catalog;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-round change rates for one table, as fractions of live rows.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DriftRates {
    pub insert: f64,
    pub update: f64,
    pub delete: f64,
}

impl DriftRates {
    pub const ZERO: DriftRates = DriftRates {
        insert: 0.0,
        update: 0.0,
        delete: 0.0,
    };

    pub fn new(insert: f64, update: f64, delete: f64) -> Self {
        DriftRates {
            insert,
            update,
            delete,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.insert == 0.0 && self.update == 0.0 && self.delete == 0.0
    }

    fn validate(&self, context: &str) -> DbResult<()> {
        for (name, v) in [
            ("insert", self.insert),
            ("update", self.update),
            ("delete", self.delete),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(DbError::Invalid(format!(
                    "data drift: {context} {name} rate {v} must be a finite fraction in [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Concrete row-version deltas for one table in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDelta {
    pub table: TableId,
    pub inserted: u64,
    pub updated: u64,
    pub deleted: u64,
}

impl TableDelta {
    pub fn rows_changed(&self) -> u64 {
        self.inserted + self.updated + self.deleted
    }
}

/// A data-change scenario: default rates for every table plus per-table
/// overrides (by table name, resolved against the session's catalog).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataDrift {
    /// Rates applied to tables without an override.
    pub default: DriftRates,
    /// `(table name, rates)` overrides.
    pub per_table: Vec<(String, DriftRates)>,
}

impl DataDrift {
    /// No data change at all (read-only rounds, the paper's setting).
    pub fn none() -> Self {
        DataDrift {
            default: DriftRates::ZERO,
            per_table: Vec::new(),
        }
    }

    /// The same churn on every table.
    pub fn uniform(rates: DriftRates) -> Self {
        DataDrift {
            default: rates,
            per_table: Vec::new(),
        }
    }

    /// TPC-H refresh-stream-style deltas: `orders` and `lineitem` take
    /// paired inserts (RF1) and deletes (RF2) each round, `lineitem` also
    /// sees in-place updates (late shipments); dimensions stay static.
    /// Rates are scaled up from the spec's 0.1% per stream so churn is
    /// visible within a 25-round session.
    pub fn tpch_refresh() -> Self {
        DataDrift {
            default: DriftRates::ZERO,
            per_table: vec![
                ("orders".to_string(), DriftRates::new(0.02, 0.0, 0.02)),
                ("lineitem".to_string(), DriftRates::new(0.02, 0.01, 0.02)),
            ],
        }
    }

    /// Override the rates of one table (builder-style).
    pub fn with_table(mut self, table: impl Into<String>, rates: DriftRates) -> Self {
        self.per_table.push((table.into(), rates));
        self
    }

    /// Whether this spec never changes any data.
    pub fn is_none(&self) -> bool {
        self.default.is_zero() && self.per_table.iter().all(|(_, r)| r.is_zero())
    }

    /// Effective rates for a table name.
    pub fn rates_for(&self, table: &str) -> DriftRates {
        self.per_table
            .iter()
            .find(|(name, _)| name == table)
            .map(|&(_, rates)| rates)
            .unwrap_or(self.default)
    }

    /// Check every rate is a finite fraction and every override names a
    /// table of `catalog`.
    pub fn validate(&self, catalog: &Catalog) -> DbResult<()> {
        self.default.validate("default")?;
        for (name, rates) in &self.per_table {
            rates.validate(name)?;
            catalog.table_by_name(name)?;
        }
        Ok(())
    }

    /// The concrete deltas round `round` (0-based) applies to `catalog`,
    /// deterministic in `seed` with ±20% jitter around the configured
    /// rates. Tables whose delta is empty are omitted.
    pub fn deltas_for_round(&self, catalog: &Catalog, seed: u64, round: usize) -> Vec<TableDelta> {
        if self.is_none() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for table in catalog.tables() {
            let rates = self.rates_for(table.name());
            if rates.is_zero() {
                continue;
            }
            let live = catalog.live_rows(table.id()) as f64;
            let mut rng = rng_for(
                seed,
                "data-drift",
                ((table.id().raw() as u64) << 32) | round as u64,
            );
            let mut draw = |rate: f64| -> u64 {
                if rate <= 0.0 {
                    return 0;
                }
                let jitter: f64 = rng.gen_range(0.8f64..=1.2);
                // At least one row changes whenever the rate is nonzero, so
                // a drifted round always has a nonzero maintenance bill.
                (live * rate * jitter).round().max(1.0) as u64
            };
            let delta = TableDelta {
                table: table.id(),
                inserted: draw(rates.insert),
                updated: draw(rates.update),
                deleted: draw(rates.delete),
            };
            if delta.rows_changed() > 0 {
                out.push(delta);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::tpch;

    #[test]
    fn none_produces_no_deltas() {
        let b = tpch(0.02);
        let cat = b.build_catalog(1).unwrap();
        let drift = DataDrift::none();
        assert!(drift.is_none());
        assert!(drift.deltas_for_round(&cat, 1, 0).is_empty());
    }

    #[test]
    fn tpch_refresh_touches_only_orders_and_lineitem() {
        let b = tpch(0.02);
        let cat = b.build_catalog(1).unwrap();
        let drift = DataDrift::tpch_refresh();
        drift.validate(&cat).unwrap();
        let deltas = drift.deltas_for_round(&cat, 7, 0);
        assert_eq!(deltas.len(), 2);
        let orders = cat.table_by_name("orders").unwrap().id();
        let lineitem = cat.table_by_name("lineitem").unwrap().id();
        for d in &deltas {
            assert!(d.table == orders || d.table == lineitem);
            assert!(d.inserted > 0 && d.deleted > 0);
        }
        // lineitem also takes updates; orders does not.
        assert!(deltas.iter().any(|d| d.table == lineitem && d.updated > 0));
        assert!(deltas.iter().any(|d| d.table == orders && d.updated == 0));
    }

    #[test]
    fn deltas_are_deterministic_per_seed_and_round() {
        let b = tpch(0.02);
        let cat = b.build_catalog(1).unwrap();
        let drift = DataDrift::tpch_refresh();
        assert_eq!(
            drift.deltas_for_round(&cat, 7, 3),
            drift.deltas_for_round(&cat, 7, 3)
        );
        // Different seeds (or rounds) jitter differently somewhere within a
        // handful of rounds — on tiny tables a single round can coincide.
        let trace = |seed: u64, offset: usize| -> Vec<TableDelta> {
            (0..8)
                .flat_map(|r| drift.deltas_for_round(&cat, seed, r + offset))
                .collect()
        };
        assert_eq!(trace(7, 0), trace(7, 0));
        assert_ne!(trace(7, 0), trace(8, 0));
        assert_ne!(trace(7, 0), trace(7, 8));
    }

    #[test]
    fn deltas_scale_with_live_rows() {
        let b = tpch(0.05);
        let mut cat = b.build_catalog(1).unwrap();
        let drift = DataDrift::uniform(DriftRates::new(0.05, 0.0, 0.0));
        let lineitem = cat.table_by_name("lineitem").unwrap().id();
        let before = drift
            .deltas_for_round(&cat, 7, 0)
            .iter()
            .find(|d| d.table == lineitem)
            .unwrap()
            .inserted;
        // Grow lineitem 10×: the same rates now move ~10× more rows.
        cat.apply_drift(lineitem, cat.live_rows(lineitem) * 9, 0, 0);
        let after = drift
            .deltas_for_round(&cat, 7, 0)
            .iter()
            .find(|d| d.table == lineitem)
            .unwrap()
            .inserted;
        assert!(after > before * 5, "{after} vs {before}");
    }

    #[test]
    fn validate_rejects_bad_rates_and_unknown_tables() {
        let b = tpch(0.02);
        let cat = b.build_catalog(1).unwrap();
        let bad_rate = DataDrift::uniform(DriftRates::new(-0.1, 0.0, 0.0));
        assert!(bad_rate.validate(&cat).is_err());
        let nan_rate = DataDrift::uniform(DriftRates::new(f64::NAN, 0.0, 0.0));
        assert!(nan_rate.validate(&cat).is_err());
        let too_big = DataDrift::uniform(DriftRates::new(0.0, 1.5, 0.0));
        assert!(too_big.validate(&cat).is_err());
        let unknown = DataDrift::none().with_table("no_such_table", DriftRates::new(0.1, 0.0, 0.0));
        assert!(unknown.validate(&cat).is_err());
        assert!(DataDrift::tpch_refresh().validate(&cat).is_ok());
    }

    #[test]
    fn nonzero_rate_always_changes_at_least_one_row() {
        let b = tpch(0.02);
        let cat = b.build_catalog(1).unwrap();
        // A tiny rate on a tiny table still rounds up to one row.
        let drift = DataDrift::none().with_table("nation", DriftRates::new(1e-9, 0.0, 0.0));
        let nation = cat.table_by_name("nation").unwrap().id();
        let deltas = drift.deltas_for_round(&cat, 1, 0);
        let d = deltas.iter().find(|d| d.table == nation).unwrap();
        assert_eq!(d.inserted, 1);
    }
}
