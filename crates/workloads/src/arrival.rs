//! Streaming arrival processes: continuous query arrival in mini-batch
//! observation windows, replacing the fixed round-batch model.
//!
//! The journal extension "No DBA? No regret!" moves the paper's tuner from
//! fixed rounds to online observation windows; this module supplies the
//! arrival side of that regime. An [`ArrivalProcess`] slices each workload
//! round into `windows_per_round` windows of `window_secs` simulated
//! seconds and draws per-template arrival *counts* for every window —
//! Poisson traffic at a configured rate, optionally with periodic flash
//! crowds ([`ArrivalProcess::Bursty`]) that multiply the rate and widen the
//! template mix to the whole benchmark. Windows carry `(template, count)`
//! histograms rather than materialised query instances, so a window can
//! represent tens of thousands of arrivals while the session executes one
//! bound instance per distinct template and scales by count.
//!
//! Everything is seeded through the workspace's deterministic RNG fan-out
//! (`rng_for(seed, "arrival-window", w)`), so schedules are reproducible
//! and thread-count independent.

use dba_common::{rng::rng_for, DbResult, QueryId, SimSeconds};
use dba_engine::Query;
use dba_storage::Catalog;
use rand::Rng;
use std::str::FromStr;

use crate::sequence::WorkloadSequencer;

/// How queries arrive at the tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// The paper's fixed-round model: one window per round containing the
    /// round's positional template list, one arrival each. A streaming
    /// session driven by `RoundBatch` reproduces the round-batch
    /// trajectory exactly.
    RoundBatch,
    /// Homogeneous Poisson arrivals at `rate_per_min`, observed in
    /// `windows_per_round` windows of `window_secs` simulated seconds per
    /// workload round. Arrivals in a window draw only from the round's
    /// active template set.
    Poisson {
        rate_per_min: f64,
        window_secs: f64,
        windows_per_round: usize,
    },
    /// Poisson background traffic with periodic flash crowds: every
    /// `burst_period` windows, the final `burst_len` windows run at
    /// `burst_factor`× the base rate and draw from the *entire* template
    /// universe instead of the round's active set — the ad-hoc spike that
    /// balloons the tuner's queries-of-interest.
    Bursty {
        rate_per_min: f64,
        window_secs: f64,
        windows_per_round: usize,
        burst_factor: f64,
        burst_period: usize,
        burst_len: usize,
    },
}

impl ArrivalProcess {
    /// Steady Poisson traffic at 1.2M queries/min in 3-second windows —
    /// the preset behind `fig_stream`'s sustained-throughput claim.
    pub fn paper_poisson() -> Self {
        ArrivalProcess::Poisson {
            rate_per_min: 1_200_000.0,
            window_secs: 3.0,
            windows_per_round: 8,
        }
    }

    /// The Poisson preset plus a 6× flash crowd over the full template
    /// universe in the last 2 of every 10 windows — the preset that must
    /// blow the recommend budget and engage the degrade ladder.
    pub fn paper_bursty() -> Self {
        ArrivalProcess::Bursty {
            rate_per_min: 1_200_000.0,
            window_secs: 3.0,
            windows_per_round: 8,
            burst_factor: 6.0,
            burst_period: 10,
            burst_len: 2,
        }
    }

    /// Short label used in reports and env parsing.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::RoundBatch => "roundbatch",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    pub fn is_round_batch(&self) -> bool {
        matches!(self, ArrivalProcess::RoundBatch)
    }

    /// Windows per workload round (1 for `RoundBatch`).
    pub fn windows_per_round(&self) -> usize {
        match *self {
            ArrivalProcess::RoundBatch => 1,
            ArrivalProcess::Poisson {
                windows_per_round, ..
            }
            | ArrivalProcess::Bursty {
                windows_per_round, ..
            } => windows_per_round.max(1),
        }
    }

    /// Simulated duration of one window. `RoundBatch` windows are
    /// durationless — the fixed-round model has no arrival clock.
    pub fn window_duration(&self) -> SimSeconds {
        match *self {
            ArrivalProcess::RoundBatch => SimSeconds::ZERO,
            ArrivalProcess::Poisson { window_secs, .. }
            | ArrivalProcess::Bursty { window_secs, .. } => SimSeconds::new(window_secs),
        }
    }

    /// Expected arrivals in window `w` (rate × duration × burst factor).
    fn window_lambda(&self, w: usize) -> f64 {
        match *self {
            ArrivalProcess::RoundBatch => 0.0,
            ArrivalProcess::Poisson {
                rate_per_min,
                window_secs,
                ..
            } => rate_per_min * window_secs / 60.0,
            ArrivalProcess::Bursty {
                rate_per_min,
                window_secs,
                burst_factor,
                ..
            } => {
                let base = rate_per_min * window_secs / 60.0;
                if self.is_burst_window(w) {
                    base * burst_factor
                } else {
                    base
                }
            }
        }
    }

    /// Whether window `w` falls in a flash crowd: the last `burst_len`
    /// windows of every `burst_period`-window cycle. Window 0 is never a
    /// burst (it carries the tuner's one-off setup charge).
    pub fn is_burst_window(&self, w: usize) -> bool {
        match *self {
            ArrivalProcess::Bursty {
                burst_period,
                burst_len,
                ..
            } => {
                let period = burst_period.max(1);
                let len = burst_len.min(period.saturating_sub(1));
                w % period >= period - len
            }
            _ => false,
        }
    }
}

impl FromStr for ArrivalProcess {
    type Err = String;

    /// Parse a preset name (the `DBA_ARRIVAL` env format): `roundbatch`,
    /// `poisson`, or `bursty`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "roundbatch" | "round-batch" | "round_batch" => Ok(ArrivalProcess::RoundBatch),
            "poisson" => Ok(ArrivalProcess::paper_poisson()),
            "bursty" => Ok(ArrivalProcess::paper_bursty()),
            other => Err(format!(
                "unknown arrival process {other:?} (expected roundbatch | poisson | bursty)"
            )),
        }
    }
}

/// One observation window: which round it belongs to, how long it spans,
/// and the per-template arrival histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalWindow {
    /// Global window index (0-based).
    pub window: usize,
    /// The workload round this window falls in (drives shifting groups).
    pub round: usize,
    /// Simulated span of the window.
    pub duration: SimSeconds,
    /// Whether this window is part of a flash crowd.
    pub burst: bool,
    /// True on the last window of each round: data drift and workload
    /// shifts apply after this window, exactly where the round-batch
    /// model applies them.
    pub round_boundary: bool,
    /// `(template index, arrival count)` pairs. `RoundBatch` windows list
    /// the round's templates positionally (count 1 each, duplicates
    /// preserved); streaming windows aggregate one entry per distinct
    /// template with count ≥ 1.
    pub arrivals: Vec<(usize, u64)>,
}

impl ArrivalWindow {
    /// Total queries arriving in this window.
    pub fn total_arrivals(&self) -> u64 {
        self.arrivals.iter().map(|&(_, c)| c).sum()
    }
}

/// A deterministic window schedule over a [`WorkloadSequencer`].
pub struct ArrivalSchedule<'a> {
    seq: WorkloadSequencer<'a>,
    process: ArrivalProcess,
    seed: u64,
}

impl<'a> ArrivalSchedule<'a> {
    pub fn new(seq: WorkloadSequencer<'a>, process: ArrivalProcess, seed: u64) -> Self {
        ArrivalSchedule { seq, process, seed }
    }

    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    pub fn sequencer(&self) -> &WorkloadSequencer<'a> {
        &self.seq
    }

    /// Total windows across the workload's rounds.
    pub fn windows_total(&self) -> usize {
        self.seq.rounds() * self.process.windows_per_round()
    }

    /// Materialise window `w`'s arrival histogram.
    pub fn window(&self, w: usize) -> ArrivalWindow {
        let wpr = self.process.windows_per_round();
        let round = w / wpr;
        let phase = w % wpr;
        let burst = self.process.is_burst_window(w);
        let arrivals = if self.process.is_round_batch() {
            // Positional, count-1, duplicates preserved: byte-for-byte the
            // round-batch workload (Random rounds repeat templates).
            self.seq
                .template_indices(round)
                .into_iter()
                .map(|ti| (ti, 1))
                .collect()
        } else {
            // Flash crowds hit the whole template universe; steady traffic
            // stays inside the round's active set. Candidates are sorted
            // and deduped so counts attach to distinct templates in a
            // stable order regardless of how the sequencer listed them.
            let n = self.seq.benchmark().templates().len();
            let mut candidates: Vec<usize> = if burst {
                (0..n).collect()
            } else {
                self.seq.template_indices(round)
            };
            candidates.sort_unstable();
            candidates.dedup();
            let lambda_each = self.process.window_lambda(w) / candidates.len().max(1) as f64;
            // Independent per-template Poisson draws sum to a Poisson
            // window total; one RNG stream per window keeps the schedule
            // independent of who asks for which window when.
            let mut rng = rng_for(self.seed, "arrival-window", w as u64);
            candidates
                .into_iter()
                .map(|ti| (ti, sample_poisson(&mut rng, lambda_each)))
                .filter(|&(_, c)| c > 0)
                .collect()
        };
        ArrivalWindow {
            window: w,
            round,
            duration: self.process.window_duration(),
            burst,
            round_boundary: phase == wpr - 1,
            arrivals,
        }
    }

    /// Instantiate one bound query per arrival entry. Parameter binding
    /// varies per window; the query id packs `(window << 20) | position`,
    /// which for `RoundBatch` (window == round) is exactly the id scheme
    /// of [`WorkloadSequencer::round_queries`].
    pub fn window_queries(
        &self,
        catalog: &Catalog,
        window: &ArrivalWindow,
    ) -> DbResult<Vec<Query>> {
        window
            .arrivals
            .iter()
            .enumerate()
            .map(|(pos, &(ti, _))| {
                let template = &self.seq.benchmark().templates()[ti];
                let qid = QueryId(((window.window as u64) << 20) | pos as u64);
                template.instantiate(catalog, qid, self.seed, window.window as u64)
            })
            .collect()
    }
}

/// Draw from Poisson(λ) without external distribution crates: Knuth's
/// product-of-uniforms for small λ (exact), a rounded normal approximation
/// for large λ where `exp(-λ)` underflows (relative error is negligible at
/// the λ≈10⁴–10⁵ this module runs at).
fn sample_poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    if lambda < 32.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        // Box–Muller; clamp the log argument away from zero.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + lambda.sqrt() * z).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::WorkloadKind;
    use crate::tpch::tpch;

    fn schedule(kind: WorkloadKind, process: ArrivalProcess, seed: u64) -> Vec<ArrivalWindow> {
        let b = tpch(0.05);
        let seq = WorkloadSequencer::new(&b, kind, seed);
        let sched = ArrivalSchedule::new(seq, process, seed);
        (0..sched.windows_total())
            .map(|w| sched.window(w))
            .collect()
    }

    #[test]
    fn roundbatch_windows_equal_round_queries_positionally() {
        // Random workloads repeat templates within a round; the RoundBatch
        // window must preserve those duplicates and their order so the
        // streaming driver reproduces the fixed-round trajectory exactly.
        let b = tpch(0.05);
        let cat = b.build_catalog(7).unwrap();
        let kind = WorkloadKind::Random {
            rounds: 4,
            queries_per_round: 10,
        };
        let seq = WorkloadSequencer::new(&b, kind, 7);
        let reference = WorkloadSequencer::new(&b, kind, 7);
        let sched = ArrivalSchedule::new(seq, ArrivalProcess::RoundBatch, 7);
        assert_eq!(sched.windows_total(), 4);
        for w in 0..4 {
            let window = sched.window(w);
            assert_eq!(window.round, w);
            assert!(window.round_boundary);
            assert!(!window.burst);
            assert_eq!(window.total_arrivals(), 10);
            let expected = reference.round_queries(&cat, w).unwrap();
            let got = sched.window_queries(&cat, &window).unwrap();
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.id, e.id);
                assert_eq!(g.template, e.template);
                assert_eq!(g.predicates, e.predicates);
            }
        }
    }

    #[test]
    fn schedules_are_seed_deterministic_and_seed_sensitive() {
        let kind = WorkloadKind::Shifting {
            groups: 4,
            rounds_per_group: 2,
        };
        let a = schedule(kind, ArrivalProcess::paper_bursty(), 42);
        let b = schedule(kind, ArrivalProcess::paper_bursty(), 42);
        let c = schedule(kind, ArrivalProcess::paper_bursty(), 43);
        assert_eq!(a, b, "same seed must reproduce the schedule bit-for-bit");
        assert_ne!(a, c, "a different seed must draw different arrivals");
    }

    #[test]
    fn burst_windows_sit_at_cycle_ends_and_widen_the_template_mix() {
        let process = ArrivalProcess::paper_bursty();
        let kind = WorkloadKind::Shifting {
            groups: 4,
            rounds_per_group: 2,
        }; // 8 rounds × 8 windows = 64 windows
        let windows = schedule(kind, process, 42);
        assert!(!windows[0].burst, "window 0 must never burst");
        for w in &windows {
            assert_eq!(w.burst, process.is_burst_window(w.window));
            assert_eq!(w.burst, w.window % 10 >= 8);
        }
        let bursts: Vec<_> = windows.iter().filter(|w| w.burst).collect();
        let steady: Vec<_> = windows.iter().filter(|w| !w.burst).collect();
        assert!(!bursts.is_empty());
        // Flash crowds hit the full 22-template universe; steady windows
        // stay inside the round's active group (22 / 4 groups ≈ 5-6).
        for w in &bursts {
            assert_eq!(w.arrivals.len(), 22);
        }
        for w in &steady {
            assert!(
                w.arrivals.len() <= 6,
                "steady window drew {} templates",
                w.arrivals.len()
            );
        }
        // And they actually are crowds: ~6× the steady arrival mass.
        let burst_mean =
            bursts.iter().map(|w| w.total_arrivals()).sum::<u64>() as f64 / bursts.len() as f64;
        let steady_mean =
            steady.iter().map(|w| w.total_arrivals()).sum::<u64>() as f64 / steady.len() as f64;
        let ratio = burst_mean / steady_mean;
        assert!((5.0..7.0).contains(&ratio), "burst ratio {ratio} not ≈ 6");
    }

    #[test]
    fn poisson_rate_and_boundaries_hold() {
        let process = ArrivalProcess::paper_poisson();
        let kind = WorkloadKind::Static { rounds: 3 };
        let windows = schedule(kind, process, 42);
        assert_eq!(windows.len(), 24);
        for w in &windows {
            assert_eq!(w.round, w.window / 8);
            assert_eq!(w.round_boundary, w.window % 8 == 7);
            assert_eq!(w.duration, SimSeconds::new(3.0));
            // λ = 1.2M/min × 3s = 60k; Poisson mass concentrates tightly.
            let total = w.total_arrivals() as f64;
            assert!(
                (55_000.0..65_000.0).contains(&total),
                "window total {total}"
            );
        }
        // Sustained simulated throughput matches the configured rate.
        let arrivals: u64 = windows.iter().map(|w| w.total_arrivals()).sum();
        let minutes: f64 = windows.iter().map(|w| w.duration.minutes()).sum();
        let qpm = arrivals as f64 / minutes;
        assert!((1_150_000.0..1_250_000.0).contains(&qpm), "qpm {qpm}");
    }

    #[test]
    fn poisson_sampler_matches_the_mean_in_both_regimes() {
        let mut rng = rng_for(1, "poisson-selftest", 0);
        for lambda in [4.0, 1_000.0] {
            let n = 400;
            let mean = (0..n)
                .map(|_| sample_poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            let tol = 4.0 * (lambda / n as f64).sqrt();
            assert!((mean - lambda).abs() < tol, "λ={lambda}: mean {mean}");
        }
    }

    #[test]
    fn preset_names_round_trip() {
        for name in ["roundbatch", "poisson", "bursty"] {
            let p: ArrivalProcess = name.parse().unwrap();
            assert_eq!(p.label(), name);
        }
        assert!("nope".parse::<ArrivalProcess>().is_err());
    }
}
