//! TPC-H and TPC-H Skew.
//!
//! The schema carries the columns the 22 query paraphrases touch. TPC-H
//! Skew is identical except that foreign keys and key attribute columns
//! follow zipfian distributions with factor 4 (the Microsoft TPC-H Skew
//! generator setting the paper uses) — most notably `orders.o_custkey`,
//! which drives the paper's Q22 story: the advisor's uniform-fan-out
//! estimate misses the value of an `o_custkey` index that MAB discovers
//! from observed executions.

use dba_common::TemplateId;
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableSchema};

use crate::spec::{col, Benchmark, ParamGen, RowCount, TemplateSpec};

/// Zipfian factor of the skewed variant (§V-A).
pub const SKEW_FACTOR: f64 = 4.0;

/// Days in the order-date domain (1992-01-01 .. 1998-08-02).
const DATE_DOMAIN: i64 = 2405;

/// Uniform TPC-H at scale factor `sf`.
pub fn tpch(sf: f64) -> Benchmark {
    build("TPC-H", sf, None)
}

/// TPC-H Skew (zipfian factor 4) at scale factor `sf`.
pub fn tpch_skew(sf: f64) -> Benchmark {
    build("TPC-H Skew", sf, Some(SKEW_FACTOR))
}

fn fk(parent_rows: usize, skew: Option<f64>) -> Distribution {
    match skew {
        Some(s) => Distribution::FkZipf {
            parent_rows: parent_rows as u64,
            s,
        },
        None => Distribution::FkUniform {
            parent_rows: parent_rows as u64,
        },
    }
}

fn build(name: &'static str, sf: f64, skew: Option<f64>) -> Benchmark {
    let customers = RowCount::PerSf(150_000).rows(sf);
    let orders = RowCount::PerSf(1_500_000).rows(sf);
    let lineitems = RowCount::PerSf(6_000_000).rows(sf);
    let parts = RowCount::PerSf(200_000).rows(sf);
    let suppliers = RowCount::PerSf(10_000).rows(sf);
    let partsupps = RowCount::PerSf(800_000).rows(sf);

    let customer = TableSchema::new(
        "customer",
        vec![
            ColumnSpec::new("c_custkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "c_nationkey",
                ColumnType::Int,
                Distribution::FkUniform { parent_rows: 25 },
            ),
            ColumnSpec::new(
                "c_mktsegment",
                ColumnType::Dict { cardinality: 5 },
                Distribution::Uniform { lo: 0, hi: 4 },
            ),
            ColumnSpec::new(
                "c_acctbal",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: -99_999,
                    hi: 999_999,
                },
            ),
            // Country calling code (leading digits of c_phone; Q22).
            ColumnSpec::new(
                "c_phone_cc",
                ColumnType::Int,
                Distribution::Uniform { lo: 10, hi: 34 },
            ),
        ],
    )
    .with_pad(110);

    let orders_t = TableSchema::new(
        "orders",
        vec![
            ColumnSpec::new("o_orderkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new("o_custkey", ColumnType::Int, fk(customers, skew)),
            ColumnSpec::new(
                "o_orderdate",
                ColumnType::Date,
                Distribution::Uniform {
                    lo: 0,
                    hi: DATE_DOMAIN,
                },
            ),
            ColumnSpec::new(
                "o_orderpriority",
                ColumnType::Dict { cardinality: 5 },
                Distribution::Uniform { lo: 0, hi: 4 },
            ),
            ColumnSpec::new(
                "o_orderstatus",
                ColumnType::Dict { cardinality: 3 },
                Distribution::Uniform { lo: 0, hi: 2 },
            ),
            ColumnSpec::new(
                "o_totalprice",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: 100_000,
                    hi: 50_000_000,
                },
            ),
            ColumnSpec::new(
                "o_shippriority",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 1 },
            ),
        ],
    )
    .with_pad(70);

    let lineitem = TableSchema::new(
        "lineitem",
        vec![
            ColumnSpec::new(
                "l_orderkey",
                ColumnType::Int,
                Distribution::FkUniform {
                    parent_rows: orders as u64,
                },
            ),
            ColumnSpec::new("l_partkey", ColumnType::Int, fk(parts, skew)),
            ColumnSpec::new("l_suppkey", ColumnType::Int, fk(suppliers, skew)),
            ColumnSpec::new(
                "l_shipdate",
                ColumnType::Date,
                Distribution::Uniform {
                    lo: 0,
                    hi: DATE_DOMAIN + 90,
                },
            ),
            // Receipt follows shipment by up to ~3 months (correlated).
            ColumnSpec::new(
                "l_receiptdate",
                ColumnType::Date,
                Distribution::Correlated {
                    source: 3,
                    a: 1,
                    b: 1,
                    m: DATE_DOMAIN + 200,
                    noise: 89,
                },
            ),
            ColumnSpec::new(
                "l_quantity",
                ColumnType::Int,
                Distribution::Uniform { lo: 1, hi: 50 },
            ),
            ColumnSpec::new(
                "l_discount",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform { lo: 0, hi: 10 },
            ),
            ColumnSpec::new(
                "l_returnflag",
                ColumnType::Dict { cardinality: 3 },
                Distribution::Uniform { lo: 0, hi: 2 },
            ),
            ColumnSpec::new(
                "l_linestatus",
                ColumnType::Dict { cardinality: 2 },
                Distribution::Uniform { lo: 0, hi: 1 },
            ),
            ColumnSpec::new(
                "l_shipmode",
                ColumnType::Dict { cardinality: 7 },
                Distribution::Uniform { lo: 0, hi: 6 },
            ),
            ColumnSpec::new(
                "l_extendedprice",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: 90_000,
                    hi: 10_500_000,
                },
            ),
        ],
    )
    .with_pad(50);

    let part = TableSchema::new(
        "part",
        vec![
            ColumnSpec::new("p_partkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "p_brand",
                ColumnType::Dict { cardinality: 25 },
                Distribution::Uniform { lo: 0, hi: 24 },
            ),
            ColumnSpec::new(
                "p_type",
                ColumnType::Dict { cardinality: 150 },
                Distribution::Uniform { lo: 0, hi: 149 },
            ),
            ColumnSpec::new(
                "p_size",
                ColumnType::Int,
                Distribution::Uniform { lo: 1, hi: 50 },
            ),
            ColumnSpec::new(
                "p_container",
                ColumnType::Dict { cardinality: 40 },
                Distribution::Uniform { lo: 0, hi: 39 },
            ),
        ],
    )
    .with_pad(90);

    let supplier = TableSchema::new(
        "supplier",
        vec![
            ColumnSpec::new("s_suppkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "s_nationkey",
                ColumnType::Int,
                Distribution::FkUniform { parent_rows: 25 },
            ),
            ColumnSpec::new(
                "s_acctbal",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: -99_999,
                    hi: 999_999,
                },
            ),
        ],
    )
    .with_pad(100);

    let partsupp = TableSchema::new(
        "partsupp",
        vec![
            ColumnSpec::new("ps_partkey", ColumnType::Int, fk(parts, skew)),
            ColumnSpec::new(
                "ps_suppkey",
                ColumnType::Int,
                Distribution::FkUniform {
                    parent_rows: suppliers as u64,
                },
            ),
            ColumnSpec::new(
                "ps_supplycost",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: 100,
                    hi: 100_000,
                },
            ),
            ColumnSpec::new(
                "ps_availqty",
                ColumnType::Int,
                Distribution::Uniform { lo: 1, hi: 9999 },
            ),
        ],
    )
    .with_pad(140);

    let nation = TableSchema::new(
        "nation",
        vec![
            ColumnSpec::new("n_nationkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "n_regionkey",
                ColumnType::Int,
                Distribution::FkUniform { parent_rows: 5 },
            ),
        ],
    )
    .with_pad(100);

    let tables = vec![
        (customer, customers),
        (orders_t, orders),
        (lineitem, lineitems),
        (part, parts),
        (supplier, suppliers),
        (partsupp, partsupps),
        (nation, 25),
    ];

    Benchmark::new(name, sf, tables, templates())
}

/// Structural paraphrases of the 22 TPC-H queries.
fn templates() -> Vec<TemplateSpec> {
    let mut t = Vec::with_capacity(22);
    let mut id = 0u32;
    let mut push = |preds: Vec<(dba_common::ColumnRef, ParamGen)>,
                    joins: Vec<(dba_common::ColumnRef, dba_common::ColumnRef)>,
                    payload: Vec<dba_common::ColumnRef>| {
        id += 1;
        t.push(TemplateSpec {
            id: TemplateId(id),
            preds,
            joins,
            payload,
            aggregated: true,
        });
    };

    // Q1: pricing summary — near-full lineitem scan by shipdate.
    push(
        vec![(
            col("lineitem", "l_shipdate"),
            ParamGen::Range {
                lo: 0,
                hi: DATE_DOMAIN + 90,
                width: 2300,
            },
        )],
        vec![],
        vec![
            col("lineitem", "l_returnflag"),
            col("lineitem", "l_linestatus"),
            col("lineitem", "l_quantity"),
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
        ],
    );
    // Q2: minimum-cost supplier for a part size/type.
    push(
        vec![
            (col("part", "p_size"), ParamGen::Eq { lo: 1, hi: 50 }),
            (col("part", "p_type"), ParamGen::Eq { lo: 0, hi: 149 }),
        ],
        vec![
            (col("part", "p_partkey"), col("partsupp", "ps_partkey")),
            (col("supplier", "s_suppkey"), col("partsupp", "ps_suppkey")),
        ],
        vec![
            col("partsupp", "ps_supplycost"),
            col("supplier", "s_acctbal"),
        ],
    );
    // Q3: shipping priority — segment × date windows.
    push(
        vec![
            (
                col("customer", "c_mktsegment"),
                ParamGen::Eq { lo: 0, hi: 4 },
            ),
            (
                col("orders", "o_orderdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN,
                    width: 1200,
                },
            ),
            (
                col("lineitem", "l_shipdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN + 90,
                    width: 1200,
                },
            ),
        ],
        vec![
            (col("customer", "c_custkey"), col("orders", "o_custkey")),
            (col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
        ],
        vec![
            col("orders", "o_orderdate"),
            col("orders", "o_shippriority"),
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
        ],
    );
    // Q4: order priority checking — quarterly window.
    push(
        vec![
            (
                col("orders", "o_orderdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN,
                    width: 90,
                },
            ),
            (
                col("lineitem", "l_receiptdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN + 200,
                    width: 120,
                },
            ),
        ],
        vec![(col("orders", "o_orderkey"), col("lineitem", "l_orderkey"))],
        vec![col("orders", "o_orderpriority")],
    );
    // Q5: local supplier volume — 5-way star with region restriction.
    push(
        vec![
            (col("nation", "n_regionkey"), ParamGen::Eq { lo: 0, hi: 4 }),
            (
                col("orders", "o_orderdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN,
                    width: 365,
                },
            ),
        ],
        vec![
            (col("customer", "c_custkey"), col("orders", "o_custkey")),
            (col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
            (col("lineitem", "l_suppkey"), col("supplier", "s_suppkey")),
            (col("supplier", "s_nationkey"), col("nation", "n_nationkey")),
        ],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
        ],
    );
    // Q6: forecasting revenue change — the classic covering-index query.
    push(
        vec![
            (
                col("lineitem", "l_shipdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN + 90,
                    width: 365,
                },
            ),
            (col("lineitem", "l_discount"), ParamGen::FixedRange(5, 7)),
            (col("lineitem", "l_quantity"), ParamGen::FixedRange(1, 23)),
        ],
        vec![],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
        ],
    );
    // Q7: volume shipping between two nations.
    push(
        vec![
            (
                col("supplier", "s_nationkey"),
                ParamGen::Eq { lo: 0, hi: 24 },
            ),
            (
                col("customer", "c_nationkey"),
                ParamGen::Eq { lo: 0, hi: 24 },
            ),
            (
                col("lineitem", "l_shipdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN + 90,
                    width: 730,
                },
            ),
        ],
        vec![
            (col("supplier", "s_suppkey"), col("lineitem", "l_suppkey")),
            (col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
            (col("orders", "o_custkey"), col("customer", "c_custkey")),
        ],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
            col("lineitem", "l_shipdate"),
        ],
    );
    // Q8: national market share for a part type.
    push(
        vec![
            (col("part", "p_type"), ParamGen::Eq { lo: 0, hi: 149 }),
            (
                col("orders", "o_orderdate"),
                ParamGen::FixedRange(730, 1460),
            ),
        ],
        vec![
            (col("part", "p_partkey"), col("lineitem", "l_partkey")),
            (col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
        ],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
            col("orders", "o_orderdate"),
        ],
    );
    // Q9: product type profit measure across suppliers.
    push(
        vec![(col("part", "p_brand"), ParamGen::Eq { lo: 0, hi: 24 })],
        vec![
            (col("part", "p_partkey"), col("lineitem", "l_partkey")),
            (col("lineitem", "l_suppkey"), col("supplier", "s_suppkey")),
            (col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
        ],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
            col("orders", "o_orderdate"),
            col("supplier", "s_nationkey"),
        ],
    );
    // Q10: returned item reporting.
    push(
        vec![
            (
                col("orders", "o_orderdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN,
                    width: 90,
                },
            ),
            (col("lineitem", "l_returnflag"), ParamGen::FixedEq(2)),
        ],
        vec![
            (col("customer", "c_custkey"), col("orders", "o_custkey")),
            (col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
        ],
        vec![
            col("customer", "c_acctbal"),
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
        ],
    );
    // Q11: important stock identification in a nation.
    push(
        vec![(
            col("supplier", "s_nationkey"),
            ParamGen::Eq { lo: 0, hi: 24 },
        )],
        vec![(col("partsupp", "ps_suppkey"), col("supplier", "s_suppkey"))],
        vec![
            col("partsupp", "ps_supplycost"),
            col("partsupp", "ps_availqty"),
        ],
    );
    // Q12: shipping modes and order priority.
    push(
        vec![
            (col("lineitem", "l_shipmode"), ParamGen::Eq { lo: 0, hi: 6 }),
            (
                col("lineitem", "l_receiptdate"),
                ParamGen::Range {
                    lo: 0,
                    hi: DATE_DOMAIN + 200,
                    width: 365,
                },
            ),
        ],
        vec![(col("orders", "o_orderkey"), col("lineitem", "l_orderkey"))],
        vec![col("orders", "o_orderpriority")],
    );
    // Q13: customer order-count distribution.
    push(
        vec![(
            col("orders", "o_orderpriority"),
            ParamGen::Eq { lo: 0, hi: 4 },
        )],
        vec![(col("customer", "c_custkey"), col("orders", "o_custkey"))],
        vec![col("customer", "c_custkey")],
    );
    // Q14: promotion effect in a month.
    push(
        vec![(
            col("lineitem", "l_shipdate"),
            ParamGen::Range {
                lo: 0,
                hi: DATE_DOMAIN + 90,
                width: 30,
            },
        )],
        vec![(col("lineitem", "l_partkey"), col("part", "p_partkey"))],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
            col("part", "p_type"),
        ],
    );
    // Q15: top supplier over a quarter.
    push(
        vec![(
            col("lineitem", "l_shipdate"),
            ParamGen::Range {
                lo: 0,
                hi: DATE_DOMAIN + 90,
                width: 90,
            },
        )],
        vec![(col("lineitem", "l_suppkey"), col("supplier", "s_suppkey"))],
        vec![
            col("lineitem", "l_extendedprice"),
            col("supplier", "s_acctbal"),
        ],
    );
    // Q16: parts/supplier relationship by brand, type, sizes.
    push(
        vec![
            (col("part", "p_brand"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("part", "p_type"), ParamGen::Eq { lo: 0, hi: 149 }),
            (
                col("part", "p_size"),
                ParamGen::Range {
                    lo: 1,
                    hi: 50,
                    width: 8,
                },
            ),
        ],
        vec![(col("partsupp", "ps_partkey"), col("part", "p_partkey"))],
        vec![col("partsupp", "ps_suppkey")],
    );
    // Q17: small-quantity-order revenue for a brand/container.
    push(
        vec![
            (col("part", "p_brand"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("part", "p_container"), ParamGen::Eq { lo: 0, hi: 39 }),
            (col("lineitem", "l_quantity"), ParamGen::FixedRange(1, 10)),
        ],
        vec![(col("lineitem", "l_partkey"), col("part", "p_partkey"))],
        vec![col("lineitem", "l_extendedprice")],
    );
    // Q18: large volume customer (the quantity tail).
    push(
        vec![(col("lineitem", "l_quantity"), ParamGen::FixedRange(45, 50))],
        vec![
            (col("customer", "c_custkey"), col("orders", "o_custkey")),
            (col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
        ],
        vec![
            col("customer", "c_custkey"),
            col("orders", "o_orderdate"),
            col("orders", "o_totalprice"),
        ],
    );
    // Q19: discounted revenue, brand × container × quantity window.
    push(
        vec![
            (col("part", "p_brand"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("part", "p_container"), ParamGen::Eq { lo: 0, hi: 39 }),
            (
                col("lineitem", "l_quantity"),
                ParamGen::Range {
                    lo: 1,
                    hi: 50,
                    width: 10,
                },
            ),
            (
                col("part", "p_size"),
                ParamGen::Range {
                    lo: 1,
                    hi: 50,
                    width: 14,
                },
            ),
        ],
        vec![(col("lineitem", "l_partkey"), col("part", "p_partkey"))],
        vec![
            col("lineitem", "l_extendedprice"),
            col("lineitem", "l_discount"),
        ],
    );
    // Q20: potential part promotion — partsupp star.
    push(
        vec![
            (col("part", "p_brand"), ParamGen::Eq { lo: 0, hi: 24 }),
            (
                col("supplier", "s_nationkey"),
                ParamGen::Eq { lo: 0, hi: 24 },
            ),
            (
                col("partsupp", "ps_availqty"),
                ParamGen::Range {
                    lo: 1,
                    hi: 9999,
                    width: 4000,
                },
            ),
        ],
        vec![
            (col("partsupp", "ps_partkey"), col("part", "p_partkey")),
            (col("partsupp", "ps_suppkey"), col("supplier", "s_suppkey")),
        ],
        vec![col("supplier", "s_suppkey")],
    );
    // Q21: suppliers who kept orders waiting, one nation, status F.
    push(
        vec![
            (
                col("supplier", "s_nationkey"),
                ParamGen::Eq { lo: 0, hi: 24 },
            ),
            (col("orders", "o_orderstatus"), ParamGen::FixedEq(1)),
        ],
        vec![
            (col("supplier", "s_suppkey"), col("lineitem", "l_suppkey")),
            (col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
        ],
        vec![col("supplier", "s_suppkey")],
    );
    // Q22: global sales opportunity — the o_custkey join pressure.
    push(
        vec![
            (
                col("customer", "c_acctbal"),
                ParamGen::Range {
                    lo: 0,
                    hi: 999_999,
                    width: 500_000,
                },
            ),
            (
                col("customer", "c_phone_cc"),
                ParamGen::Range {
                    lo: 10,
                    hi: 34,
                    width: 6,
                },
            ),
        ],
        vec![(col("customer", "c_custkey"), col("orders", "o_custkey"))],
        vec![col("customer", "c_acctbal")],
    );

    debug_assert_eq!(t.len(), 22);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_22_templates_and_7_tables() {
        let b = tpch(0.1);
        assert_eq!(b.templates().len(), 22);
        assert_eq!(b.table_count(), 7);
        assert_eq!(b.templates()[0].id, TemplateId(1));
        assert_eq!(b.templates()[21].id, TemplateId(22));
    }

    #[test]
    fn skew_variant_differs_only_in_distributions() {
        let u = tpch(0.1);
        let s = tpch_skew(0.1);
        assert_eq!(u.templates().len(), s.templates().len());
        assert_eq!(u.rows_of("lineitem"), s.rows_of("lineitem"));
        let uc = u.build_catalog(5).unwrap();
        let sc = s.build_catalog(5).unwrap();
        // In the skew variant the hottest customer owns a huge share of
        // orders; in uniform it owns ~1/customers.
        let hot_uniform = uc
            .table_by_name("orders")
            .unwrap()
            .column_by_name("o_custkey")
            .unwrap()
            .1
            .count_in_range(0, 0);
        let hot_skew = sc
            .table_by_name("orders")
            .unwrap()
            .column_by_name("o_custkey")
            .unwrap()
            .1
            .count_in_range(0, 0);
        assert!(
            hot_skew > hot_uniform * 50,
            "skew {hot_skew} vs uniform {hot_uniform}"
        );
    }

    #[test]
    fn row_ratios_match_tpch() {
        let b = tpch(1.0);
        let li = b.rows_of("lineitem").unwrap();
        let o = b.rows_of("orders").unwrap();
        let c = b.rows_of("customer").unwrap();
        assert_eq!(li / o, 4);
        assert_eq!(o / c, 10);
        assert_eq!(b.rows_of("nation"), Some(25));
    }

    #[test]
    fn q6_is_single_table_and_q5_is_five_way() {
        let b = tpch(0.1);
        let cat = b.build_catalog(1).unwrap();
        let q6 = b.templates()[5]
            .instantiate(&cat, dba_common::QueryId(0), 1, 0)
            .unwrap();
        assert_eq!(q6.tables.len(), 1);
        assert_eq!(q6.predicates.len(), 3);
        let q5 = b.templates()[4]
            .instantiate(&cat, dba_common::QueryId(1), 1, 0)
            .unwrap();
        assert_eq!(q5.tables.len(), 5);
        assert_eq!(q5.joins.len(), 4);
    }

    #[test]
    fn receiptdate_is_correlated_with_shipdate() {
        let b = tpch(0.1);
        let cat = b.build_catalog(2).unwrap();
        let li = cat.table_by_name("lineitem").unwrap();
        let ship = li.column_by_name("l_shipdate").unwrap().1;
        let receipt = li.column_by_name("l_receiptdate").unwrap().1;
        for r in 0..200 {
            let s = ship.value(r);
            let rc = receipt.value(r);
            assert!(rc > s && rc <= s + 90, "row {r}: ship {s} receipt {rc}");
        }
    }
}
