//! IMDb / Join Order Benchmark (JOB) style workload.
//!
//! The paper calls IMDb "a challenging workload for index recommendations,
//! with index overuse leading to performance regressions" (§V-A): real
//! IMDb data is heavily skewed and correlated, so optimiser estimates are
//! far off and plans that look index-friendly regress badly (the Q18
//! anecdote). This module reproduces those hazards:
//!
//! * `movie_id` foreign keys into `title` are zipf-skewed — popular movies
//!   have orders of magnitude more cast/info rows, defeating uniform
//!   fan-out estimates for index nested-loop joins;
//! * `title.production_year` is correlated with `title.id` (newer movies
//!   have higher ids), so conjunctions involving year break AVI;
//! * the dataset is fixed-size (the paper's 6GB, scaled 1/100) regardless
//!   of scale factor.
//!
//! 33 JOB-style templates are synthesized deterministically over the IMDb
//! join graph (title at the centre, fact-ish edges, secondary dimensions).

use dba_common::{rng::rng_for, ColumnRef, TemplateId};
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableSchema};
use rand::Rng;

use crate::spec::{col, Benchmark, ParamGen, TemplateSpec};

const TITLES: usize = 25_000;
const NAMES: usize = 40_000;
const COMPANIES: usize = 2_000;
const KEYWORDS: usize = 13_000;
const INFO_TYPES: usize = 113;

const TEMPLATE_SEED: u64 = 0x1DB;

/// An edge table around `title`: joins to title via `movie_id` and
/// optionally to a secondary dimension.
struct EdgeDesc {
    name: &'static str,
    /// (column, dim table, dim key) for the secondary join, if any.
    secondary: Option<(&'static str, &'static str, &'static str)>,
    /// Predicate columns: (column, lo, hi, prefer_eq).
    preds: Vec<(&'static str, i64, i64, bool)>,
    payload: Vec<&'static str>,
}

/// IMDb is a fixed-size dataset; `_sf` is accepted for API uniformity.
pub fn imdb(_sf: f64) -> Benchmark {
    let movie_fk = |s: f64| Distribution::FkZipf {
        parent_rows: TITLES as u64,
        s,
    };

    let title = TableSchema::new(
        "title",
        vec![
            ColumnSpec::new("id", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "kind_id",
                ColumnType::Dict { cardinality: 7 },
                Distribution::Uniform { lo: 0, hi: 6 },
            ),
            // production_year correlated with id: year_code = id/200 + noise,
            // i.e. ids are roughly chronological (codes 0..~135 ≈ 1885-2019).
            ColumnSpec::new(
                "production_year",
                ColumnType::Int,
                Distribution::Correlated {
                    source: 0,
                    a: 1,
                    b: 0,
                    m: i64::MAX / 2,
                    noise: 2000,
                },
            ),
            ColumnSpec::new(
                "phonetic_code",
                ColumnType::Dict { cardinality: 2000 },
                Distribution::Uniform { lo: 0, hi: 1999 },
            ),
        ],
    )
    .with_pad(60);

    let movie_info = TableSchema::new(
        "movie_info",
        vec![
            ColumnSpec::new("movie_id", ColumnType::Int, movie_fk(1.2)),
            ColumnSpec::new(
                "info_type_id",
                ColumnType::Int,
                Distribution::Zipf {
                    n: INFO_TYPES as u64,
                    s: 1.0,
                },
            ),
            ColumnSpec::new(
                "info",
                ColumnType::Dict { cardinality: 5000 },
                Distribution::Uniform { lo: 0, hi: 4999 },
            ),
        ],
    )
    .with_pad(60);

    let cast_info = TableSchema::new(
        "cast_info",
        vec![
            ColumnSpec::new("movie_id", ColumnType::Int, movie_fk(1.2)),
            ColumnSpec::new(
                "person_id",
                ColumnType::Int,
                Distribution::FkZipf {
                    parent_rows: NAMES as u64,
                    s: 1.3,
                },
            ),
            ColumnSpec::new(
                "role_id",
                ColumnType::Dict { cardinality: 12 },
                Distribution::Zipf { n: 12, s: 0.8 },
            ),
        ],
    )
    .with_pad(16);

    let movie_companies = TableSchema::new(
        "movie_companies",
        vec![
            ColumnSpec::new("movie_id", ColumnType::Int, movie_fk(1.1)),
            ColumnSpec::new(
                "company_id",
                ColumnType::Int,
                Distribution::FkZipf {
                    parent_rows: COMPANIES as u64,
                    s: 1.5,
                },
            ),
            ColumnSpec::new(
                "company_type_id",
                ColumnType::Dict { cardinality: 2 },
                Distribution::Uniform { lo: 0, hi: 1 },
            ),
        ],
    )
    .with_pad(8);

    let movie_keyword = TableSchema::new(
        "movie_keyword",
        vec![
            ColumnSpec::new("movie_id", ColumnType::Int, movie_fk(1.1)),
            ColumnSpec::new(
                "keyword_id",
                ColumnType::Int,
                Distribution::FkZipf {
                    parent_rows: KEYWORDS as u64,
                    s: 1.4,
                },
            ),
        ],
    );

    let name = TableSchema::new(
        "name",
        vec![
            ColumnSpec::new("id", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "gender",
                ColumnType::Dict { cardinality: 3 },
                Distribution::Uniform { lo: 0, hi: 2 },
            ),
            ColumnSpec::new(
                "name_pcode",
                ColumnType::Dict { cardinality: 1000 },
                Distribution::Uniform { lo: 0, hi: 999 },
            ),
        ],
    )
    .with_pad(50);

    let company_name = TableSchema::new(
        "company_name",
        vec![
            ColumnSpec::new("id", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "country_code",
                ColumnType::Dict { cardinality: 100 },
                Distribution::Zipf { n: 100, s: 1.2 },
            ),
        ],
    )
    .with_pad(40);

    let keyword = TableSchema::new(
        "keyword",
        vec![ColumnSpec::new(
            "id",
            ColumnType::Int,
            Distribution::Sequential,
        )],
    )
    .with_pad(20);

    let info_type = TableSchema::new(
        "info_type",
        vec![ColumnSpec::new(
            "id",
            ColumnType::Int,
            Distribution::Sequential,
        )],
    )
    .with_pad(20);

    let tables = vec![
        (title, TITLES),
        (movie_info, 150_000),
        (cast_info, 360_000),
        (movie_companies, 26_000),
        (movie_keyword, 45_000),
        (name, NAMES),
        (company_name, COMPANIES),
        (keyword, KEYWORDS),
        (info_type, INFO_TYPES),
    ];

    Benchmark::new("IMDb", 1.0, tables, templates())
}

fn edges() -> Vec<EdgeDesc> {
    vec![
        EdgeDesc {
            name: "movie_info",
            secondary: Some(("info_type_id", "info_type", "id")),
            preds: vec![
                ("info_type_id", 0, INFO_TYPES as i64 - 1, true),
                ("info", 0, 4999, true),
            ],
            payload: vec!["info"],
        },
        EdgeDesc {
            name: "cast_info",
            secondary: Some(("person_id", "name", "id")),
            preds: vec![("role_id", 0, 11, true)],
            payload: vec!["person_id"],
        },
        EdgeDesc {
            name: "movie_companies",
            secondary: Some(("company_id", "company_name", "id")),
            preds: vec![("company_type_id", 0, 1, true)],
            payload: vec!["company_id"],
        },
        EdgeDesc {
            name: "movie_keyword",
            secondary: Some(("keyword_id", "keyword", "id")),
            preds: vec![("keyword_id", 0, KEYWORDS as i64 - 1, true)],
            payload: vec!["keyword_id"],
        },
    ]
}

/// 33 JOB-style templates: title at the centre, 1-3 edge tables, secondary
/// dimensions on roughly half the edges.
fn templates() -> Vec<TemplateSpec> {
    let edge_descs = edges();
    let mut out = Vec::with_capacity(33);

    for id in 1..=33u32 {
        let mut rng = rng_for(TEMPLATE_SEED, "imdb-templates", id as u64);
        let mut preds: Vec<(ColumnRef, ParamGen)> = Vec::new();
        let mut joins: Vec<(ColumnRef, ColumnRef)> = Vec::new();
        let mut payload: Vec<ColumnRef> = Vec::new();

        // Title predicates: kind and/or the correlated production year.
        if rng.gen_bool(0.7) {
            preds.push((col("title", "kind_id"), ParamGen::Eq { lo: 0, hi: 6 }));
        }
        if rng.gen_bool(0.8) {
            // Year codes run 0..~2125 (id/1 + noise 2000 over 25k... the
            // realised domain); query a window of the recent region.
            let width = rng.gen_range(800..4000);
            preds.push((
                col("title", "production_year"),
                ParamGen::Range {
                    lo: 0,
                    hi: 26_000,
                    width,
                },
            ));
        }
        if preds.is_empty() {
            preds.push((
                col("title", "phonetic_code"),
                ParamGen::Eq { lo: 0, hi: 1999 },
            ));
        }
        payload.push(col("title", "id"));

        // 1-3 edge tables around title.
        let n_edges = rng.gen_range(1..=3);
        let mut pool: Vec<usize> = (0..edge_descs.len()).collect();
        for _ in 0..n_edges {
            let e = &edge_descs[pool.swap_remove(rng.gen_range(0..pool.len()))];
            joins.push((col("title", "id"), col(e.name, "movie_id")));
            // Edge predicate.
            if let Some(&(c, lo, hi, prefer_eq)) = e
                .preds
                .get(rng.gen_range(0..e.preds.len()))
                .filter(|_| rng.gen_bool(0.75))
            {
                let gen = if prefer_eq {
                    // Skew-aware parameter draws: hot values queried more.
                    if hi - lo > 50 {
                        ParamGen::EqZipf {
                            n: (hi - lo + 1) as u64,
                            s: 1.0,
                        }
                    } else {
                        ParamGen::Eq { lo, hi }
                    }
                } else {
                    ParamGen::Range {
                        lo,
                        hi,
                        width: (hi - lo) / 8,
                    }
                };
                preds.push((col(e.name, c), gen));
            }
            // Secondary dimension on half the edges.
            if let Some((fk_col, dim, dim_key)) = e.secondary {
                if rng.gen_bool(0.5) {
                    joins.push((col(e.name, fk_col), col(dim, dim_key)));
                    match dim {
                        "name" => {
                            preds.push((col("name", "gender"), ParamGen::Eq { lo: 0, hi: 2 }))
                        }
                        "company_name" => preds.push((
                            col("company_name", "country_code"),
                            ParamGen::EqZipf { n: 100, s: 1.2 },
                        )),
                        _ => {}
                    }
                }
            }
            payload.push(col(e.name, e.payload[0]));
        }

        out.push(TemplateSpec {
            id: TemplateId(id),
            preds,
            joins,
            payload,
            aggregated: true,
        });
    }
    debug_assert_eq!(out.len(), 33);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_three_templates_nine_tables() {
        let b = imdb(10.0);
        assert_eq!(b.templates().len(), 33);
        assert_eq!(b.table_count(), 9);
    }

    #[test]
    fn fixed_size_regardless_of_sf() {
        let a = imdb(1.0);
        let b = imdb(100.0);
        assert_eq!(a.rows_of("cast_info"), b.rows_of("cast_info"));
        assert_eq!(a.rows_of("title"), Some(TITLES));
    }

    #[test]
    fn movie_fk_skew_defeats_uniform_fanout() {
        let b = imdb(1.0);
        let cat = b.build_catalog(11).unwrap();
        let ci = cat.table_by_name("cast_info").unwrap();
        let fk = ci.column_by_name("movie_id").unwrap().1;
        let hot = fk.count_in_range(0, 0);
        let uniform = ci.rows() / TITLES;
        assert!(
            hot > uniform * 100,
            "hot movie {hot} vs uniform fan-out {uniform}"
        );
    }

    #[test]
    fn production_year_is_correlated_with_id() {
        let b = imdb(1.0);
        let cat = b.build_catalog(12).unwrap();
        let t = cat.table_by_name("title").unwrap();
        let year = t.column_by_name("production_year").unwrap().1;
        // year_code(row) ∈ [id, id + 2000].
        for r in [0usize, 100, 5_000, 24_999] {
            let y = year.value(r);
            assert!(y >= r as i64 && y <= r as i64 + 2000);
        }
    }

    #[test]
    fn templates_are_join_heavy() {
        let b = imdb(1.0);
        let avg_joins: f64 = b
            .templates()
            .iter()
            .map(|t| t.joins.len() as f64)
            .sum::<f64>()
            / 33.0;
        assert!(avg_joins >= 1.5, "JOB is join-heavy, got avg {avg_joins}");
        assert!(b.templates().iter().all(|t| !t.joins.is_empty()));
    }
}
