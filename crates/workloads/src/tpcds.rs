//! TPC-DS: seven fact tables, ten dimensions, 99 query templates.
//!
//! The paper uses TPC-DS to stress candidate-set size ("over 3200 indices")
//! and advisor recommendation cost. The 99 templates here are synthesized
//! deterministically (fixed internal seed) over the real TPC-DS join
//! graph: each picks a fact table, joins 1-3 reachable dimensions, places
//! selective predicates on dimension attributes and occasional fact
//! measures, and aggregates a few measures — the structural shape of the
//! handwritten TPC-DS queries, at the same scale of schema/template
//! diversity. Item and customer foreign keys are zipf-skewed (popularity
//! skew), which is what defeats the optimiser's uniform fan-out estimates
//! on this benchmark.

use dba_common::{rng::rng_for, ColumnRef, TemplateId};
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableSchema};
use rand::Rng;

use crate::spec::{col, Benchmark, ParamGen, RowCount, TemplateSpec};

const DATE_ROWS: usize = 1826; // 5 years

/// Internal seed for deterministic template synthesis. Templates are part
/// of the benchmark definition: they never vary across experiments.
const TEMPLATE_SEED: u64 = 0xD5;

/// Attribute column usable in synthesized predicates: (column, lo, hi,
/// equality-preferred).
struct AttrCol {
    table: &'static str,
    column: &'static str,
    lo: i64,
    hi: i64,
    prefer_eq: bool,
}

/// Fact-table description for synthesis.
struct FactDesc {
    name: &'static str,
    /// (fact fk column, dim table, dim key column)
    fks: Vec<(&'static str, &'static str, &'static str)>,
    measures: Vec<&'static str>,
    /// Numeric fact columns usable as predicates: (column, lo, hi).
    fact_preds: Vec<(&'static str, i64, i64)>,
    /// How many of the 99 templates target this fact.
    weight: usize,
}

// Sequential pushes keep each table's schema block self-contained.
#[allow(clippy::vec_init_then_push)]
pub fn tpcds(sf: f64) -> Benchmark {
    let items = RowCount::PerSf(102_000).rows(sf);
    let customers = RowCount::PerSf(100_000).rows(sf);
    let addresses = RowCount::PerSf(50_000).rows(sf);

    let mut tables: Vec<(TableSchema, usize)> = Vec::new();

    // --- Dimensions ---
    tables.push((
        TableSchema::new(
            "date_dim",
            vec![
                ColumnSpec::new("d_date_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "d_year",
                    ColumnType::Int,
                    Distribution::Correlated {
                        source: 0,
                        a: 1,
                        b: 0,
                        m: i64::MAX / 2,
                        noise: 0,
                    },
                ),
                ColumnSpec::new(
                    "d_moy",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 1, hi: 12 },
                ),
                ColumnSpec::new(
                    "d_dow",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 6 },
                ),
                ColumnSpec::new(
                    "d_qoy",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 1, hi: 4 },
                ),
            ],
        )
        .with_pad(100),
        DATE_ROWS,
    ));
    tables.push((
        TableSchema::new(
            "item",
            vec![
                ColumnSpec::new("i_item_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "i_category",
                    ColumnType::Dict { cardinality: 10 },
                    Distribution::Uniform { lo: 0, hi: 9 },
                ),
                ColumnSpec::new(
                    "i_class",
                    ColumnType::Dict { cardinality: 100 },
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
                ColumnSpec::new(
                    "i_brand",
                    ColumnType::Dict { cardinality: 400 },
                    Distribution::Uniform { lo: 0, hi: 399 },
                ),
                ColumnSpec::new(
                    "i_manufact_id",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 999 },
                ),
                ColumnSpec::new(
                    "i_current_price",
                    ColumnType::Decimal { scale: 2 },
                    Distribution::Uniform { lo: 99, hi: 30_000 },
                ),
                ColumnSpec::new(
                    "i_color",
                    ColumnType::Dict { cardinality: 92 },
                    Distribution::Uniform { lo: 0, hi: 91 },
                ),
            ],
        )
        .with_pad(120),
        items,
    ));
    tables.push((
        TableSchema::new(
            "customer",
            vec![
                ColumnSpec::new("c_customer_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "c_current_addr_sk",
                    ColumnType::Int,
                    Distribution::FkUniform {
                        parent_rows: addresses as u64,
                    },
                ),
                ColumnSpec::new(
                    "c_birth_year",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 1920, hi: 1992 },
                ),
                ColumnSpec::new(
                    "c_preferred_flag",
                    ColumnType::Dict { cardinality: 2 },
                    Distribution::Uniform { lo: 0, hi: 1 },
                ),
            ],
        )
        .with_pad(90),
        customers,
    ));
    tables.push((
        TableSchema::new(
            "customer_address",
            vec![
                ColumnSpec::new("ca_address_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "ca_state",
                    ColumnType::Dict { cardinality: 51 },
                    Distribution::Uniform { lo: 0, hi: 50 },
                ),
                ColumnSpec::new(
                    "ca_city",
                    ColumnType::Dict { cardinality: 600 },
                    Distribution::Uniform { lo: 0, hi: 599 },
                ),
                ColumnSpec::new(
                    "ca_gmt_offset",
                    ColumnType::Int,
                    Distribution::Uniform { lo: -10, hi: -5 },
                ),
            ],
        )
        .with_pad(80),
        addresses,
    ));
    tables.push((
        TableSchema::new(
            "household_demographics",
            vec![
                ColumnSpec::new("hd_demo_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "hd_income_band_sk",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 20 },
                ),
                ColumnSpec::new(
                    "hd_dep_count",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 9 },
                ),
            ],
        )
        .with_pad(20),
        72,
    ));
    tables.push((
        TableSchema::new(
            "store",
            vec![
                ColumnSpec::new("s_store_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "s_state",
                    ColumnType::Dict { cardinality: 51 },
                    Distribution::Uniform { lo: 0, hi: 12 },
                ),
                ColumnSpec::new(
                    "s_number_employees",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 200, hi: 300 },
                ),
            ],
        )
        .with_pad(150),
        12,
    ));
    tables.push((
        TableSchema::new(
            "warehouse",
            vec![
                ColumnSpec::new("w_warehouse_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "w_state",
                    ColumnType::Dict { cardinality: 51 },
                    Distribution::Uniform { lo: 0, hi: 7 },
                ),
            ],
        )
        .with_pad(100),
        8,
    ));
    tables.push((
        TableSchema::new(
            "promotion",
            vec![
                ColumnSpec::new("p_promo_sk", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "p_channel_tv",
                    ColumnType::Dict { cardinality: 2 },
                    Distribution::Uniform { lo: 0, hi: 1 },
                ),
            ],
        )
        .with_pad(80),
        30,
    ));

    // --- Facts ---
    let item_fk = Distribution::FkZipf {
        parent_rows: items as u64,
        s: 1.1,
    };
    let cust_fk = Distribution::FkZipf {
        parent_rows: customers as u64,
        s: 1.05,
    };
    let date_fk = Distribution::FkUniform {
        parent_rows: DATE_ROWS as u64,
    };

    let sales_columns = |prefix: &str| -> Vec<ColumnSpec> {
        vec![
            ColumnSpec::new(
                format!("{prefix}_sold_date_sk"),
                ColumnType::Date,
                date_fk.clone(),
            ),
            ColumnSpec::new(
                format!("{prefix}_item_sk"),
                ColumnType::Int,
                item_fk.clone(),
            ),
            ColumnSpec::new(
                format!("{prefix}_customer_sk"),
                ColumnType::Int,
                cust_fk.clone(),
            ),
            ColumnSpec::new(
                format!("{prefix}_promo_sk"),
                ColumnType::Int,
                Distribution::FkUniform { parent_rows: 30 },
            ),
            ColumnSpec::new(
                format!("{prefix}_quantity"),
                ColumnType::Int,
                Distribution::Uniform { lo: 1, hi: 100 },
            ),
            ColumnSpec::new(
                format!("{prefix}_sales_price"),
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform { lo: 0, hi: 30_000 },
            ),
            ColumnSpec::new(
                format!("{prefix}_net_profit"),
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: -10_000,
                    hi: 20_000,
                },
            ),
        ]
    };

    let mut store_sales = sales_columns("ss");
    store_sales.push(ColumnSpec::new(
        "ss_store_sk",
        ColumnType::Int,
        Distribution::FkUniform { parent_rows: 12 },
    ));
    store_sales.push(ColumnSpec::new(
        "ss_hdemo_sk",
        ColumnType::Int,
        Distribution::FkUniform { parent_rows: 72 },
    ));
    tables.push((
        TableSchema::new("store_sales", store_sales).with_pad(60),
        RowCount::PerSf(2_880_000).rows(sf),
    ));

    let mut catalog_sales = sales_columns("cs");
    catalog_sales.push(ColumnSpec::new(
        "cs_warehouse_sk",
        ColumnType::Int,
        Distribution::FkUniform { parent_rows: 8 },
    ));
    tables.push((
        TableSchema::new("catalog_sales", catalog_sales).with_pad(80),
        RowCount::PerSf(1_440_000).rows(sf),
    ));

    let mut web_sales = sales_columns("ws");
    web_sales.push(ColumnSpec::new(
        "ws_warehouse_sk",
        ColumnType::Int,
        Distribution::FkUniform { parent_rows: 8 },
    ));
    tables.push((
        TableSchema::new("web_sales", web_sales).with_pad(80),
        RowCount::PerSf(720_000).rows(sf),
    ));

    let returns_columns = |prefix: &str| -> Vec<ColumnSpec> {
        vec![
            ColumnSpec::new(
                format!("{prefix}_returned_date_sk"),
                ColumnType::Date,
                date_fk.clone(),
            ),
            ColumnSpec::new(
                format!("{prefix}_item_sk"),
                ColumnType::Int,
                item_fk.clone(),
            ),
            ColumnSpec::new(
                format!("{prefix}_customer_sk"),
                ColumnType::Int,
                cust_fk.clone(),
            ),
            ColumnSpec::new(
                format!("{prefix}_return_amt"),
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform { lo: 0, hi: 28_000 },
            ),
            ColumnSpec::new(
                format!("{prefix}_return_quantity"),
                ColumnType::Int,
                Distribution::Uniform { lo: 1, hi: 100 },
            ),
        ]
    };
    tables.push((
        TableSchema::new("store_returns", returns_columns("sr")).with_pad(40),
        RowCount::PerSf(288_000).rows(sf),
    ));
    tables.push((
        TableSchema::new("catalog_returns", returns_columns("cr")).with_pad(50),
        RowCount::PerSf(144_000).rows(sf),
    ));
    tables.push((
        TableSchema::new("web_returns", returns_columns("wr")).with_pad(50),
        RowCount::PerSf(72_000).rows(sf),
    ));

    tables.push((
        TableSchema::new(
            "inventory",
            vec![
                ColumnSpec::new("inv_date_sk", ColumnType::Date, date_fk.clone()),
                ColumnSpec::new("inv_item_sk", ColumnType::Int, item_fk.clone()),
                ColumnSpec::new(
                    "inv_warehouse_sk",
                    ColumnType::Int,
                    Distribution::FkUniform { parent_rows: 8 },
                ),
                ColumnSpec::new(
                    "inv_quantity_on_hand",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 1000 },
                ),
            ],
        ),
        RowCount::PerSf(1_200_000).rows(sf),
    ));

    Benchmark::new("TPC-DS", sf, tables, templates())
}

fn attr_cols() -> Vec<AttrCol> {
    fn a(table: &'static str, column: &'static str, lo: i64, hi: i64, prefer_eq: bool) -> AttrCol {
        AttrCol {
            table,
            column,
            lo,
            hi,
            prefer_eq,
        }
    }
    vec![
        a("date_dim", "d_date_sk", 0, DATE_ROWS as i64, false),
        a("date_dim", "d_moy", 1, 12, true),
        a("date_dim", "d_qoy", 1, 4, true),
        a("item", "i_category", 0, 9, true),
        a("item", "i_class", 0, 99, true),
        a("item", "i_brand", 0, 399, true),
        a("item", "i_manufact_id", 0, 999, true),
        a("item", "i_current_price", 99, 30_000, false),
        a("item", "i_color", 0, 91, true),
        a("customer", "c_birth_year", 1920, 1992, false),
        a("customer", "c_preferred_flag", 0, 1, true),
        a("customer_address", "ca_state", 0, 50, true),
        a("customer_address", "ca_city", 0, 599, true),
        a("customer_address", "ca_gmt_offset", -10, -5, true),
        a("household_demographics", "hd_income_band_sk", 0, 20, true),
        a("household_demographics", "hd_dep_count", 0, 9, true),
        a("store", "s_state", 0, 12, true),
        a("warehouse", "w_state", 0, 7, true),
        a("promotion", "p_channel_tv", 0, 1, true),
    ]
}

fn facts() -> Vec<FactDesc> {
    let sales_fks = |p: &'static str| -> Vec<(&'static str, &'static str, &'static str)> {
        let (date, item, cust, promo): (&'static str, &'static str, &'static str, &'static str) =
            match p {
                "ss" => (
                    "ss_sold_date_sk",
                    "ss_item_sk",
                    "ss_customer_sk",
                    "ss_promo_sk",
                ),
                "cs" => (
                    "cs_sold_date_sk",
                    "cs_item_sk",
                    "cs_customer_sk",
                    "cs_promo_sk",
                ),
                _ => (
                    "ws_sold_date_sk",
                    "ws_item_sk",
                    "ws_customer_sk",
                    "ws_promo_sk",
                ),
            };
        vec![
            (date, "date_dim", "d_date_sk"),
            (item, "item", "i_item_sk"),
            (cust, "customer", "c_customer_sk"),
            (promo, "promotion", "p_promo_sk"),
        ]
    };

    vec![
        FactDesc {
            name: "store_sales",
            fks: {
                let mut f = sales_fks("ss");
                f.push(("ss_store_sk", "store", "s_store_sk"));
                f.push(("ss_hdemo_sk", "household_demographics", "hd_demo_sk"));
                f
            },
            measures: vec!["ss_quantity", "ss_sales_price", "ss_net_profit"],
            fact_preds: vec![
                ("ss_quantity", 1, 100),
                ("ss_sales_price", 0, 30_000),
                ("ss_net_profit", -10_000, 20_000),
            ],
            weight: 36,
        },
        FactDesc {
            name: "catalog_sales",
            fks: {
                let mut f = sales_fks("cs");
                f.push(("cs_warehouse_sk", "warehouse", "w_warehouse_sk"));
                f
            },
            measures: vec!["cs_quantity", "cs_sales_price", "cs_net_profit"],
            fact_preds: vec![("cs_quantity", 1, 100), ("cs_sales_price", 0, 30_000)],
            weight: 20,
        },
        FactDesc {
            name: "web_sales",
            fks: {
                let mut f = sales_fks("ws");
                f.push(("ws_warehouse_sk", "warehouse", "w_warehouse_sk"));
                f
            },
            measures: vec!["ws_quantity", "ws_sales_price", "ws_net_profit"],
            fact_preds: vec![("ws_quantity", 1, 100), ("ws_sales_price", 0, 30_000)],
            weight: 15,
        },
        FactDesc {
            name: "store_returns",
            fks: vec![
                ("sr_returned_date_sk", "date_dim", "d_date_sk"),
                ("sr_item_sk", "item", "i_item_sk"),
                ("sr_customer_sk", "customer", "c_customer_sk"),
            ],
            measures: vec!["sr_return_amt", "sr_return_quantity"],
            fact_preds: vec![("sr_return_quantity", 1, 100)],
            weight: 9,
        },
        FactDesc {
            name: "catalog_returns",
            fks: vec![
                ("cr_returned_date_sk", "date_dim", "d_date_sk"),
                ("cr_item_sk", "item", "i_item_sk"),
                ("cr_customer_sk", "customer", "c_customer_sk"),
            ],
            measures: vec!["cr_return_amt", "cr_return_quantity"],
            fact_preds: vec![("cr_return_quantity", 1, 100)],
            weight: 6,
        },
        FactDesc {
            name: "web_returns",
            fks: vec![
                ("wr_returned_date_sk", "date_dim", "d_date_sk"),
                ("wr_item_sk", "item", "i_item_sk"),
                ("wr_customer_sk", "customer", "c_customer_sk"),
            ],
            measures: vec!["wr_return_amt", "wr_return_quantity"],
            fact_preds: vec![("wr_return_quantity", 1, 100)],
            weight: 5,
        },
        FactDesc {
            name: "inventory",
            fks: vec![
                ("inv_date_sk", "date_dim", "d_date_sk"),
                ("inv_item_sk", "item", "i_item_sk"),
                ("inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
            ],
            measures: vec!["inv_quantity_on_hand"],
            fact_preds: vec![("inv_quantity_on_hand", 0, 1000)],
            weight: 8,
        },
    ]
}

/// Deterministically synthesize the 99 templates.
fn templates() -> Vec<TemplateSpec> {
    let attrs = attr_cols();
    let fact_descs = facts();
    let mut out = Vec::with_capacity(99);
    let mut id = 0u32;

    for fact in &fact_descs {
        for k in 0..fact.weight {
            id += 1;
            let mut rng = rng_for(
                TEMPLATE_SEED,
                "tpcds-templates",
                ((id as u64) << 8) | k as u64,
            );

            // 1-3 dimensions joined, chosen without replacement.
            let n_dims = rng.gen_range(1..=3.min(fact.fks.len()));
            let mut fk_pool: Vec<usize> = (0..fact.fks.len()).collect();
            let mut joins = Vec::new();
            let mut joined_dims: Vec<&'static str> = Vec::new();
            for _ in 0..n_dims {
                let pick = fk_pool.swap_remove(rng.gen_range(0..fk_pool.len()));
                let (fk_col, dim, dim_key) = fact.fks[pick];
                joins.push((col(fact.name, fk_col), col(dim, dim_key)));
                joined_dims.push(dim);
            }

            // Predicates: 1-2 per joined dimension, maybe one fact predicate.
            let mut preds: Vec<(ColumnRef, ParamGen)> = Vec::new();
            for dim in &joined_dims {
                let dim_attrs: Vec<&AttrCol> = attrs.iter().filter(|a| a.table == *dim).collect();
                if dim_attrs.is_empty() {
                    continue;
                }
                let n_preds = rng.gen_range(1..=2.min(dim_attrs.len()));
                let mut pool: Vec<usize> = (0..dim_attrs.len()).collect();
                for _ in 0..n_preds {
                    let a = dim_attrs[pool.swap_remove(rng.gen_range(0..pool.len()))];
                    let gen = if a.prefer_eq {
                        ParamGen::Eq { lo: a.lo, hi: a.hi }
                    } else {
                        let width = ((a.hi - a.lo) / rng.gen_range(4i64..20)).max(1);
                        ParamGen::Range {
                            lo: a.lo,
                            hi: a.hi,
                            width,
                        }
                    };
                    preds.push((col(a.table, a.column), gen));
                }
            }
            if rng.gen_bool(0.4) && !fact.fact_preds.is_empty() {
                let (c, lo, hi) = fact.fact_preds[rng.gen_range(0..fact.fact_preds.len())];
                let width = ((hi - lo) / rng.gen_range(3i64..10)).max(1);
                preds.push((col(fact.name, c), ParamGen::Range { lo, hi, width }));
            }

            // Payload: 1-3 fact measures.
            let n_meas = rng.gen_range(1..=fact.measures.len().min(3));
            let mut pool: Vec<usize> = (0..fact.measures.len()).collect();
            let mut payload = Vec::new();
            for _ in 0..n_meas {
                let m = fact.measures[pool.swap_remove(rng.gen_range(0..pool.len()))];
                payload.push(col(fact.name, m));
            }

            out.push(TemplateSpec {
                id: TemplateId(id),
                preds,
                joins,
                payload,
                aggregated: true,
            });
        }
    }
    debug_assert_eq!(out.len(), 99);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_nine_templates_fifteen_tables() {
        let b = tpcds(0.1);
        assert_eq!(b.templates().len(), 99);
        assert_eq!(b.table_count(), 15);
    }

    #[test]
    fn templates_are_deterministic() {
        let a = tpcds(0.1);
        let b = tpcds(1.0);
        for (ta, tb) in a.templates().iter().zip(b.templates()) {
            assert_eq!(ta.id, tb.id);
            assert_eq!(ta.joins, tb.joins, "templates don't depend on sf");
            assert_eq!(ta.payload, tb.payload);
        }
    }

    #[test]
    fn every_template_joins_at_least_one_dimension() {
        let b = tpcds(0.1);
        for t in b.templates() {
            assert!(!t.joins.is_empty());
            assert!(t.joins.len() <= 3);
            assert!(!t.payload.is_empty());
            assert!(t.aggregated);
        }
    }

    #[test]
    fn item_fk_is_skewed() {
        let b = tpcds(0.1);
        let cat = b.build_catalog(9).unwrap();
        let ss = cat.table_by_name("store_sales").unwrap();
        let item_fk = ss.column_by_name("ss_item_sk").unwrap().1;
        let rows = ss.rows();
        let hot = item_fk.count_in_range(0, 0);
        let uniform_share = rows / b.rows_of("item").unwrap();
        assert!(
            hot > uniform_share * 20,
            "popular item should dominate: hot {hot}, uniform {uniform_share}"
        );
    }

    #[test]
    fn template_diversity_covers_all_facts() {
        let b = tpcds(0.1);
        let fact_names = [
            "store_sales",
            "catalog_sales",
            "web_sales",
            "store_returns",
            "catalog_returns",
            "web_returns",
            "inventory",
        ];
        for f in fact_names {
            assert!(
                b.templates()
                    .iter()
                    .any(|t| t.joins.iter().any(|(l, _)| l.table == f)),
                "no template targets {f}"
            );
        }
    }
}
