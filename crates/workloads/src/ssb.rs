//! Star Schema Benchmark: one `lineorder` fact, four dimensions, 13
//! query templates in four flights (O'Neil et al.). The paper uses SSB as
//! the "easily achievable high index benefits" case — selective star joins
//! over a single wide fact table.

use dba_common::TemplateId;
use dba_storage::{ColumnSpec, ColumnType, Distribution, TableSchema};

use crate::spec::{col, Benchmark, ParamGen, RowCount, TemplateSpec};

const DATE_ROWS: usize = 2556; // 7 years of days

pub fn ssb(sf: f64) -> Benchmark {
    let lineorders = RowCount::PerSf(6_000_000).rows(sf);
    let customers = RowCount::PerSf(30_000).rows(sf);
    let suppliers = RowCount::PerSf(2_000).rows(sf);
    let parts = RowCount::PerSf(200_000).rows(sf);

    let lineorder = TableSchema::new(
        "lineorder",
        vec![
            ColumnSpec::new(
                "lo_orderdate",
                ColumnType::Date,
                Distribution::FkUniform {
                    parent_rows: DATE_ROWS as u64,
                },
            ),
            ColumnSpec::new(
                "lo_custkey",
                ColumnType::Int,
                Distribution::FkUniform {
                    parent_rows: customers as u64,
                },
            ),
            ColumnSpec::new(
                "lo_suppkey",
                ColumnType::Int,
                Distribution::FkUniform {
                    parent_rows: suppliers as u64,
                },
            ),
            ColumnSpec::new(
                "lo_partkey",
                ColumnType::Int,
                Distribution::FkUniform {
                    parent_rows: parts as u64,
                },
            ),
            ColumnSpec::new(
                "lo_quantity",
                ColumnType::Int,
                Distribution::Uniform { lo: 1, hi: 50 },
            ),
            ColumnSpec::new(
                "lo_discount",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 10 },
            ),
            ColumnSpec::new(
                "lo_extendedprice",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: 90_000,
                    hi: 10_500_000,
                },
            ),
            ColumnSpec::new(
                "lo_revenue",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: 80_000,
                    hi: 10_000_000,
                },
            ),
            ColumnSpec::new(
                "lo_supplycost",
                ColumnType::Decimal { scale: 2 },
                Distribution::Uniform {
                    lo: 50_000,
                    hi: 6_000_000,
                },
            ),
        ],
    )
    .with_pad(40);

    // d_year/d_yearmonth/d_weeknum derive from the date key, giving the
    // contiguous date-range semantics of the real SSB date dimension.
    let date = TableSchema::new(
        "date",
        vec![
            ColumnSpec::new("d_datekey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "d_year",
                ColumnType::Int,
                Distribution::Correlated {
                    source: 0,
                    a: 1,
                    b: 0,
                    m: i64::MAX / 2,
                    noise: 0,
                },
            ),
            ColumnSpec::new(
                "d_yearmonth",
                ColumnType::Int,
                Distribution::Correlated {
                    source: 0,
                    a: 1,
                    b: 0,
                    m: i64::MAX / 2,
                    noise: 0,
                },
            ),
            ColumnSpec::new(
                "d_weeknum",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 52 },
            ),
        ],
    )
    .with_pad(60);

    let customer = TableSchema::new(
        "customer",
        vec![
            ColumnSpec::new("c_custkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "c_region",
                ColumnType::Dict { cardinality: 5 },
                Distribution::Uniform { lo: 0, hi: 4 },
            ),
            ColumnSpec::new(
                "c_nation",
                ColumnType::Dict { cardinality: 25 },
                Distribution::Uniform { lo: 0, hi: 24 },
            ),
            ColumnSpec::new(
                "c_city",
                ColumnType::Dict { cardinality: 250 },
                Distribution::Uniform { lo: 0, hi: 249 },
            ),
        ],
    )
    .with_pad(90);

    let supplier = TableSchema::new(
        "supplier",
        vec![
            ColumnSpec::new("s_suppkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "s_region",
                ColumnType::Dict { cardinality: 5 },
                Distribution::Uniform { lo: 0, hi: 4 },
            ),
            ColumnSpec::new(
                "s_nation",
                ColumnType::Dict { cardinality: 25 },
                Distribution::Uniform { lo: 0, hi: 24 },
            ),
            ColumnSpec::new(
                "s_city",
                ColumnType::Dict { cardinality: 250 },
                Distribution::Uniform { lo: 0, hi: 249 },
            ),
        ],
    )
    .with_pad(90);

    let part = TableSchema::new(
        "part",
        vec![
            ColumnSpec::new("p_partkey", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "p_mfgr",
                ColumnType::Dict { cardinality: 5 },
                Distribution::Uniform { lo: 0, hi: 4 },
            ),
            ColumnSpec::new(
                "p_category",
                ColumnType::Dict { cardinality: 25 },
                Distribution::Uniform { lo: 0, hi: 24 },
            ),
            ColumnSpec::new(
                "p_brand1",
                ColumnType::Dict { cardinality: 1000 },
                Distribution::Uniform { lo: 0, hi: 999 },
            ),
        ],
    )
    .with_pad(60);

    let tables = vec![
        (lineorder, lineorders),
        (date, DATE_ROWS),
        (customer, customers),
        (supplier, suppliers),
        (part, parts),
    ];

    Benchmark::new("SSB", sf, tables, templates())
}

/// The 13 SSB queries, paraphrased structurally.
///
/// Because `d_year`/`d_yearmonth` are (identity-correlated) functions of
/// the date key, the year/month equality predicates of the original
/// queries are expressed as contiguous ranges over `d_datekey`, preserving
/// their selectivity classes (1 year = 1/7, 1 month = 1/84, 1 week ≈ 1/365).
fn templates() -> Vec<TemplateSpec> {
    let mut t = Vec::with_capacity(13);
    let mut id = 0u32;
    let mut push = |preds: Vec<(dba_common::ColumnRef, ParamGen)>,
                    joins: Vec<(dba_common::ColumnRef, dba_common::ColumnRef)>,
                    payload: Vec<dba_common::ColumnRef>| {
        id += 1;
        t.push(TemplateSpec {
            id: TemplateId(id),
            preds,
            joins,
            payload,
            aggregated: true,
        });
    };

    let d = DATE_ROWS as i64;
    let year = ParamGen::Range {
        lo: 0,
        hi: d,
        width: 365,
    };
    let month = ParamGen::Range {
        lo: 0,
        hi: d,
        width: 30,
    };
    let week = ParamGen::Range {
        lo: 0,
        hi: d,
        width: 7,
    };
    let join_date = (col("lineorder", "lo_orderdate"), col("date", "d_datekey"));
    let join_cust = (col("lineorder", "lo_custkey"), col("customer", "c_custkey"));
    let join_supp = (col("lineorder", "lo_suppkey"), col("supplier", "s_suppkey"));
    let join_part = (col("lineorder", "lo_partkey"), col("part", "p_partkey"));
    let revenue = vec![
        col("lineorder", "lo_extendedprice"),
        col("lineorder", "lo_discount"),
    ];

    // Flight 1: date restriction + discount/quantity windows.
    push(
        vec![
            (col("date", "d_datekey"), year),
            (col("lineorder", "lo_discount"), ParamGen::FixedRange(1, 3)),
            (col("lineorder", "lo_quantity"), ParamGen::FixedRange(1, 24)),
        ],
        vec![join_date.clone()],
        revenue.clone(),
    );
    push(
        vec![
            (col("date", "d_datekey"), month),
            (col("lineorder", "lo_discount"), ParamGen::FixedRange(4, 6)),
            (
                col("lineorder", "lo_quantity"),
                ParamGen::FixedRange(26, 35),
            ),
        ],
        vec![join_date.clone()],
        revenue.clone(),
    );
    push(
        vec![
            (col("date", "d_datekey"), week),
            (col("lineorder", "lo_discount"), ParamGen::FixedRange(5, 7)),
            (
                col("lineorder", "lo_quantity"),
                ParamGen::FixedRange(36, 40),
            ),
        ],
        vec![join_date.clone()],
        revenue.clone(),
    );

    // Flight 2: part category/brand × supplier region.
    push(
        vec![
            (col("part", "p_category"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("supplier", "s_region"), ParamGen::Eq { lo: 0, hi: 4 }),
        ],
        vec![join_date.clone(), join_part.clone(), join_supp.clone()],
        vec![col("lineorder", "lo_revenue"), col("part", "p_brand1")],
    );
    push(
        vec![
            (
                col("part", "p_brand1"),
                ParamGen::Range {
                    lo: 0,
                    hi: 999,
                    width: 7,
                },
            ),
            (col("supplier", "s_region"), ParamGen::Eq { lo: 0, hi: 4 }),
        ],
        vec![join_date.clone(), join_part.clone(), join_supp.clone()],
        vec![col("lineorder", "lo_revenue"), col("part", "p_brand1")],
    );
    push(
        vec![
            (col("part", "p_brand1"), ParamGen::Eq { lo: 0, hi: 999 }),
            (col("supplier", "s_region"), ParamGen::Eq { lo: 0, hi: 4 }),
        ],
        vec![join_date.clone(), join_part.clone(), join_supp.clone()],
        vec![col("lineorder", "lo_revenue"), col("part", "p_brand1")],
    );

    // Flight 3: customer × supplier geography over date ranges.
    push(
        vec![
            (col("customer", "c_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (col("supplier", "s_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (
                col("date", "d_datekey"),
                ParamGen::Range {
                    lo: 0,
                    hi: d,
                    width: 2190,
                },
            ),
        ],
        vec![join_date.clone(), join_cust.clone(), join_supp.clone()],
        vec![
            col("lineorder", "lo_revenue"),
            col("customer", "c_nation"),
            col("supplier", "s_nation"),
        ],
    );
    push(
        vec![
            (col("customer", "c_nation"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("supplier", "s_nation"), ParamGen::Eq { lo: 0, hi: 24 }),
            (
                col("date", "d_datekey"),
                ParamGen::Range {
                    lo: 0,
                    hi: d,
                    width: 2190,
                },
            ),
        ],
        vec![join_date.clone(), join_cust.clone(), join_supp.clone()],
        vec![
            col("lineorder", "lo_revenue"),
            col("customer", "c_city"),
            col("supplier", "s_city"),
        ],
    );
    push(
        vec![
            (col("customer", "c_city"), ParamGen::Eq { lo: 0, hi: 249 }),
            (col("supplier", "s_city"), ParamGen::Eq { lo: 0, hi: 249 }),
            (
                col("date", "d_datekey"),
                ParamGen::Range {
                    lo: 0,
                    hi: d,
                    width: 2190,
                },
            ),
        ],
        vec![join_date.clone(), join_cust.clone(), join_supp.clone()],
        vec![col("lineorder", "lo_revenue")],
    );
    push(
        vec![
            (col("customer", "c_city"), ParamGen::Eq { lo: 0, hi: 249 }),
            (col("supplier", "s_city"), ParamGen::Eq { lo: 0, hi: 249 }),
            (col("date", "d_datekey"), month),
        ],
        vec![join_date.clone(), join_cust.clone(), join_supp.clone()],
        vec![col("lineorder", "lo_revenue")],
    );

    // Flight 4: profit drill-downs across all dimensions.
    push(
        vec![
            (col("customer", "c_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (col("supplier", "s_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (col("part", "p_mfgr"), ParamGen::Eq { lo: 0, hi: 4 }),
        ],
        vec![
            join_date.clone(),
            join_cust.clone(),
            join_supp.clone(),
            join_part.clone(),
        ],
        vec![
            col("lineorder", "lo_revenue"),
            col("lineorder", "lo_supplycost"),
        ],
    );
    push(
        vec![
            (col("customer", "c_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (col("supplier", "s_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (col("part", "p_category"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("date", "d_datekey"), year),
        ],
        vec![
            join_date.clone(),
            join_cust.clone(),
            join_supp.clone(),
            join_part.clone(),
        ],
        vec![
            col("lineorder", "lo_revenue"),
            col("lineorder", "lo_supplycost"),
            col("part", "p_category"),
        ],
    );
    push(
        vec![
            (col("customer", "c_region"), ParamGen::Eq { lo: 0, hi: 4 }),
            (col("supplier", "s_nation"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("part", "p_category"), ParamGen::Eq { lo: 0, hi: 24 }),
            (col("date", "d_datekey"), year),
        ],
        vec![join_date, join_cust, join_supp, join_part],
        vec![
            col("lineorder", "lo_revenue"),
            col("lineorder", "lo_supplycost"),
            col("part", "p_brand1"),
        ],
    );

    debug_assert_eq!(t.len(), 13);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_templates_five_tables() {
        let b = ssb(0.1);
        assert_eq!(b.templates().len(), 13);
        assert_eq!(b.table_count(), 5);
    }

    #[test]
    fn flight_one_is_date_join_only() {
        let b = ssb(0.1);
        let cat = b.build_catalog(3).unwrap();
        for i in 0..3 {
            let q = b.templates()[i]
                .instantiate(&cat, dba_common::QueryId(i as u64), 3, 0)
                .unwrap();
            assert_eq!(q.tables.len(), 2, "flight 1 joins fact to date only");
            assert_eq!(q.joins.len(), 1);
        }
    }

    #[test]
    fn flight_four_joins_all_dimensions() {
        let b = ssb(0.1);
        let cat = b.build_catalog(3).unwrap();
        let q = b.templates()[10]
            .instantiate(&cat, dba_common::QueryId(0), 3, 0)
            .unwrap();
        assert_eq!(q.tables.len(), 5);
        assert_eq!(q.joins.len(), 4);
    }

    #[test]
    fn date_dimension_keys_are_identity_correlated() {
        let b = ssb(0.1);
        let cat = b.build_catalog(4).unwrap();
        let date = cat.table_by_name("date").unwrap();
        let key = date.column_by_name("d_datekey").unwrap().1;
        let year = date.column_by_name("d_year").unwrap().1;
        for r in 0..100 {
            assert_eq!(key.value(r), year.value(r));
        }
    }
}
