//! Lock-step verification backend: runs every plan through **both** the
//! measured and the simulated implementations and asserts logical parity.
//!
//! The dual backend returns the *simulated* execution to its caller, so a
//! session driven by it produces bit-identical trajectories to one on the
//! plain `Simulated` backend — rewards, ledger entries and round records
//! all match — while every query doubles as a parity check and feeds the
//! measured side's [`OpSample`]s (drained via `take_op_samples`) to
//! calibration and divergence reporting. `fig_backend` and the parity test
//! sweep are built on this.

use dba_engine::{
    BackendKind, CostModel, ExecutionBackend, Executor, OpSample, Plan, Query, QueryExecution,
};
use dba_storage::Catalog;

use crate::clock::ClockSource;
use crate::measured::MeasuredBackend;

pub struct DualBackend {
    simulated: Executor,
    measured: MeasuredBackend,
}

impl DualBackend {
    pub fn new(cost: CostModel) -> Self {
        DualBackend {
            simulated: Executor::new(cost.clone()),
            measured: MeasuredBackend::new(cost),
        }
    }

    pub fn with_clock(cost: CostModel, clock: ClockSource) -> Self {
        DualBackend {
            simulated: Executor::new(cost.clone()),
            measured: MeasuredBackend::with_clock(cost, clock),
        }
    }
}

impl ExecutionBackend for DualBackend {
    /// Reports `Simulated`: callers consume the simulated trajectory; the
    /// measured run rides along as a shadow check.
    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn name(&self) -> &'static str {
        "dual"
    }

    fn execute(&mut self, catalog: &Catalog, query: &Query, plan: &Plan) -> QueryExecution {
        let measured = self.measured.execute(catalog, query, plan);
        let simulated = Executor::execute(&self.simulated, catalog, query, plan);
        assert_parity(query, &measured, &simulated);
        simulated
    }

    fn cost_model(&self) -> &CostModel {
        Executor::cost_model(&self.simulated)
    }

    fn measures_wall_clock(&self) -> bool {
        false
    }

    fn take_op_samples(&mut self) -> Vec<OpSample> {
        self.measured.take_op_samples()
    }
}

/// Panic (with full context) unless the two executions agree on every
/// logical field. Time fields are exempt by design.
fn assert_parity(query: &Query, measured: &QueryExecution, simulated: &QueryExecution) {
    assert_eq!(
        measured.result_rows, simulated.result_rows,
        "backend parity: result_rows diverged on query {:?}",
        query.id
    );
    assert_eq!(
        measured.indexes_used(),
        simulated.indexes_used(),
        "backend parity: indexes_used diverged on query {:?}",
        query.id
    );
    assert_eq!(
        measured.accesses.len(),
        simulated.accesses.len(),
        "backend parity: access count diverged on query {:?}",
        query.id
    );
    for (i, (m, s)) in measured
        .accesses
        .iter()
        .zip(&simulated.accesses)
        .enumerate()
    {
        assert!(
            m.table == s.table
                && m.index == s.index
                && m.rows_out == s.rows_out
                && m.is_full_scan == s.is_full_scan,
            "backend parity: access {i} diverged on query {:?}: \
             measured (table {:?}, index {:?}, rows_out {}, full_scan {}) vs \
             simulated (table {:?}, index {:?}, rows_out {}, full_scan {})",
            query.id,
            m.table,
            m.index,
            m.rows_out,
            m.is_full_scan,
            s.table,
            s.index,
            s.rows_out,
            s.is_full_scan
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::scripted;
    use dba_common::{ColumnId, QueryId, SimSeconds, TableId, TemplateId};
    use dba_engine::plan::{AccessMethod, TableAccess};
    use dba_engine::Predicate;
    use dba_storage::{ColumnSpec, ColumnType, Distribution, TableBuilder, TableSchema};

    fn catalog() -> Catalog {
        let t = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int, Distribution::Sequential),
                ColumnSpec::new(
                    "b",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
            ],
        );
        Catalog::new(vec![TableBuilder::new(t, 3000).build(TableId(0), 9)])
    }

    #[test]
    fn dual_returns_the_simulated_execution() {
        let cat = catalog();
        let q = Query {
            id: QueryId(0),
            template: TemplateId(0),
            tables: vec![TableId(0)],
            predicates: vec![Predicate::range(ColumnId::new(TableId(0), 1), 10, 40)],
            joins: vec![],
            payload: vec![ColumnId::new(TableId(0), 0)],
            aggregated: false,
        };
        let plan = Plan {
            driver: TableAccess {
                table: TableId(0),
                method: AccessMethod::FullScan,
                est_rows: 0.0,
            },
            joins: vec![],
            aggregated: false,
            est_cost: SimSeconds::ZERO,
        };
        let mut dual = DualBackend::with_clock(CostModel::unit_scale(), scripted(1e-6));
        let d = dual.execute(&cat, &q, &plan);
        let sim = Executor::new(CostModel::unit_scale()).execute(&cat, &q, &plan);
        // Bit-exact match with the pure simulated run, times included.
        assert_eq!(d.result_rows, sim.result_rows);
        assert_eq!(d.total.secs().to_bits(), sim.total.secs().to_bits());
        assert_eq!(dual.kind(), BackendKind::Simulated);
        assert_eq!(dual.name(), "dual");
        assert!(!dual.measures_wall_clock());
        // The measured shadow still produced samples.
        assert!(!dual.take_op_samples().is_empty());
    }
}
