//! A real B+Tree bulk-loaded from a `dba-storage` index definition.
//!
//! The storage layer's [`Index`] is a sorted permutation — the *logical*
//! leaf level. This module materialises the physical structure on top of
//! it: fixed-capacity leaves sized from the index's leaf-row width against
//! [`PAGE_BYTES`], and a branch hierarchy of per-child separator keys with
//! fanout [`BRANCH_FANOUT`]. Probes perform a genuine root-to-leaf descent
//! (binary search per branch node) and report which leaves they touched,
//! which is what the measured backend's page counters and the calibration
//! fit consume.
//!
//! Probe results are bit-compatible with [`Index::probe`]: the comparison
//! logic is the same lexicographic (equality prefix, bound-on-next-column)
//! ordering, so `(start, end)` bounds into [`BTree::rows`] always equal the
//! storage index's bounds into `Index::ordered_rows`.

use dba_storage::{Index, Table, PAGE_BYTES};

/// Children per branch node. Small enough to give realistic heights on our
/// scaled-down tables (a 60k-row index is 3 levels deep), large enough that
/// descents are a handful of binary searches.
pub const BRANCH_FANOUT: usize = 16;

/// Result of one descent: half-open entry bounds into [`BTree::rows`] plus
/// the physical work performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    pub start: usize,
    pub end: usize,
    /// Leaf nodes the probe touched (≥ 1 on any non-empty tree: the descent
    /// lands on a leaf even when nothing matches).
    pub leaves: usize,
}

impl Probe {
    #[inline]
    pub fn matched(&self) -> usize {
        self.end - self.start
    }
}

/// A bulk-loaded B+Tree over one secondary index.
#[derive(Debug, Clone)]
pub struct BTree {
    /// Key columns per entry.
    arity: usize,
    /// Flattened key tuples: entry `i` occupies `keys[i*arity..(i+1)*arity]`.
    keys: Vec<i64>,
    /// Row id per entry — identical order to `Index::ordered_rows`.
    rows: Vec<u32>,
    /// Entries per leaf node, derived from the leaf row width.
    leaf_cap: usize,
    /// `levels[0]` holds the minimum key tuple of every leaf; each higher
    /// level holds the minimum of [`BRANCH_FANOUT`] children below it. The
    /// last level is the root's child directory.
    levels: Vec<Vec<i64>>,
}

impl BTree {
    /// Bulk-load from a materialised index: copy the key columns in leaf
    /// order, size leaves from the physical leaf-row width, then build the
    /// branch hierarchy bottom-up.
    pub fn from_index(index: &Index, table: &Table) -> Self {
        let def = index.def();
        let arity = def.key_cols.len();
        let per_row =
            table.columns_width(&def.key_cols) + table.columns_width(&def.include_cols) + 8;
        let leaf_cap = ((PAGE_BYTES / per_row.max(1)) as usize).max(8);

        let rows = index.ordered_rows().to_vec();
        let key_cols: Vec<&[i64]> = def
            .key_cols
            .iter()
            .map(|&c| table.column(c).data())
            .collect();
        let mut keys = Vec::with_capacity(rows.len() * arity);
        for &r in &rows {
            for col in &key_cols {
                keys.push(col[r as usize]);
            }
        }

        let mut levels: Vec<Vec<i64>> = Vec::new();
        if !rows.is_empty() {
            let leaf_count = rows.len().div_ceil(leaf_cap);
            let mut mins = Vec::with_capacity(leaf_count * arity);
            for l in 0..leaf_count {
                let e = l * leaf_cap;
                mins.extend_from_slice(&keys[e * arity..(e + 1) * arity]);
            }
            levels.push(mins);
            while levels.last().unwrap().len() / arity > BRANCH_FANOUT {
                let below = levels.last().unwrap();
                let below_nodes = below.len() / arity;
                let up_nodes = below_nodes.div_ceil(BRANCH_FANOUT);
                let mut up = Vec::with_capacity(up_nodes * arity);
                for j in 0..up_nodes {
                    let c = j * BRANCH_FANOUT;
                    up.extend_from_slice(&below[c * arity..(c + 1) * arity]);
                }
                levels.push(up);
            }
        }

        BTree {
            arity,
            keys,
            rows,
            leaf_cap,
            levels,
        }
    }

    /// Row ids in key order (identical to `Index::ordered_rows`).
    #[inline]
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Levels a descent traverses: branch levels plus the leaf itself.
    pub fn height(&self) -> usize {
        self.levels.len() + 1
    }

    pub fn leaf_count(&self) -> usize {
        self.rows.len().div_ceil(self.leaf_cap)
    }

    /// Key tuple of entry `i`.
    #[inline]
    fn key(&self, i: usize) -> &[i64] {
        &self.keys[i * self.arity..(i + 1) * self.arity]
    }

    /// Descend: locate the global partition point of `pred` over all
    /// entries, touching only one root-to-leaf path of nodes. `pred` must be
    /// monotone (true-prefix) over key order.
    fn descend(&self, pred: impl Fn(&[i64]) -> bool) -> usize {
        let n = self.rows.len();
        if n == 0 {
            return 0;
        }
        // Walk branch levels top-down, narrowing to one child per level. A
        // node's min key failing `pred` puts the partition point at or
        // before the node's first entry, so the point lies inside the last
        // child whose min still satisfies `pred` (or the window's first
        // child when none does).
        let mut begin = 0usize;
        let mut window = self.levels.last().map_or(0, |top| top.len() / self.arity);
        for li in (0..self.levels.len()).rev() {
            let level = &self.levels[li];
            let p = self.partition_nodes(level, begin, begin + window, &pred);
            let child = if p > begin { p - 1 } else { begin };
            if li == 0 {
                // `child` is a leaf index: binary search its entries.
                let s = child * self.leaf_cap;
                let e = (s + self.leaf_cap).min(n);
                return self.partition_entries(s, e, &pred);
            }
            let below_nodes = self.levels[li - 1].len() / self.arity;
            begin = child * BRANCH_FANOUT;
            window = BRANCH_FANOUT.min(below_nodes - begin);
        }
        unreachable!("non-empty tree always has a leaf-min level");
    }

    /// Partition point over nodes `[begin, end)` of a branch level by the
    /// predicate on each node's min key.
    fn partition_nodes(
        &self,
        level: &[i64],
        begin: usize,
        end: usize,
        pred: &impl Fn(&[i64]) -> bool,
    ) -> usize {
        let (mut lo, mut hi) = (begin, end);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(&level[mid * self.arity..(mid + 1) * self.arity]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Partition point over entries `[s, e)` of one leaf.
    fn partition_entries(&self, s: usize, e: usize, pred: &impl Fn(&[i64]) -> bool) -> usize {
        let (mut lo, mut hi) = (s, e);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.key(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Probe: equality prefix on the leading key columns plus an optional
    /// inclusive range on the next. Same contract as [`Index::probe`];
    /// additionally reports the leaves spanned by the matching range.
    pub fn probe(&self, eq_prefix: &[i64], range_next: Option<(i64, i64)>) -> Probe {
        debug_assert!(eq_prefix.len() <= self.arity);
        debug_assert!(
            range_next.is_none() || eq_prefix.len() < self.arity,
            "range column beyond key columns"
        );
        if self.rows.is_empty() {
            return Probe {
                start: 0,
                end: 0,
                leaves: 0,
            };
        }
        let (lo_bound, hi_bound) = match range_next {
            Some((lo, hi)) => (Some(lo), Some(hi)),
            None => (None, None),
        };
        let start = self
            .descend(|key| cmp_bound(key, eq_prefix, lo_bound, false) == std::cmp::Ordering::Less);
        let end = self
            .descend(|key| cmp_bound(key, eq_prefix, hi_bound, true) == std::cmp::Ordering::Less);
        let end = end.max(start);
        let leaves = if end > start {
            (end - 1) / self.leaf_cap - start / self.leaf_cap + 1
        } else {
            1
        };
        Probe { start, end, leaves }
    }
}

/// Compare an entry key against `(eq_prefix, bound-on-next)` — the exact
/// ordering `Index::probe` uses, so both structures bisect identically.
/// Never returns `Equal`: a key equal on the compared columns is classified
/// inside the range (`Less` for an upper bound, `Greater` for a lower).
fn cmp_bound(
    key: &[i64],
    eq_prefix: &[i64],
    next_bound: Option<i64>,
    upper: bool,
) -> std::cmp::Ordering {
    for (i, &v) in eq_prefix.iter().enumerate() {
        match key[i].cmp(&v) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    if let Some(b) = next_bound {
        match key[eq_prefix.len()].cmp(&b) {
            std::cmp::Ordering::Equal => {
                if upper {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            }
            other => other,
        }
    } else if upper {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Greater
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_common::{IndexId, TableId};
    use dba_storage::{ColumnSpec, ColumnType, Distribution, IndexDef, TableBuilder, TableSchema};

    fn table(rows: usize) -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("a", ColumnType::Int, Distribution::Uniform { lo: 0, hi: 9 }),
                ColumnSpec::new(
                    "b",
                    ColumnType::Int,
                    Distribution::Uniform { lo: 0, hi: 99 },
                ),
                ColumnSpec::new("c", ColumnType::Int, Distribution::Sequential),
            ],
        );
        TableBuilder::new(schema, rows).build(TableId(0), 11)
    }

    fn build(t: &Table, keys: Vec<u16>, includes: Vec<u16>) -> (Index, BTree) {
        let ix = Index::build(IndexId(0), IndexDef::new(TableId(0), keys, includes), t);
        let tree = BTree::from_index(&ix, t);
        (ix, tree)
    }

    #[test]
    fn rows_mirror_the_storage_index() {
        let t = table(5000);
        let (ix, tree) = build(&t, vec![0, 1], vec![2]);
        assert_eq!(tree.rows(), ix.ordered_rows());
        assert_eq!(tree.len(), 5000);
        assert!(!tree.is_empty());
    }

    #[test]
    fn structure_has_multiple_levels_and_page_sized_leaves() {
        let t = table(60_000);
        let (_, tree) = build(&t, vec![2], vec![]);
        // 16 bytes/leaf-row → 512 entries/leaf → 118 leaves → 2 branch levels.
        assert_eq!(tree.leaf_count(), 60_000usize.div_ceil(512));
        assert!(tree.height() >= 3, "height {}", tree.height());
    }

    /// Every probe shape against the sorted-permutation oracle, over a
    /// duplicate-heavy key (10 distinct values on 5000 rows).
    #[test]
    fn probes_match_index_oracle_exactly() {
        let t = table(5000);
        let (ix, tree) = build(&t, vec![0, 1], vec![]);
        // Equality on the first column (heavy duplicates).
        for v in -1..=10 {
            let (s, e) = ix.probe(&t, &[v], None);
            let p = tree.probe(&[v], None);
            assert_eq!((p.start, p.end), (s, e), "eq {v}");
            assert!(p.leaves >= 1);
        }
        // Composite equality.
        for v in [0, 3, 9] {
            for w in [0, 17, 99, 120] {
                let (s, e) = ix.probe(&t, &[v, w], None);
                let p = tree.probe(&[v, w], None);
                assert_eq!((p.start, p.end), (s, e), "eq ({v},{w})");
            }
        }
        // Equality prefix + range on the next column, including empty and
        // inverted ranges.
        for v in [0, 5, 9] {
            for (lo, hi) in [(0, 99), (10, 20), (95, 200), (-5, -1), (50, 40)] {
                let (s, e) = ix.probe(&t, &[v], Some((lo, hi)));
                let p = tree.probe(&[v], Some((lo, hi)));
                assert_eq!((p.start, p.end), (s, e), "eq {v} range [{lo},{hi}]");
            }
        }
        // Pure range on the first key column.
        for (lo, hi) in [(0, 9), (2, 2), (3, 7), (11, 20)] {
            let (s, e) = ix.probe(&t, &[], Some((lo, hi)));
            let p = tree.probe(&[], Some((lo, hi)));
            assert_eq!((p.start, p.end), (s, e), "range [{lo},{hi}]");
        }
    }

    #[test]
    fn point_probe_on_unique_key_returns_one_row() {
        let t = table(10_000);
        let (ix, tree) = build(&t, vec![2], vec![]);
        for needle in [0i64, 1, 4_999, 9_999] {
            let p = tree.probe(&[needle], None);
            assert_eq!(p.matched(), 1);
            assert_eq!(t.column(2).value(tree.rows()[p.start] as usize), needle);
            let (s, e) = ix.probe(&t, &[needle], None);
            assert_eq!((p.start, p.end), (s, e));
        }
        assert_eq!(tree.probe(&[10_000], None).matched(), 0);
    }

    #[test]
    fn range_probe_counts_leaves_spanned() {
        let t = table(60_000);
        let (_, tree) = build(&t, vec![2], vec![]);
        // Sequential key: entries per leaf = 512 (16-byte leaf rows).
        let p = tree.probe(&[], Some((0, 511)));
        assert_eq!(p.matched(), 512);
        assert_eq!(p.leaves, 1);
        let p = tree.probe(&[], Some((0, 512)));
        assert_eq!(p.leaves, 2);
        let p = tree.probe(&[], Some((0, 59_999)));
        assert_eq!(p.leaves, tree.leaf_count());
        // A miss still lands on one leaf.
        assert_eq!(tree.probe(&[70_000], None).leaves, 1);
    }

    #[test]
    fn empty_tree_probes_cleanly() {
        let t0 = TableBuilder::new(
            TableSchema::new(
                "e",
                vec![ColumnSpec::new(
                    "a",
                    ColumnType::Int,
                    Distribution::Sequential,
                )],
            ),
            0,
        )
        .build(TableId(0), 1);
        let ix = Index::build(IndexId(1), IndexDef::new(TableId(0), vec![0], vec![]), &t0);
        let tree = BTree::from_index(&ix, &t0);
        assert!(tree.is_empty());
        assert_eq!(tree.leaf_count(), 0);
        let p = tree.probe(&[5], None);
        assert_eq!((p.start, p.end, p.leaves), (0, 0, 0));
    }

    #[test]
    fn exhaustive_sweep_on_duplicate_heavy_composite_key() {
        let t = table(2000);
        let (ix, tree) = build(&t, vec![1, 0], vec![]);
        for v in 0..100 {
            for (lo, hi) in [(0, 9), (2, 5), (9, 9)] {
                let (s, e) = ix.probe(&t, &[v], Some((lo, hi)));
                let p = tree.probe(&[v], Some((lo, hi)));
                assert_eq!((p.start, p.end), (s, e), "v={v} [{lo},{hi}]");
            }
        }
    }
}
