//! Measured execution backend for the `dba-bandits` reproduction.
//!
//! `dba-engine` defines the [`ExecutionBackend`] seam and its `Simulated`
//! implementation (the cost-model-priced `Executor`). This crate supplies
//! the physical side:
//!
//! - [`btree`] — a real B+Tree bulk-loaded from `dba-storage` index
//!   definitions, probe-compatible with the sorted-permutation oracle;
//! - [`measured`] — the `Measured` backend: vectorized batch heap scans,
//!   B+Tree seeks, hash / index-nested-loop joins over the columnar codes,
//!   timed through an injectable [`clock::ClockSource`];
//! - [`dual`] — a lock-step backend running both implementations and
//!   asserting logical parity on every query;
//! - [`calibrate`] — least-squares fitting of `CostModel` constants
//!   against measured wall-clock on a seeded microbench workload.
//!
//! Construct backends through the factory functions below (or
//! `SessionBuilder::backend`); `Executor::new` stays an engine-internal
//! detail.

pub mod btree;
pub mod calibrate;
pub mod clock;
pub mod dual;
pub mod measured;

pub use btree::{BTree, Probe, BRANCH_FANOUT};
pub use calibrate::{calibrate, fit, microbench_samples, CalibrationReport, OpReport};
pub use clock::{scripted, wall_clock, ClockSource};
pub use dual::DualBackend;
pub use measured::{MeasuredBackend, BATCH_ROWS};

use dba_engine::{CostModel, ExecutionBackend};

/// The `Measured` backend on the real wall-clock.
pub fn measured(cost: CostModel) -> Box<dyn ExecutionBackend> {
    Box::new(MeasuredBackend::new(cost))
}

/// The `Measured` backend on an injected clock (tests, determinism).
pub fn measured_with_clock(cost: CostModel, clock: ClockSource) -> Box<dyn ExecutionBackend> {
    Box::new(MeasuredBackend::with_clock(cost, clock))
}

/// The lock-step parity backend (simulated trajectory, measured shadow).
pub fn dual(cost: CostModel) -> Box<dyn ExecutionBackend> {
    Box::new(DualBackend::new(cost))
}

/// The lock-step parity backend on an injected clock.
pub fn dual_with_clock(cost: CostModel, clock: ClockSource) -> Box<dyn ExecutionBackend> {
    Box::new(DualBackend::with_clock(cost, clock))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dba_engine::BackendKind;

    #[test]
    fn factories_report_their_kinds() {
        assert_eq!(
            measured(CostModel::unit_scale()).kind(),
            BackendKind::Measured
        );
        assert_eq!(
            measured_with_clock(CostModel::unit_scale(), scripted(1e-6)).kind(),
            BackendKind::Measured
        );
        assert_eq!(dual(CostModel::unit_scale()).kind(), BackendKind::Simulated);
        assert_eq!(dual(CostModel::unit_scale()).name(), "dual");
        assert_eq!(
            dual_with_clock(CostModel::unit_scale(), scripted(1e-6)).name(),
            "dual"
        );
    }
}
