//! The injectable clock seam.
//!
//! The measured backend never reads the OS clock directly: every timing
//! observation flows through a [`ClockSource`] chosen at construction, the
//! same discipline `BudgetTimer` uses in `dba-common`. Production code
//! injects [`wall_clock`] (the one sanctioned `Instant::now` in this
//! crate — see the D02 policy notes in `dba-analysis`); tests inject
//! [`scripted`] so measured executions are bit-for-bit deterministic.

/// A monotonic seconds source. Returned values only ever increase.
pub type ClockSource = Box<dyn Fn() -> f64 + Send>;

/// Real wall-clock: seconds elapsed since the source was created.
///
/// This is the single place `dba-backend` touches the OS clock. All
/// business logic (scans, probes, joins, calibration) receives time
/// through the returned closure, so determinism-sensitive callers swap in
/// [`scripted`] and rule D02 keeps firing anywhere else in the crate.
pub fn wall_clock() -> ClockSource {
    // lint: allow(D02) — the measured backend's one sanctioned clock seam: every timing read is injected through this ClockSource, so operators stay clock-free and tests script time
    let start = std::time::Instant::now();
    Box::new(move || start.elapsed().as_secs_f64())
}

/// Deterministic fake clock: each read advances time by `step_s` seconds.
///
/// Counter state lives inside the closure, so two scripted sources never
/// interfere — measured executions driven by one are bit-identical across
/// runs, thread counts and machines.
pub fn scripted(step_s: f64) -> ClockSource {
    let ticks = std::cell::Cell::new(0u64);
    Box::new(move || {
        let t = ticks.get() + 1;
        ticks.set(t);
        t as f64 * step_s
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_clock_is_deterministic_and_monotonic() {
        let c1 = scripted(0.5);
        let c2 = scripted(0.5);
        let a: Vec<f64> = (0..4).map(|_| c1()).collect();
        let b: Vec<f64> = (0..4).map(|_| c2()).collect();
        assert_eq!(a, vec![0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a, b, "independent scripted clocks read identically");
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = wall_clock();
        let t0 = c();
        let t1 = c();
        assert!(t1 >= t0);
        assert!(t0 >= 0.0);
    }

    #[test]
    fn clock_sources_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ClockSource>();
    }
}
