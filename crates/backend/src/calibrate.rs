//! Cost-model calibration: fit per-operator constants against measured
//! wall-clock.
//!
//! The simulated [`CostModel`] charges seconds per unit of physical work
//! (page read, row filtered, descent, hash build/probe, aggregate row).
//! Each measured [`OpSample`] records exactly those work counters next to
//! the seconds observed on the backend's clock, so fitting the constants is
//! ordinary linear least squares: minimise `‖X·θ − y‖²` where a sample's
//! feature row `X_i` holds its counters in constant order and `y_i` its
//! measured seconds. [`fit`] solves the (ridge-damped) normal equations;
//! [`calibrate`] generates the samples on a seeded microbench workload
//! first and reports per-operator divergence before and after.
//!
//! Fitted constants live in real (measured) seconds, so the returned model
//! carries `time_scale = 1.0`; the paper-scale compensation factor is a
//! property of the simulation, not of the hardware being measured.

use dba_common::{ColumnId, QueryId, SimSeconds, TableId, TemplateId};
use dba_engine::plan::{AccessMethod, JoinAlgo, JoinStep, Plan, TableAccess};
use dba_engine::{CostModel, ExecutionBackend, JoinPred, OpKind, OpSample, Predicate, Query};
use dba_storage::{
    Catalog, ColumnSpec, ColumnType, Distribution, IndexDef, TableBuilder, TableSchema,
};

use crate::clock::ClockSource;
use crate::measured::MeasuredBackend;

/// Constants being fitted, in feature order.
const FITTED: [&str; 6] = [
    "seq_page_s",
    "cpu_row_s",
    "btree_descent_s",
    "hash_build_row_s",
    "hash_probe_row_s",
    "agg_row_s",
];

/// Map a sample to its feature row: work counters aligned with [`FITTED`].
///
/// Only operators whose cost is fully expressible in the fitted constants
/// contribute useful rows — the microbench emits covering seeks and
/// covering-inner INL probes precisely so no random-heap-read term leaks
/// into the fit.
pub fn features(s: &OpSample) -> [f64; 6] {
    match s.op() {
        OpKind::SeqScan | OpKind::CoveringScan => {
            [s.pages as f64, s.rows as f64, 0.0, 0.0, 0.0, 0.0]
        }
        OpKind::IndexSeek | OpKind::InlProbe => [
            s.pages as f64,
            s.rows as f64,
            s.descents as f64,
            0.0,
            0.0,
            0.0,
        ],
        OpKind::HashJoin => [
            0.0,
            s.out_rows as f64,
            0.0,
            s.build_rows as f64,
            s.probe_rows as f64,
            0.0,
        ],
        OpKind::Aggregate => [0.0, 0.0, 0.0, 0.0, 0.0, s.rows as f64],
    }
}

/// Per-operator aggregate of a calibration run.
#[derive(Debug, Clone)]
pub struct OpReport {
    pub op: OpKind,
    pub samples: usize,
    /// Total measured seconds across the operator's samples.
    pub measured_s: f64,
    /// Total seconds the base cost model charged for the same accesses.
    pub sim_before_s: f64,
    /// Total seconds the fitted model predicts from the work counters.
    pub sim_after_s: f64,
}

impl OpReport {
    /// |simulated/measured − 1| with the base model.
    pub fn divergence_before(&self) -> f64 {
        divergence(self.sim_before_s, self.measured_s)
    }

    /// |predicted/measured − 1| with the fitted model.
    pub fn divergence_after(&self) -> f64 {
        divergence(self.sim_after_s, self.measured_s)
    }
}

fn divergence(sim: f64, measured: f64) -> f64 {
    (sim / measured.max(1e-12) - 1.0).abs()
}

/// Outcome of a calibration fit.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Base model with the six fitted constants replaced and
    /// `time_scale = 1.0` (fitted constants are in measured seconds).
    pub model: CostModel,
    pub ops: Vec<OpReport>,
}

impl CalibrationReport {
    pub fn max_divergence_before(&self) -> f64 {
        self.ops
            .iter()
            .map(OpReport::divergence_before)
            .fold(0.0, f64::max)
    }

    pub fn max_divergence_after(&self) -> f64 {
        self.ops
            .iter()
            .map(OpReport::divergence_after)
            .fold(0.0, f64::max)
    }

    /// Names of the constants [`fit`] adjusts, in feature order.
    pub fn fitted_constants() -> &'static [&'static str] {
        &FITTED
    }
}

/// Fit the six operator constants to `samples` by ridge-damped least
/// squares. `base` supplies the constants not being fitted (random page,
/// sort, write) and the before-fit predictions in the report.
pub fn fit(samples: &[OpSample], base: &CostModel) -> CalibrationReport {
    assert!(!samples.is_empty(), "calibration requires samples");

    // Normal equations: XᵀX θ = Xᵀy.
    let mut xtx = [[0.0f64; 6]; 6];
    let mut xty = [0.0f64; 6];
    for s in samples {
        let f = features(s);
        for i in 0..6 {
            for j in 0..6 {
                xtx[i][j] += f[i] * f[j];
            }
            xty[i] += f[i] * s.measured_s;
        }
    }
    // Scale-free ridge: counters span orders of magnitude (pages ~1e2,
    // rows ~1e5), so damp each diagonal proportionally to itself.
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += row[i] * 1e-9 + 1e-30;
    }
    let theta = solve6(xtx, xty);

    let mut model = base.clone();
    model.seq_page_s = theta[0].max(1e-15);
    model.cpu_row_s = theta[1].max(1e-15);
    model.btree_descent_s = theta[2].max(1e-15);
    model.hash_build_row_s = theta[3].max(1e-15);
    model.hash_probe_row_s = theta[4].max(1e-15);
    model.agg_row_s = theta[5].max(1e-15);
    model.time_scale = 1.0;
    let fitted = [
        model.seq_page_s,
        model.cpu_row_s,
        model.btree_descent_s,
        model.hash_build_row_s,
        model.hash_probe_row_s,
        model.agg_row_s,
    ];

    let mut ops = Vec::new();
    for op in OpKind::ALL {
        let of: Vec<&OpSample> = samples.iter().filter(|s| s.op() == op).collect();
        if of.is_empty() {
            continue;
        }
        let measured_s = of.iter().map(|s| s.measured_s).sum();
        let sim_before_s = of.iter().map(|s| s.sim_s).sum();
        let sim_after_s = of
            .iter()
            .map(|s| {
                let f = features(s);
                f.iter().zip(&fitted).map(|(a, b)| a * b).sum::<f64>()
            })
            .sum();
        ops.push(OpReport {
            op,
            samples: of.len(),
            measured_s,
            sim_before_s,
            sim_after_s,
        });
    }

    CalibrationReport { model, ops }
}

/// Gaussian elimination with partial pivoting for the 6×6 normal system.
fn solve6(mut a: [[f64; 6]; 6], mut b: [f64; 6]) -> [f64; 6] {
    for col in 0..6 {
        let pivot = (col..6)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap();
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-300 {
            continue; // degenerate column: leave θ_col at 0
        }
        let pivot_row = a[col];
        for row in (col + 1)..6 {
            let m = a[row][col] / p;
            if m == 0.0 {
                continue;
            }
            for (entry, pivot) in a[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *entry -= m * pivot;
            }
            b[row] -= m * b[col];
        }
    }
    let mut x = [0.0f64; 6];
    for col in (0..6).rev() {
        let mut acc = b[col];
        for k in (col + 1)..6 {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-300 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

/// Run the seeded microbench workload through a fresh [`MeasuredBackend`]
/// and return its operator samples.
///
/// Three tables with deliberately different row widths (padding decorrelates
/// pages from rows), covering indexes throughout (no random-heap term — see
/// [`features`]), and a spread of selectivities per operator so the design
/// matrix is well conditioned.
pub fn microbench_samples(cost: &CostModel, clock: ClockSource, seed: u64) -> Vec<OpSample> {
    let wide = TableSchema::new(
        "cal_wide",
        vec![
            ColumnSpec::new("w_key", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "w_attr",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 99 },
            ),
        ],
    )
    .with_pad(240);
    let narrow = TableSchema::new(
        "cal_narrow",
        vec![
            ColumnSpec::new("n_key", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "n_val",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 9999 },
            ),
            ColumnSpec::new(
                "n_dim",
                ColumnType::Int,
                Distribution::FkUniform { parent_rows: 2000 },
            ),
        ],
    );
    let dim = TableSchema::new(
        "cal_dim",
        vec![
            ColumnSpec::new("d_key", ColumnType::Int, Distribution::Sequential),
            ColumnSpec::new(
                "d_attr",
                ColumnType::Int,
                Distribution::Uniform { lo: 0, hi: 19 },
            ),
        ],
    )
    .with_pad(60);

    let mut cat = Catalog::new(vec![
        TableBuilder::new(wide, 8_000).build(TableId(0), seed),
        TableBuilder::new(narrow, 40_000).build(TableId(1), seed),
        TableBuilder::new(dim, 2_000).build(TableId(2), seed),
    ]);
    // Covering throughout: every column a query touches is in the leaves.
    let ix_val = cat
        .create_index(IndexDef::new(TableId(1), vec![1], vec![0, 2]))
        .unwrap();
    let ix_fk = cat
        .create_index(IndexDef::new(TableId(1), vec![2], vec![0]))
        .unwrap();

    let mut backend = MeasuredBackend::with_clock(cost.clone(), clock);
    let col = ColumnId::new;
    let mut qid = 0u64;
    let mut run = |tables: Vec<TableId>,
                   preds: Vec<Predicate>,
                   joins: Vec<JoinPred>,
                   payload: Vec<ColumnId>,
                   aggregated: bool,
                   plan: Plan,
                   backend: &mut MeasuredBackend| {
        let q = Query {
            id: QueryId(qid),
            template: TemplateId(0),
            tables,
            predicates: preds,
            joins,
            payload,
            aggregated,
        };
        qid += 1;
        backend.execute(&cat, &q, &plan);
    };
    let scan = |t: TableId| TableAccess {
        table: t,
        method: AccessMethod::FullScan,
        est_rows: 0.0,
    };
    let single = |driver: TableAccess, aggregated: bool| Plan {
        driver,
        joins: vec![],
        aggregated,
        est_cost: SimSeconds::ZERO,
    };

    // SeqScan: every table, several selectivities (rows vs pages variation).
    for (t, ord, his) in [
        (0u32, 1u16, [9i64, 49, 99]),
        (1, 1, [999, 4999, 9999]),
        (2, 1, [3, 9, 19]),
    ] {
        for hi in his {
            run(
                vec![TableId(t)],
                vec![Predicate::range(col(TableId(t), ord), 0, hi)],
                vec![],
                vec![col(TableId(t), 0)],
                false,
                single(scan(TableId(t)), false),
                &mut backend,
            );
        }
    }

    // CoveringScan + covering IndexSeek at a spread of selectivities.
    for (lo, hi) in [(0, 99), (0, 999), (2000, 6000), (0, 9999), (5000, 5001)] {
        let preds = vec![Predicate::range(col(TableId(1), 1), lo, hi)];
        run(
            vec![TableId(1)],
            preds.clone(),
            vec![],
            vec![col(TableId(1), 0)],
            false,
            single(
                TableAccess {
                    table: TableId(1),
                    method: AccessMethod::CoveringScan { index: ix_val.id },
                    est_rows: 0.0,
                },
                false,
            ),
            &mut backend,
        );
        run(
            vec![TableId(1)],
            preds,
            vec![],
            vec![col(TableId(1), 0)],
            false,
            single(
                TableAccess {
                    table: TableId(1),
                    method: AccessMethod::IndexSeek {
                        index: ix_val.id,
                        covering: true,
                    },
                    est_rows: 0.0,
                },
                false,
            ),
            &mut backend,
        );
    }

    // HashJoin + Aggregate: dim ⋈ narrow at several dim selectivities.
    for hi in [2i64, 7, 19] {
        run(
            vec![TableId(2), TableId(1)],
            vec![Predicate::range(col(TableId(2), 1), 0, hi)],
            vec![JoinPred::new(col(TableId(2), 0), col(TableId(1), 2))],
            vec![col(TableId(1), 0)],
            true,
            Plan {
                driver: scan(TableId(2)),
                joins: vec![JoinStep {
                    access: scan(TableId(1)),
                    algo: JoinAlgo::Hash,
                    join: JoinPred::new(col(TableId(2), 0), col(TableId(1), 2)),
                    est_rows_out: 0.0,
                }],
                aggregated: true,
                est_cost: SimSeconds::ZERO,
            },
            &mut backend,
        );
    }

    // InlProbe (covering inner) at several outer sizes.
    for hi in [0i64, 4, 19] {
        run(
            vec![TableId(2), TableId(1)],
            vec![Predicate::range(col(TableId(2), 1), 0, hi)],
            vec![JoinPred::new(col(TableId(2), 0), col(TableId(1), 2))],
            vec![col(TableId(1), 0)],
            false,
            Plan {
                driver: scan(TableId(2)),
                joins: vec![JoinStep {
                    access: TableAccess {
                        table: TableId(1),
                        method: AccessMethod::IndexSeek {
                            index: ix_fk.id,
                            covering: true,
                        },
                        est_rows: 0.0,
                    },
                    algo: JoinAlgo::IndexNestedLoop,
                    join: JoinPred::new(col(TableId(2), 0), col(TableId(1), 2)),
                    est_rows_out: 0.0,
                }],
                aggregated: false,
                est_cost: SimSeconds::ZERO,
            },
            &mut backend,
        );
    }

    backend.take_op_samples()
}

/// Full calibration workflow: microbench → fit → report.
pub fn calibrate(base: &CostModel, clock: ClockSource, seed: u64) -> CalibrationReport {
    fit(&microbench_samples(base, clock, seed), base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::scripted;

    /// Synthetic timings drawn *from* unit-scale constants: the fit must
    /// recover them (near-)exactly and drive divergence to ~0.
    #[test]
    fn fit_recovers_unit_scale_constants_from_synthetic_timings() {
        let base = CostModel::paper_scale();
        let unit = CostModel::unit_scale();
        let truth = [
            unit.seq_page_s,
            unit.cpu_row_s,
            unit.btree_descent_s,
            unit.hash_build_row_s,
            unit.hash_probe_row_s,
            unit.agg_row_s,
        ];
        let mut samples = microbench_samples(&base, scripted(1e-7), 17);
        for s in &mut samples {
            let f = features(s);
            s.measured_s = f.iter().zip(&truth).map(|(a, b)| a * b).sum();
        }
        let report = fit(&samples, &base);
        let fitted = [
            report.model.seq_page_s,
            report.model.cpu_row_s,
            report.model.btree_descent_s,
            report.model.hash_build_row_s,
            report.model.hash_probe_row_s,
            report.model.agg_row_s,
        ];
        for (name, (got, want)) in FITTED.iter().zip(fitted.iter().zip(&truth)) {
            assert!(
                (got / want - 1.0).abs() < 0.01,
                "{name}: fitted {got} vs truth {want}"
            );
        }
        assert_eq!(report.model.time_scale, 1.0);
        assert!(report.max_divergence_after() < 1e-3);
        assert!(report.max_divergence_after() < report.max_divergence_before());
    }

    #[test]
    fn microbench_covers_every_operator_deterministically() {
        let samples = microbench_samples(&CostModel::paper_scale(), scripted(1e-7), 17);
        for op in OpKind::ALL {
            assert!(
                samples.iter().any(|s| s.op() == op),
                "no {op:?} samples in the microbench"
            );
        }
        // Scripted clock ⇒ the whole sample set is reproducible bit-exactly.
        let again = microbench_samples(&CostModel::paper_scale(), scripted(1e-7), 17);
        assert_eq!(samples.len(), again.len());
        for (a, b) in samples.iter().zip(&again) {
            assert_eq!(a.op(), b.op());
            assert_eq!(a.measured_s.to_bits(), b.measured_s.to_bits());
            assert_eq!(a.sim_s.to_bits(), b.sim_s.to_bits());
            assert_eq!((a.pages, a.rows, a.descents), (b.pages, b.rows, b.descents));
        }
    }

    #[test]
    fn calibrate_reduces_divergence_on_scripted_clock() {
        let report = calibrate(&CostModel::paper_scale(), scripted(1e-7), 23);
        assert!(
            report.max_divergence_before() > 1.0,
            "paper-scale constants are nowhere near scripted-clock seconds"
        );
        assert!(
            report.max_divergence_after() < report.max_divergence_before(),
            "fit must reduce max divergence: after {} vs before {}",
            report.max_divergence_after(),
            report.max_divergence_before()
        );
    }

    #[test]
    fn solve6_inverts_a_known_system() {
        // Diagonal-dominant system with known solution.
        let mut a = [[0.0; 6]; 6];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = if i == j { 4.0 } else { 0.5 };
            }
        }
        let truth = [1.0, -2.0, 3.0, 0.25, -0.5, 2.0];
        let mut b = [0.0; 6];
        for i in 0..6 {
            b[i] = (0..6).map(|j| a[i][j] * truth[j]).sum();
        }
        let x = solve6(a, b);
        for (got, want) in x.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }
}
